//! CustomBinPacking — Alg. 4 with the incremental optimizations (b)–(e).

use super::{cheaper_to_distribute, Allocator, VmBuild};
use crate::{Allocation, McssError, Selection};
use cloud_cost::CostModel;
use pubsub_model::{Bandwidth, SubscriberId, WorkloadView};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which "expensive" metric orders topics for optimization (c).
///
/// Alg. 4 line 3 selects `argmax_t Σ_{(t,v)∈S} ev_t` — the topic's total
/// remaining outgoing volume — while the prose of §III-B says "topics with
/// maximum event rate". Both readings are implemented; the pseudocode's is
/// the default and the ablation bench compares them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExpensiveOrder {
    /// `|pairs| · ev_t` (Alg. 4 line 3).
    #[default]
    TotalVolume,
    /// `ev_t` (§III-B prose).
    Rate,
}

/// Toggles for the incremental optimizations of §III-B / §IV-D.
///
/// Optimization (b) — grouping all pairs of a topic — is CustomBinPacking
/// itself; (c)–(e) stack on top. The presets mirror the bars of
/// Figs. 2–3:
///
/// | Figure bar | Preset |
/// |---|---|
/// | (b) GSP + grouping | [`CbpConfig::grouping_only`] |
/// | (c) + expensive topic first | [`CbpConfig::expensive_first`] |
/// | (d) + most free VM first | [`CbpConfig::most_free`] |
/// | (e) + cost-based decision | [`CbpConfig::full`] |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CbpConfig {
    /// (c): process topics in decreasing [`ExpensiveOrder`] key instead of
    /// topic-id order.
    pub expensive_topic_first: bool,
    /// The key used when `expensive_topic_first` is set.
    pub expensive_order: ExpensiveOrder,
    /// (d): spill onto the VM with the most free capacity first instead of
    /// scanning first-fit.
    pub most_free_vm_first: bool,
    /// (e): consult [`cheaper_to_distribute`] (Alg. 7) before spilling
    /// onto existing VMs; without it CBP always prefers existing VMs.
    pub cost_based_decision: bool,
    /// Ablation: replace Alg. 7's `⌈|P|·ev/BC⌉` new-VM estimate with the
    /// exact count (see [`cheaper_to_distribute`]).
    pub exact_new_vm_estimate: bool,
}

impl CbpConfig {
    /// Optimization (b) only: grouping by topic.
    pub fn grouping_only() -> Self {
        CbpConfig::default()
    }

    /// Optimizations (b)+(c).
    pub fn expensive_first() -> Self {
        CbpConfig {
            expensive_topic_first: true,
            ..CbpConfig::default()
        }
    }

    /// Optimizations (b)+(c)+(d).
    pub fn most_free() -> Self {
        CbpConfig {
            expensive_topic_first: true,
            most_free_vm_first: true,
            ..CbpConfig::default()
        }
    }

    /// All optimizations (b)+(c)+(d)+(e) — the paper's full solution.
    pub fn full() -> Self {
        CbpConfig {
            expensive_topic_first: true,
            most_free_vm_first: true,
            cost_based_decision: true,
            ..CbpConfig::default()
        }
    }
}

/// The paper's customized bin packing (Alg. 4).
///
/// Topics are placed group-at-a-time: all selected pairs of the current
/// topic try the most recently deployed VM first; if they do not all fit,
/// the remainder spills onto existing VMs (optionally most-free-first,
/// optionally gated by the Alg. 7 cost comparison) and finally onto fresh
/// VMs. Grouping keeps each topic on few VMs — each split VM costs one
/// extra incoming stream — and drops the packing complexity from
/// `O(|S|·|B|)` to roughly `O(|T| log |B| + |S|)`, the speedup of
/// Figs. 6–7.
#[derive(Clone, Copy, Debug, Default)]
pub struct CustomBinPacking {
    config: CbpConfig,
}

impl CustomBinPacking {
    /// Creates the allocator with the given optimization toggles.
    pub fn new(config: CbpConfig) -> Self {
        CustomBinPacking { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CbpConfig {
        self.config
    }
}

impl Allocator for CustomBinPacking {
    fn name(&self) -> &'static str {
        "CBP"
    }

    fn allocate_view(
        &self,
        view: WorkloadView<'_>,
        selection: &Selection,
        capacity: Bandwidth,
        cost: &dyn CostModel,
    ) -> Result<Allocation, McssError> {
        let cfg = self.config;
        // CSR inversion (no hashing, no per-topic Vecs); the processing
        // order is a cached index permutation over the groups.
        let groups = selection.topic_groups(view);
        // Decreasing key, ties by ascending topic id (the sorts are
        // stable over the id-ordered groups).
        let order: Vec<u32> = match (cfg.expensive_topic_first, cfg.expensive_order) {
            (false, _) => (0..groups.len() as u32).collect(),
            (true, ExpensiveOrder::TotalVolume) => groups.order_by_total_volume(view),
            (true, ExpensiveOrder::Rate) => {
                let mut order: Vec<u32> = (0..groups.len() as u32).collect();
                order.sort_by_key(|&g| Reverse(view.rate(groups.topic(g as usize))));
                order
            }
        };

        let mut vms: Vec<VmBuild> = Vec::new();
        let mut total_bw = Bandwidth::ZERO;
        // Lazy max-heap over (free, vm index): every mutation pushes a
        // fresh entry; stale ones are discarded on pop.
        let mut free_heap: BinaryHeap<(Bandwidth, Reverse<usize>)> = BinaryHeap::new();

        for &g in &order {
            let topic = groups.topic(g as usize);
            let subscribers = groups.subscribers(g as usize);
            let rate = view.rate(topic);
            if rate.pair_cost() > capacity {
                return Err(McssError::InfeasibleTopic {
                    topic,
                    required: rate.pair_cost(),
                    capacity,
                });
            }

            // Try the most recently deployed VM for the whole group
            // (Alg. 4 line 8's complement).
            let all = u128::from(rate.get()) * (subscribers.len() as u128 + 1);
            if let Some(current) = vms.last_mut() {
                if all <= u128::from(current.free(capacity).get()) {
                    current.add_batch(topic, rate, subscribers);
                    total_bw += rate * (subscribers.len() as u64 + 1);
                    free_heap.push((current.free(capacity), Reverse(vms.len() - 1)));
                    continue;
                }
            }

            let mut remaining: &[SubscriberId] = subscribers;
            let distribute = if vms.is_empty() {
                false
            } else if cfg.cost_based_decision {
                let frees: Vec<Bandwidth> = vms.iter().map(|vm| vm.free(capacity)).collect();
                cheaper_to_distribute(
                    &frees,
                    capacity,
                    rate,
                    remaining.len() as u64,
                    vms.len(),
                    total_bw,
                    cost,
                    cfg.exact_new_vm_estimate,
                )
            } else {
                true // without (e), existing VMs are always preferred
            };

            if distribute {
                if cfg.most_free_vm_first {
                    while !remaining.is_empty() {
                        let Some((free, Reverse(idx))) = free_heap.pop() else {
                            break;
                        };
                        if vms[idx].free(capacity) != free {
                            continue; // stale entry; the fresh one is queued
                        }
                        if free < rate.pair_cost() {
                            // Largest headroom cannot take a first pair.
                            free_heap.push((free, Reverse(idx)));
                            break;
                        }
                        let fit = free.div_rate(rate) - 1;
                        let take = (fit as usize).min(remaining.len());
                        vms[idx].add_batch(topic, rate, &remaining[..take]);
                        total_bw += rate * (take as u64 + 1);
                        free_heap.push((vms[idx].free(capacity), Reverse(idx)));
                        remaining = &remaining[take..];
                    }
                } else {
                    for (idx, vm) in vms.iter_mut().enumerate() {
                        if remaining.is_empty() {
                            break;
                        }
                        let free = vm.free(capacity);
                        if free < rate.pair_cost() {
                            continue;
                        }
                        let fit = free.div_rate(rate) - 1;
                        let take = (fit as usize).min(remaining.len());
                        vm.add_batch(topic, rate, &remaining[..take]);
                        total_bw += rate * (take as u64 + 1);
                        free_heap.push((vm.free(capacity), Reverse(idx)));
                        remaining = &remaining[take..];
                    }
                }
            }

            // Fresh VMs for whatever is left (Alg. 4 lines 15–20).
            while !remaining.is_empty() {
                let mut vm = VmBuild::new();
                let fit = capacity.div_rate(rate) - 1; // ≥ 1 by feasibility
                let take = (fit as usize).min(remaining.len());
                vm.add_batch(topic, rate, &remaining[..take]);
                total_bw += rate * (take as u64 + 1);
                vms.push(vm);
                free_heap.push((
                    vms.last().expect("just pushed").free(capacity),
                    Reverse(vms.len() - 1),
                ));
                remaining = &remaining[take..];
            }
        }

        Ok(Allocation::from_groups(
            vms.into_iter().map(VmBuild::into_groups).collect(),
            view.workload(),
            capacity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage2::FirstFitBinPacking;
    use cloud_cost::{LinearCostModel, Money};
    use pubsub_model::{Rate, TopicId, Workload};

    fn nocost() -> LinearCostModel {
        LinearCostModel::new(Money::ZERO, Money::ZERO)
    }

    fn workload(rates: &[u64], interests: &[&[u32]]) -> Workload {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        b.build()
    }

    fn select_all(w: &Workload) -> Selection {
        Selection::from_per_subscriber(w.subscribers().map(|v| w.interests(v).to_vec()).collect())
    }

    fn cbp(cfg: CbpConfig) -> CustomBinPacking {
        CustomBinPacking::new(cfg)
    }

    #[test]
    fn groups_topic_pairs_on_one_vm() {
        // Fig. 1c/1d versus 1b: grouping keeps both pairs of the topic
        // together, paying incoming once.
        let w = workload(&[10], &[&[0], &[0]]);
        let a = cbp(CbpConfig::grouping_only())
            .allocate(&w, &select_all(&w), Bandwidth::new(30), &nocost())
            .unwrap();
        assert_eq!(a.vm_count(), 1);
        assert_eq!(a.incoming_volume(&w), Bandwidth::new(10));
        // FFBP at the same capacity also manages one VM here; tighten:
        let tight = cbp(CbpConfig::grouping_only())
            .allocate(&w, &select_all(&w), Bandwidth::new(30), &nocost())
            .unwrap();
        assert!(tight.validate(&w, Rate::new(10)).is_ok());
    }

    #[test]
    fn expensive_first_changes_processing_order() {
        // Two topics: t0 rate 2 with 1 pair (volume 2), t1 rate 1 with 10
        // pairs (volume 10). TotalVolume order processes t1 first; Rate
        // order processes t0 first. Capacity fits everything in one VM, so
        // observe through which topic lands on VM0 first: both land on
        // vm0; instead use tight capacity to see different VM counts.
        let w = workload(
            &[2, 1],
            &[
                &[0, 1],
                &[1],
                &[1],
                &[1],
                &[1],
                &[1],
                &[1],
                &[1],
                &[1],
                &[1],
            ],
        );
        let sel = select_all(&w);
        let by_volume = cbp(CbpConfig {
            expensive_topic_first: true,
            expensive_order: ExpensiveOrder::TotalVolume,
            ..CbpConfig::default()
        })
        .allocate(&w, &sel, Bandwidth::new(12), &nocost())
        .unwrap();
        let by_rate = cbp(CbpConfig {
            expensive_topic_first: true,
            expensive_order: ExpensiveOrder::Rate,
            ..CbpConfig::default()
        })
        .allocate(&w, &sel, Bandwidth::new(12), &nocost())
        .unwrap();
        // Both valid; volume ordering fills VM0 with t1's 10 pairs
        // (11 units of 12), leaving no room for t0 (needs 4); rate
        // ordering places t0 on VM0 first.
        assert!(by_volume.validate(&w, Rate::new(100)).is_ok());
        assert!(by_rate.validate(&w, Rate::new(100)).is_ok());
        assert_eq!(by_volume.vms()[0].pair_count(), 10);
        assert!(by_volume.vms()[0]
            .placements()
            .iter()
            .all(|p| p.topic == TopicId::new(1)));
        assert!(by_rate.vms()[0]
            .placements()
            .iter()
            .any(|p| p.topic == TopicId::new(0)));
    }

    #[test]
    fn paper_worked_example_fig1() {
        // Fig. 1: t1 = 20 KB/min, t2 = 10, pairs (t1,v1),(t1,v2),(t2,v1),
        // (t2,v2),(t2,v3); two VMs pre-loaded to 30 and 50 KB/min free.
        // FFBP splits topics (80 KB/min total); CBP with expensive-first +
        // most-free keeps each topic whole (50 KB/min total). We model the
        // pre-loading with a filler topic per VM.
        //
        // Capacity 110: VM A filler uses 80 => 30 free; VM B filler uses
        // 60 => 50 free. Our allocators deploy VMs on demand rather than
        // accept pre-loaded ones, so emulate by capacity choice: run CBP
        // on just the five pairs with capacity 50 — expensive topic t1
        // (2 pairs + incoming = 60 > 50) splits... choose capacity 70:
        // t1 whole (3·20=60 ≤ 70), then t2 (4·10=40) fits beside? 60+40 >
        // 70, so t2 opens VM2 whole. Total bw = 60 + 40 = 100 vs FFBP's
        // pair-ordered scatter.
        let w = workload(&[20, 10], &[&[0, 1], &[0, 1], &[1]]);
        let sel = select_all(&w);
        let cap = Bandwidth::new(70);
        let custom = cbp(CbpConfig::most_free())
            .allocate(&w, &sel, cap, &nocost())
            .unwrap();
        let ff = FirstFitBinPacking::new()
            .allocate(&w, &sel, cap, &nocost())
            .unwrap();
        assert!(custom.total_bandwidth() <= ff.total_bandwidth());
        // CBP: each topic's incoming paid once.
        assert_eq!(custom.incoming_volume(&w), Bandwidth::new(30));
        assert!(custom.validate(&w, Rate::new(30)).is_ok());
    }

    #[test]
    fn most_free_spill_targets_emptiest_vm() {
        // Three topics sized to leave VM0 nearly full and VM1 roomy, then
        // a topic that must spill: it should land on the roomier VM,
        // minimizing splits.
        let w = workload(
            &[40, 20, 10],
            &[&[0], &[1], &[2], &[2], &[2], &[2], &[2], &[2], &[2], &[2]],
        );
        let sel = select_all(&w);
        // Capacity 90. Volume order: t2 total 80, t0 80, t1 40.
        let a = cbp(CbpConfig::most_free())
            .allocate(&w, &sel, Bandwidth::new(90), &nocost())
            .unwrap();
        assert!(a.validate(&w, Rate::new(1000)).is_ok());
        for vm in a.vms() {
            assert!(vm.used() <= Bandwidth::new(90));
        }
    }

    #[test]
    fn cost_based_decision_can_refuse_to_split() {
        // One pair of an expensive topic (rate 30) remains; existing VMs
        // have headroom for it (60 needed) only by splitting? Craft:
        // bandwidth pricey, VMs cheap — Alg. 7 chooses new VMs even
        // though spilling is feasible.
        let pricey_bw = LinearCostModel::new(Money::from_micros(1), Money::from_dollars(5));
        let w = workload(&[10, 10, 3], &[&[0], &[1], &[2], &[2], &[2], &[2]]);
        let sel = select_all(&w);
        let cap = Bandwidth::new(40);
        let with_e = cbp(CbpConfig::full())
            .allocate(&w, &sel, cap, &pricey_bw)
            .unwrap();
        let without_e = cbp(CbpConfig::most_free())
            .allocate(&w, &sel, cap, &pricey_bw)
            .unwrap();
        assert!(with_e.validate(&w, Rate::new(100)).is_ok());
        assert!(without_e.validate(&w, Rate::new(100)).is_ok());
        // With (e), total cost never exceeds the (d)-only packing under
        // the model it optimizes for.
        assert!(with_e.cost(&pricey_bw) <= without_e.cost(&pricey_bw));
    }

    #[test]
    fn single_topic_spanning_many_vms() {
        // 25 pairs of rate 10, capacity 40 → 3 pairs per VM ((40/10)-1),
        // 9 VMs, first 8 full with 3, last with 1.
        let interests: Vec<&[u32]> = (0..25).map(|_| &[0u32][..]).collect();
        let w = workload(&[10], &interests);
        let sel = select_all(&w);
        let a = cbp(CbpConfig::full())
            .allocate(&w, &sel, Bandwidth::new(40), &nocost())
            .unwrap();
        assert_eq!(a.vm_count(), 9);
        assert_eq!(a.pair_count(), 25);
        assert!(a.validate(&w, Rate::new(10)).is_ok());
    }

    #[test]
    fn infeasible_topic_reported() {
        let w = workload(&[50], &[&[0]]);
        let err = cbp(CbpConfig::full())
            .allocate(&w, &select_all(&w), Bandwidth::new(99), &nocost())
            .unwrap_err();
        assert!(matches!(err, McssError::InfeasibleTopic { .. }));
    }

    #[test]
    fn all_presets_preserve_pairs_and_capacity() {
        let rates: Vec<u64> = (1..=20).map(|i| i * 3).collect();
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = rates
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        for vi in 0..30u32 {
            let tv: Vec<TopicId> = ts
                .iter()
                .copied()
                .filter(|t| (t.raw() * 7 + vi) % 3 != 0)
                .collect();
            b.add_subscriber(tv).unwrap();
        }
        let w = b.build();
        let sel = select_all(&w);
        let cap = Bandwidth::new(400);
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(2));
        for cfg in [
            CbpConfig::grouping_only(),
            CbpConfig::expensive_first(),
            CbpConfig::most_free(),
            CbpConfig::full(),
        ] {
            let a = cbp(cfg).allocate(&w, &sel, cap, &cost).unwrap();
            assert_eq!(a.pair_count(), sel.pair_count());
            a.validate(&w, Rate::new(u64::MAX))
                .expect("valid under every preset");
        }
    }

    #[test]
    fn empty_selection_is_empty_allocation() {
        let w = workload(&[5], &[&[0]]);
        let empty = Selection::from_per_subscriber(vec![Vec::new()]);
        let a = cbp(CbpConfig::full())
            .allocate(&w, &empty, Bandwidth::new(100), &nocost())
            .unwrap();
        assert_eq!(a.vm_count(), 0);
    }
}
