//! Trace analysis: the statistics plotted in Appendix D (Figs. 8–12).
//!
//! * [`ccdf`] / [`ccdf_f64`] — complementary cumulative distribution
//!   functions (Figs. 8, 9, 11);
//! * [`mean_by_group`] / [`mean_by_log_bucket`] — conditional means such as
//!   "mean event rate by follower count" (Figs. 10, 12);
//! * [`subscription_cardinalities`] — the per-subscriber SC metric of
//!   Appendix D;
//! * [`spike_strength`] — quantifies the anomaly spikes at 20/2000
//!   followings that the paper calls out in Fig. 8.

use pubsub_model::Workload;

/// Complementary CDF of integer observations: for each distinct value `x`,
/// the fraction of observations strictly greater than `x`
/// (`CCDF(x) = P(X > x)`, the definition used in the paper's footnote 2).
///
/// Points are returned in increasing `x`; the final point always has
/// probability 0.
///
/// ```
/// use pubsub_traces::analysis::ccdf;
/// let points = ccdf(&[1, 1, 2, 4]);
/// assert_eq!(points, vec![(1, 0.5), (2, 0.25), (4, 0.0)]);
/// ```
pub fn ccdf(values: &[u64]) -> Vec<(u64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        out.push((x, (sorted.len() - j) as f64 / n));
        i = j;
    }
    out
}

/// CCDF of floating-point observations (used for Subscription Cardinality,
/// Fig. 11). Non-finite values are ignored.
pub fn ccdf_f64(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        out.push((x, (sorted.len() - j) as f64 / n));
        i = j;
    }
    out
}

/// Samples a CCDF at chosen thresholds — handy for printing a small table
/// out of a distribution with millions of distinct values.
///
/// Returns `P(X > threshold)` for each threshold, in input order.
pub fn ccdf_at(values: &[u64], thresholds: &[u64]) -> Vec<(u64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    thresholds
        .iter()
        .map(|&th| {
            let above = sorted.len() - sorted.partition_point(|&v| v <= th);
            (
                th,
                if sorted.is_empty() {
                    0.0
                } else {
                    above as f64 / n
                },
            )
        })
        .collect()
}

/// Mean of `values` grouped by exact `keys` value: Fig. 10 plots the mean
/// event rate for each distinct follower count.
///
/// Returns `(key, mean, count)` sorted by key.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_by_group(keys: &[u64], values: &[u64]) -> Vec<(u64, f64, usize)> {
    assert_eq!(keys.len(), values.len(), "keys and values must pair up");
    let mut pairs: Vec<(u64, u64)> = keys.iter().copied().zip(values.iter().copied()).collect();
    pairs.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let k = pairs[i].0;
        let mut sum = 0u128;
        let mut count = 0usize;
        while i < pairs.len() && pairs[i].0 == k {
            sum += u128::from(pairs[i].1);
            count += 1;
            i += 1;
        }
        out.push((k, sum as f64 / count as f64, count));
    }
    out
}

/// Mean of `values` with keys grouped into logarithmic buckets
/// (`buckets_per_decade` buckets per factor of 10). Keys of zero form their
/// own bucket. Returns `(bucket_lower_bound, mean, count)` sorted by bound.
///
/// This is how the experiment binaries condense Figs. 10/12 into a
/// printable series.
pub fn mean_by_log_bucket(
    keys: &[u64],
    values: &[f64],
    buckets_per_decade: u32,
) -> Vec<(u64, f64, usize)> {
    assert_eq!(keys.len(), values.len(), "keys and values must pair up");
    assert!(
        buckets_per_decade > 0,
        "need at least one bucket per decade"
    );
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    for (&k, &v) in keys.iter().zip(values) {
        let bound = if k == 0 {
            0
        } else {
            let exp = (k as f64).log10() * f64::from(buckets_per_decade);
            let slot = exp.floor() / f64::from(buckets_per_decade);
            10f64.powf(slot).round() as u64
        };
        let e = buckets.entry(bound).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    buckets
        .into_iter()
        .map(|(b, (sum, count))| (b, sum / count as f64, count))
        .collect()
}

/// Subscription Cardinality for every subscriber (Appendix D):
/// `SC_v = 100 · Σ_{t∈T_v} ev_t / Σ_t ev_t`.
pub fn subscription_cardinalities(workload: &Workload) -> Vec<f64> {
    workload
        .subscribers()
        .map(|v| workload.subscription_cardinality(v))
        .collect()
}

/// Strength of a point anomaly in a discrete distribution: the ratio of the
/// empirical mass at exactly `point` to the average mass at the
/// `window`-sized neighbourhoods on either side (excluding the point).
///
/// A value well above 1 reproduces the "glitches" the paper highlights at
/// 20 and 2000 followings in Fig. 8. Returns `None` when the neighbourhood
/// is empty.
pub fn spike_strength(values: &[u64], point: u64, window: u64) -> Option<f64> {
    let at_point = values.iter().filter(|&&v| v == point).count() as f64;
    let lo = point.saturating_sub(window);
    let hi = point + window;
    let neighbours = values
        .iter()
        .filter(|&&v| v >= lo && v <= hi && v != point)
        .count() as f64;
    let slots = (hi - lo) as f64; // number of integer values in the window, minus the point
    if neighbours == 0.0 {
        return None;
    }
    Some(at_point / (neighbours / slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_model::Rate;

    #[test]
    fn ccdf_definition() {
        let points = ccdf(&[5, 1, 1, 2, 4]);
        assert_eq!(points, vec![(1, 0.6), (2, 0.4), (4, 0.2), (5, 0.0)]);
    }

    #[test]
    fn ccdf_empty_and_single() {
        assert!(ccdf(&[]).is_empty());
        assert_eq!(ccdf(&[9]), vec![(9, 0.0)]);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let points = ccdf(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
        for w in points.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ccdf_f64_matches_integer_version() {
        let ints = ccdf(&[1, 2, 2, 3]);
        let floats = ccdf_f64(&[1.0, 2.0, 2.0, 3.0]);
        for ((xi, pi), (xf, pf)) in ints.iter().zip(&floats) {
            assert!((*xi as f64 - xf).abs() < 1e-12);
            assert!((pi - pf).abs() < 1e-12);
        }
    }

    #[test]
    fn ccdf_f64_ignores_non_finite() {
        let points = ccdf_f64(&[1.0, f64::NAN, 2.0]);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn ccdf_at_thresholds() {
        let points = ccdf_at(&[1, 2, 3, 4, 5], &[0, 3, 10]);
        assert_eq!(points, vec![(0, 1.0), (3, 0.4), (10, 0.0)]);
    }

    #[test]
    fn mean_by_group_groups() {
        let out = mean_by_group(&[1, 2, 1, 2, 3], &[10, 20, 30, 40, 50]);
        assert_eq!(out, vec![(1, 20.0, 2), (2, 30.0, 2), (3, 50.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mean_by_group_length_mismatch_panics() {
        let _ = mean_by_group(&[1], &[1, 2]);
    }

    #[test]
    fn log_buckets_group_by_decade() {
        let keys = [1u64, 5, 9, 10, 55, 99, 100, 0];
        let vals = [1.0f64; 8];
        let out = mean_by_log_bucket(&keys, &vals, 1);
        let bounds: Vec<u64> = out.iter().map(|&(b, _, _)| b).collect();
        assert_eq!(bounds, vec![0, 1, 10, 100]);
        let counts: Vec<usize> = out.iter().map(|&(_, _, c)| c).collect();
        assert_eq!(counts, vec![1, 3, 3, 1]);
    }

    #[test]
    fn sc_sums_over_subscribers() {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(75)).unwrap();
        let t1 = b.add_topic(Rate::new(25)).unwrap();
        b.add_subscriber([t0]).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        let w = b.build();
        let sc = subscription_cardinalities(&w);
        assert!((sc[0] - 75.0).abs() < 1e-12);
        assert!((sc[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn spike_strength_detects_point_mass() {
        // Uniform background 1..=40 plus a big spike at 20.
        let mut values: Vec<u64> = (1..=40).collect();
        values.extend(std::iter::repeat_n(20, 50));
        let s = spike_strength(&values, 20, 5).expect("neighbourhood non-empty");
        assert!(s > 10.0, "spike strength {s}");
        // A flat distribution has strength ≈ 1.
        let flat: Vec<u64> = (1..=40).collect();
        let s_flat = spike_strength(&flat, 20, 5).unwrap();
        assert!((0.5..2.0).contains(&s_flat), "flat strength {s_flat}");
    }

    #[test]
    fn spike_strength_empty_neighbourhood() {
        assert_eq!(spike_strength(&[5, 5, 5], 5, 2), None);
    }
}
