//! End-to-end exercise of the `proptest!` macro surface this workspace uses.

use proptest::collection::vec;
use proptest::prelude::*;

fn pairs() -> impl Strategy<Value = (Vec<u64>, u64)> {
    vec(1u64..100, 1..=8).prop_flat_map(|xs| {
        let n = xs.len() as u64;
        (Just(xs), 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_map_index_in_bounds((xs, i) in pairs()) {
        prop_assert!((i as usize) < xs.len());
        prop_assert_eq!(xs.len(), xs.len());
    }

    #[test]
    fn question_mark_propagates(x in 1u64..50, y in 1u64..50) {
        let sum = x.checked_add(y)
            .ok_or_else(|| TestCaseError::fail("overflow"))?;
        prop_assert!(sum >= 2, "sum {} too small", sum);
        prop_assert_ne!(sum, 0);
    }

    #[test]
    fn trailing_comma_and_multi_binding(
        xs in vec(0u32..5, 0..6),
        k in 0usize..=3,
    ) {
        prop_assert!(xs.len() < 6 && k <= 3);
    }
}

// Declared without `#[test]` so the harness doesn't collect it; the
// should_panic wrapper below drives it and checks the failure report.
proptest! {
    fn always_fails(x in 10u64..20) {
        prop_assert!(x < 10, "x was {}", x);
    }
}

#[test]
#[should_panic(expected = "failed at case")]
fn failing_property_panics_with_case_info() {
    always_fails();
}
