//! Test-loop configuration and failure plumbing.

use core::fmt;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest's default; small instances keep this cheap.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold for the generated input.
    Fail(String),
    /// The input was rejected (e.g. by a filter) rather than failing.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

/// Result alias matching `proptest::test_runner::TestCaseResult`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator: seeded from the test name (FNV-1a) and
/// the case index, so any failure reproduces on re-run and across machines.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_and_name_sensitive() {
        let a = case_rng("alpha", 3).next_u64();
        let b = case_rng("alpha", 3).next_u64();
        let c = case_rng("alpha", 4).next_u64();
        let d = case_rng("beta", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
