//! Zero-copy subscriber-subset views over a [`Workload`].
//!
//! A [`WorkloadView`] borrows the workload's CSR arenas and (optionally) a
//! slice of subscriber ids, presenting that subset as a dense workload of
//! its own: view-local subscriber indices run `0..view.num_subscribers()`
//! and map back to arena ids through [`WorkloadView::global`]. Topics are
//! never re-indexed — every shard of a partitioned solve shares the same
//! topic space, which is what lets per-shard allocations be concatenated
//! and compacted without translation.
//!
//! Views are two pointers wide, `Copy`, and `Sync`, so solver shards can
//! hand them across scoped threads freely.

use crate::{Rate, SubscriberId, TopicId, Workload};

/// A borrowed, possibly-restricted window onto a [`Workload`].
///
/// The full view ([`Workload::view`]) is the identity: local indices equal
/// arena ids. A subset view ([`Workload::subset_view`]) re-numbers the
/// chosen subscribers densely in slice order while reading interests and
/// rates straight out of the shared arena — no cloning, no re-indexing of
/// topics.
///
/// ```
/// use pubsub_model::{Rate, SubscriberId, Workload};
///
/// # fn main() -> Result<(), pubsub_model::WorkloadError> {
/// let mut b = Workload::builder();
/// let t = b.add_topic(Rate::new(10))?;
/// b.add_subscriber([t])?;
/// let odd = b.add_subscriber([t])?;
/// let w = b.build();
///
/// let shard = [odd];
/// let view = w.subset_view(&shard);
/// assert_eq!(view.num_subscribers(), 1);
/// // Local index 0 is arena subscriber `odd`.
/// assert_eq!(view.global(SubscriberId::new(0)), odd);
/// assert_eq!(view.interests(SubscriberId::new(0)), &[t]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WorkloadView<'a> {
    workload: &'a Workload,
    /// `None` means "all subscribers, identity mapping".
    subset: Option<&'a [SubscriberId]>,
}

impl<'a> WorkloadView<'a> {
    /// The identity view over every subscriber.
    #[inline]
    pub fn full(workload: &'a Workload) -> Self {
        WorkloadView {
            workload,
            subset: None,
        }
    }

    /// A view over the given subscribers, re-numbered densely in slice
    /// order. Ids must be in range for `workload`; duplicates are legal
    /// but produce a view that double-counts the subscriber.
    #[inline]
    pub fn subset(workload: &'a Workload, subscribers: &'a [SubscriberId]) -> Self {
        WorkloadView {
            workload,
            subset: Some(subscribers),
        }
    }

    /// The underlying workload.
    #[inline]
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// `true` if this view covers every subscriber with identity indexing.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.subset.is_none()
    }

    /// Number of topics `|T|` (always the full topic space).
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.workload.num_topics()
    }

    /// Event rate `ev_t` of a topic.
    #[inline]
    pub fn rate(&self, t: TopicId) -> Rate {
        self.workload.rate(t)
    }

    /// All event rates, indexed by topic.
    #[inline]
    pub fn rates(&self) -> &'a [Rate] {
        self.workload.rates()
    }

    /// Number of subscribers visible through this view.
    #[inline]
    pub fn num_subscribers(&self) -> usize {
        match self.subset {
            Some(s) => s.len(),
            None => self.workload.num_subscribers(),
        }
    }

    /// Maps a view-local subscriber index to its arena id (identity for
    /// full views).
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for the view.
    #[inline]
    pub fn global(&self, local: SubscriberId) -> SubscriberId {
        match self.subset {
            Some(s) => s[local.index()],
            None => local,
        }
    }

    /// The interest set `T_v` of a view-local subscriber, borrowed from
    /// the arena.
    #[inline]
    pub fn interests(&self, local: SubscriberId) -> &'a [TopicId] {
        self.workload.interests(self.global(local))
    }

    /// The interest set of a view-local subscriber in (descending rate,
    /// ascending id) order, borrowed from the rate-ranked arena (see
    /// [`Workload::ranked_interests`]).
    #[inline]
    pub fn ranked_interests(&self, local: SubscriberId) -> &'a [TopicId] {
        self.workload.ranked_interests(self.global(local))
    }

    /// `Σ_{t ∈ T_v} ev_t` for a view-local subscriber.
    #[inline]
    pub fn subscriber_total_rate(&self, local: SubscriberId) -> Rate {
        self.workload.subscriber_total_rate(self.global(local))
    }

    /// The subscriber-specific threshold `τ_v = min(τ, Σ_{t∈T_v} ev_t)`
    /// for a view-local subscriber.
    #[inline]
    pub fn tau_v(&self, local: SubscriberId, tau: Rate) -> Rate {
        self.workload.tau_v(self.global(local), tau)
    }

    /// Iterates view-local subscriber indices `0..num_subscribers()`.
    pub fn subscribers(&self) -> impl ExactSizeIterator<Item = SubscriberId> + 'a {
        (0..self.num_subscribers() as u32).map(SubscriberId::new)
    }

    /// Iterates over all topic ids in index order.
    pub fn topics(&self) -> impl ExactSizeIterator<Item = TopicId> + 'a {
        self.workload.topics()
    }
}

impl<'a> From<&'a Workload> for WorkloadView<'a> {
    fn from(workload: &'a Workload) -> Self {
        WorkloadView::full(workload)
    }
}

impl Workload {
    /// The identity [`WorkloadView`] over every subscriber.
    #[inline]
    pub fn view(&self) -> WorkloadView<'_> {
        WorkloadView::full(self)
    }

    /// A zero-copy [`WorkloadView`] over the given subscriber subset.
    #[inline]
    pub fn subset_view<'a>(&'a self, subscribers: &'a [SubscriberId]) -> WorkloadView<'a> {
        WorkloadView::subset(self, subscribers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(20)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        let t2 = b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t1]).unwrap();
        b.add_subscriber([t1, t2]).unwrap();
        b.build()
    }

    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    #[test]
    fn full_view_is_identity() {
        let w = workload();
        let view = w.view();
        assert!(view.is_full());
        assert_eq!(view.num_subscribers(), 3);
        assert_eq!(view.num_topics(), 3);
        for s in view.subscribers() {
            assert_eq!(view.global(s), s);
            assert_eq!(view.interests(s), w.interests(s));
            assert_eq!(view.tau_v(s, Rate::new(12)), w.tau_v(s, Rate::new(12)));
        }
    }

    #[test]
    fn subset_view_renumbers_densely() {
        let w = workload();
        let shard = [v(2), v(0)];
        let view = w.subset_view(&shard);
        assert!(!view.is_full());
        assert_eq!(view.num_subscribers(), 2);
        assert_eq!(view.global(v(0)), v(2));
        assert_eq!(view.global(v(1)), v(0));
        assert_eq!(view.interests(v(0)), w.interests(v(2)));
        assert_eq!(view.subscriber_total_rate(v(1)), Rate::new(30));
    }

    #[test]
    fn subset_view_borrows_the_arena() {
        let w = workload();
        let shard = [v(1)];
        let view = w.subset_view(&shard);
        // Same slice, not a copy.
        assert_eq!(view.interests(v(0)).as_ptr(), w.interests(v(1)).as_ptr());
        assert_eq!(
            view.ranked_interests(v(0)).as_ptr(),
            w.ranked_interests(v(1)).as_ptr()
        );
    }

    #[test]
    fn ranked_interests_map_through_the_subset() {
        let w = workload();
        let shard = [v(2), v(0)];
        let view = w.subset_view(&shard);
        // v2 follows t1 (10) and t2 (5); v0 follows t0 (20) and t1 (10).
        assert_eq!(
            view.ranked_interests(v(0)),
            &[TopicId::new(1), TopicId::new(2)]
        );
        assert_eq!(
            view.ranked_interests(v(1)),
            &[TopicId::new(0), TopicId::new(1)]
        );
    }

    #[test]
    fn from_ref_builds_full_view() {
        let w = workload();
        let view: WorkloadView<'_> = (&w).into();
        assert!(view.is_full());
        assert_eq!(view.rates(), w.rates());
        assert_eq!(view.topics().count(), 3);
    }

    #[test]
    fn empty_subset_is_empty() {
        let w = workload();
        let view = w.subset_view(&[]);
        assert_eq!(view.num_subscribers(), 0);
        assert_eq!(view.subscribers().count(), 0);
    }
}
