//! Solver-side section codecs for the `MCSSTOR1` store: the Stage-1
//! [`Selection`] CSR and the [`crate::FleetLedger`] slot table (as
//! [`LedgerSlot`] rows). The container itself — header, section table,
//! checksums, atomic writes — lives in the [`mcss_store`] crate; this
//! module only maps solver types onto sections, so daemon snapshots and
//! ad-hoc tools share one on-disk vocabulary (`docs/STORE.md`).

use crate::{LedgerSlot, Selection};
use mcss_store::{section, section_name, StoreBuilder, StoreError, StoreReader};
use pubsub_model::{Bandwidth, SubscriberId, TopicId};

fn malformed(section_id: u32, detail: impl Into<String>) -> StoreError {
    StoreError::SectionMalformed {
        section: section_name(section_id).to_string(),
        detail: detail.into(),
    }
}

/// Appends the two selection sections (CSR offsets + flat topic arena),
/// written verbatim from the in-memory packed representation.
pub fn write_selection_sections(store: &mut StoreBuilder, selection: &Selection) {
    let (offsets, topics) = selection.raw_csr();
    store.u32s(section::SELECTION_OFFSETS, offsets);
    store.u32s(
        section::SELECTION_TOPICS,
        &topics.iter().map(|t| t.raw()).collect::<Vec<_>>(),
    );
}

/// Reassembles a [`Selection`] from its two sections.
///
/// # Errors
///
/// Container errors from the reader, or
/// [`StoreError::SectionMalformed`] when the CSR is structurally
/// inconsistent.
pub fn read_selection_sections(store: &StoreReader) -> Result<Selection, StoreError> {
    let offsets = store.u32s(section::SELECTION_OFFSETS)?;
    let topics: Vec<TopicId> = store
        .u32s(section::SELECTION_TOPICS)?
        .into_iter()
        .map(TopicId::new)
        .collect();
    Selection::try_from_csr_u32(offsets, topics)
        .map_err(|detail| malformed(section::SELECTION_OFFSETS, detail))
}

/// Slot-state encoding shared with the legacy snapshot format: 0 live,
/// 1 tombstoned, 2 failed (failure implies tombstone).
fn slot_state(slot: &LedgerSlot) -> u32 {
    if slot.failed {
        2
    } else {
        u32::from(slot.tombstone)
    }
}

/// Appends the four fleet-ledger sections: a fixed-width slot table
/// (`cap`, `used`, state, row count — two u64s + two u32s per slot) and
/// a three-arena CSR of the placement rows (one topic id per row, row
/// offsets into the flat subscriber arena).
pub fn write_ledger_sections(store: &mut StoreBuilder, slots: &[LedgerSlot]) {
    let total_rows: usize = slots.iter().map(|s| s.rows.len()).sum();
    let mut table = Vec::with_capacity(slots.len() * 24);
    let mut row_topics = Vec::with_capacity(total_rows);
    let mut row_offsets = Vec::with_capacity(total_rows + 1);
    let mut subscribers = Vec::new();
    row_offsets.push(0u32);
    for slot in slots {
        table.extend_from_slice(&slot.cap.get().to_le_bytes());
        table.extend_from_slice(&slot.used.get().to_le_bytes());
        table.extend_from_slice(&slot_state(slot).to_le_bytes());
        table.extend_from_slice(&(slot.rows.len() as u32).to_le_bytes());
        for (topic, subs) in &slot.rows {
            row_topics.push(topic.raw());
            subscribers.extend(subs.iter().map(|v| v.raw()));
            row_offsets.push(subscribers.len() as u32);
        }
    }
    store.section(section::LEDGER_SLOTS, table);
    store.u32s(section::LEDGER_ROW_TOPICS, &row_topics);
    store.u32s(section::LEDGER_ROW_OFFSETS, &row_offsets);
    store.u32s(section::LEDGER_SUBSCRIBERS, &subscribers);
}

/// Reassembles the slot table written by [`write_ledger_sections`],
/// suitable for [`crate::FleetLedger::from_slots`].
///
/// # Errors
///
/// Container errors from the reader, or
/// [`StoreError::SectionMalformed`] naming the first section whose
/// contents are inconsistent (bad state byte, non-monotone row offsets,
/// row counts that disagree with the arena lengths).
pub fn read_ledger_sections(store: &StoreReader) -> Result<Vec<LedgerSlot>, StoreError> {
    const SLOT_BYTES: usize = 24;
    let table = store.bytes(section::LEDGER_SLOTS)?;
    if table.len() % SLOT_BYTES != 0 {
        return Err(malformed(
            section::LEDGER_SLOTS,
            format!("{} bytes is not a whole number of slots", table.len()),
        ));
    }
    let row_topics = store.u32s(section::LEDGER_ROW_TOPICS)?;
    let row_offsets = store.u32s(section::LEDGER_ROW_OFFSETS)?;
    let subscribers = store.u32s(section::LEDGER_SUBSCRIBERS)?;
    if row_offsets.len() != row_topics.len() + 1 {
        return Err(malformed(
            section::LEDGER_ROW_OFFSETS,
            "row offsets must hold one entry per row plus a total",
        ));
    }
    if row_offsets.first().copied() != Some(0)
        || row_offsets.last().map(|&o| o as usize) != Some(subscribers.len())
        || row_offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(malformed(
            section::LEDGER_ROW_OFFSETS,
            "row offsets must climb from 0 to the subscriber-arena length",
        ));
    }

    let mut slots = Vec::with_capacity(table.len() / SLOT_BYTES);
    let mut row = 0usize;
    for record in table.chunks_exact(SLOT_BYTES) {
        let cap = Bandwidth::new(u64::from_le_bytes(record[0..8].try_into().unwrap()));
        let used = Bandwidth::new(u64::from_le_bytes(record[8..16].try_into().unwrap()));
        let state = u32::from_le_bytes(record[16..20].try_into().unwrap());
        let row_count = u32::from_le_bytes(record[20..24].try_into().unwrap()) as usize;
        let (tombstone, failed) = match state {
            0 => (false, false),
            1 => (true, false),
            2 => (true, true),
            other => {
                return Err(malformed(
                    section::LEDGER_SLOTS,
                    format!("slot state {other} is not live/tombstoned/failed"),
                ));
            }
        };
        if row + row_count > row_topics.len() {
            return Err(malformed(
                section::LEDGER_SLOTS,
                "slot row counts overrun the row arenas",
            ));
        }
        let rows = (row..row + row_count)
            .map(|r| {
                let subs = subscribers[row_offsets[r] as usize..row_offsets[r + 1] as usize]
                    .iter()
                    .map(|&v| SubscriberId::new(v))
                    .collect();
                (TopicId::new(row_topics[r]), subs)
            })
            .collect();
        row += row_count;
        slots.push(LedgerSlot {
            tombstone,
            failed,
            cap,
            used,
            rows,
        });
    }
    if row != row_topics.len() {
        return Err(malformed(
            section::LEDGER_SLOTS,
            "slot row counts do not cover the row arenas",
        ));
    }
    Ok(slots)
}
