//! Reserved-instance pricing (extension).
//!
//! §II-A notes that IaaS customers rent VMs "either on an hourly basis or
//! fixed duration". [`Ec2CostModel`] covers on-demand hourly rental; this
//! model covers the fixed-duration (reserved) alternative: an upfront fee
//! per VM buys a discounted hourly rate. Because `C1` stays affine in the
//! VM count, every solver guarantee carries over unchanged — the reserved
//! model simply shifts the VM-versus-bandwidth trade-off that
//! `CheaperToDistribute` (Alg. 7) arbitrates.
//!
//! ```
//! use cloud_cost::{instances, CostModel, Ec2CostModel, Money, ReservedCostModel};
//!
//! let on_demand = Ec2CostModel::paper_default(instances::C3_LARGE);
//! // Half-price hours for $9 upfront: pays for itself in half a window.
//! let reserved = ReservedCostModel::new(on_demand.clone(), Money::from_dollars(9), 0.5);
//! assert!(reserved.vm_cost(1) < on_demand.vm_cost(1));
//! assert!((reserved.break_even_windows() - 0.5).abs() < 1e-9);
//! ```

use crate::{CostModel, Ec2CostModel, Money};
use pubsub_model::Bandwidth;
use serde::Serialize;

/// On-demand pricing wrapped with a per-VM upfront fee and an hourly
/// discount — the classic 1-year reserved instance shape.
///
/// ```
/// use cloud_cost::{instances, CostModel, Ec2CostModel, Money, ReservedCostModel};
///
/// let on_demand = Ec2CostModel::paper_default(instances::C3_LARGE);
/// // 40% hourly discount for $10 upfront per VM.
/// let reserved = ReservedCostModel::new(on_demand.clone(), Money::from_dollars(10), 0.6);
/// // On-demand: $36/VM over the window; reserved: $10 + 0.6×$36 = $31.60.
/// assert_eq!(reserved.vm_cost(1).to_string(), "$31.60");
/// assert_eq!(reserved.bandwidth_cost(pubsub_model::Bandwidth::new(5_000_000)),
///            on_demand.bandwidth_cost(pubsub_model::Bandwidth::new(5_000_000)));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct ReservedCostModel {
    on_demand: Ec2CostModel,
    upfront_per_vm: Money,
    hourly_factor_millis: u64,
}

impl ReservedCostModel {
    /// Wraps an on-demand model with `upfront_per_vm` and a multiplicative
    /// `hourly_factor` in `(0, 1]` applied to the rental component.
    ///
    /// # Panics
    ///
    /// Panics if `hourly_factor` is not within `(0, 1]` or `upfront_per_vm`
    /// is negative.
    pub fn new(on_demand: Ec2CostModel, upfront_per_vm: Money, hourly_factor: f64) -> Self {
        assert!(
            hourly_factor > 0.0 && hourly_factor <= 1.0,
            "hourly factor must be in (0, 1]"
        );
        assert!(
            upfront_per_vm >= Money::ZERO,
            "upfront fee cannot be negative"
        );
        ReservedCostModel {
            on_demand,
            upfront_per_vm,
            hourly_factor_millis: (hourly_factor * 1000.0).round() as u64,
        }
    }

    /// The wrapped on-demand model.
    pub fn on_demand(&self) -> &Ec2CostModel {
        &self.on_demand
    }

    /// Per-VM capacity — identical to the underlying on-demand model
    /// (reservation changes the bill, not the hardware).
    pub fn capacity(&self) -> Bandwidth {
        self.on_demand.capacity()
    }

    /// The break-even window: reserved is cheaper than on-demand once the
    /// rental saved exceeds the upfront fee. Returns the ratio
    /// `upfront / savings_per_window`; below 1.0 the reservation already
    /// pays off within one billing window.
    pub fn break_even_windows(&self) -> f64 {
        let on_demand_vm = self.on_demand.vm_cost(1);
        let saved = on_demand_vm - self.discounted_rental(1);
        if saved <= Money::ZERO {
            return f64::INFINITY;
        }
        self.upfront_per_vm.as_dollars_f64() / saved.as_dollars_f64()
    }

    fn discounted_rental(&self, vms: usize) -> Money {
        self.on_demand
            .vm_cost(vms)
            .mul_ratio(u128::from(self.hourly_factor_millis), 1000)
    }
}

impl CostModel for ReservedCostModel {
    fn vm_cost(&self, vms: usize) -> Money {
        self.upfront_per_vm * (vms as u64) + self.discounted_rental(vms)
    }

    fn bandwidth_cost(&self, volume: Bandwidth) -> Money {
        self.on_demand.bandwidth_cost(volume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    fn base() -> Ec2CostModel {
        Ec2CostModel::paper_default(instances::C3_LARGE)
    }

    #[test]
    fn blends_upfront_and_discounted_rental() {
        let r = ReservedCostModel::new(base(), Money::from_dollars(10), 0.5);
        // $10 + 0.5 × $36 = $28 per VM; linear in count.
        assert_eq!(r.vm_cost(1), Money::from_dollars(28));
        assert_eq!(r.vm_cost(10), Money::from_dollars(280));
        assert_eq!(r.vm_cost(0), Money::ZERO);
    }

    #[test]
    fn bandwidth_and_capacity_unchanged() {
        let r = ReservedCostModel::new(base(), Money::from_dollars(10), 0.5);
        let v = Bandwidth::new(10_000_000);
        assert_eq!(r.bandwidth_cost(v), base().bandwidth_cost(v));
        assert_eq!(r.capacity(), base().capacity());
    }

    #[test]
    fn break_even_analysis() {
        // Saving $18/window for $9 upfront: pays off in half a window.
        let r = ReservedCostModel::new(base(), Money::from_dollars(9), 0.5);
        assert!((r.break_even_windows() - 0.5).abs() < 1e-9);
        // No discount: never pays off.
        let never = ReservedCostModel::new(base(), Money::from_dollars(9), 1.0);
        assert!(never.break_even_windows().is_infinite());
    }

    #[test]
    fn full_factor_equals_on_demand_plus_upfront() {
        let r = ReservedCostModel::new(base(), Money::from_dollars(3), 1.0);
        assert_eq!(r.vm_cost(2), base().vm_cost(2) + Money::from_dollars(6));
    }

    #[test]
    #[should_panic(expected = "hourly factor")]
    fn rejects_zero_factor() {
        let _ = ReservedCostModel::new(base(), Money::ZERO, 0.0);
    }

    #[test]
    fn object_safe_for_the_solver() {
        let r = ReservedCostModel::new(base(), Money::from_dollars(1), 0.9);
        let as_dyn: &dyn CostModel = &r;
        assert!(as_dyn.total_cost(1, Bandwidth::new(100)) > Money::ZERO);
    }
}
