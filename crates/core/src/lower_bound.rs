//! The lower bound of Alg. 5 / Theorem A.1.

use cloud_cost::{CostModel, FleetCostModel, Money};
use pubsub_model::{Bandwidth, Rate, Workload};

/// The (possibly non-tight) lower bound on any MCSS solution.
///
/// For each subscriber the cheapest conceivable service is
/// `max(τ_v, min_{t∈T_v} ev_t)` of outgoing volume — either exactly the
/// threshold, or, when every interesting topic alone overshoots it, the
/// smallest such topic (pairs are indivisible). Summing gives a volume
/// bound; dividing by `BC` bounds the VM count (Alg. 5; incoming volume is
/// bounded below by zero, see Theorem A.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LowerBound {
    /// Lower bound on total bandwidth volume.
    pub volume: Bandwidth,
    /// Lower bound on the number of VMs.
    pub vms: u64,
}

impl LowerBound {
    /// The bound on the objective: `C1(vms) + C2(volume)`.
    pub fn cost(&self, model: &dyn CostModel) -> Money {
        model.total_cost(self.vms as usize, self.volume)
    }

    /// The bound on the mixed-fleet objective
    /// `Σ_i C1_i(n_i) + C2(Σ bw)` over any tier assignment.
    ///
    /// Every VM of tier `i` hosting `bw ≤ cap_i` pays
    /// `price_i ≥ (price_i / cap_i) · bw ≥ density_min · bw`, where
    /// `density_min` is the cheapest per-bandwidth-unit rental in the
    /// catalogue (tier 0: [`FleetCostModel`] sorts density-ascending).
    /// Summing over the fleet, the rental term of *any* feasible typed
    /// allocation is at least `density_min · volume`; the bandwidth term
    /// is shared across tiers. Evaluated in exact u128 arithmetic and
    /// floored, so the bound is never overstated.
    pub fn cost_on_fleet(&self, fleet: &FleetCostModel) -> Money {
        let price = fleet.vm_window_cost(0).micros().max(0) as u128;
        let cap = u128::from(fleet.capacity(0).get());
        let volume = u128::from(self.volume.get());
        let rental_floor = price * volume / cap;
        let rental = Money::from_micros(i64::try_from(rental_floor).unwrap_or(i64::MAX));
        rental + fleet.bandwidth_cost(self.volume)
    }
}

/// Computes the Alg. 5 lower bound for a workload under threshold `τ` and
/// per-VM capacity `BC`.
///
/// Subscribers without interests need nothing and contribute nothing.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// ```
/// use mcss_core::lower_bound;
/// use pubsub_model::{Bandwidth, Rate, Workload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Workload::builder();
/// let t = b.add_topic(Rate::new(30))?;
/// b.add_subscriber([t])?;
/// let lb = lower_bound(&b.build(), Rate::new(10), Bandwidth::new(25));
/// // τ_v = 10 but the only topic delivers 30 at minimum.
/// assert_eq!(lb.volume, Bandwidth::new(30));
/// assert_eq!(lb.vms, 2);
/// # Ok(())
/// # }
/// ```
pub fn lower_bound(workload: &Workload, tau: Rate, capacity: Bandwidth) -> LowerBound {
    assert!(!capacity.is_zero(), "capacity must be positive");
    let mut volume = Bandwidth::ZERO;
    for v in workload.subscribers() {
        let interests = workload.interests(v);
        if interests.is_empty() {
            continue;
        }
        let tau_v = workload.tau_v(v, tau);
        let min_rate = interests
            .iter()
            .map(|&t| workload.rate(t))
            .min()
            .expect("non-empty interests");
        volume += tau_v.max(min_rate);
    }
    LowerBound {
        volume,
        vms: volume.div_ceil_by(capacity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{GreedySelectPairs, PairSelector, RandomSelectPairs};
    use crate::stage2::{Allocator, CbpConfig, CustomBinPacking, FirstFitBinPacking};
    use crate::McssInstance;
    use cloud_cost::{LinearCostModel, Money};
    use pubsub_model::TopicId;

    fn workload(rates: &[u64], interests: &[&[u32]]) -> Workload {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn tau_dominates_when_small_topics_exist() {
        let w = workload(&[5, 3], &[&[0, 1]]);
        let lb = lower_bound(&w, Rate::new(6), Bandwidth::new(10));
        assert_eq!(lb.volume, Bandwidth::new(6));
        assert_eq!(lb.vms, 1);
    }

    #[test]
    fn indivisible_pairs_raise_the_bound() {
        let w = workload(&[50, 40], &[&[0, 1]]);
        let lb = lower_bound(&w, Rate::new(10), Bandwidth::new(100));
        assert_eq!(lb.volume, Bandwidth::new(40)); // min topic rate
    }

    #[test]
    fn sums_over_subscribers() {
        let w = workload(&[10, 20], &[&[0], &[1], &[0, 1]]);
        let lb = lower_bound(&w, Rate::new(15), Bandwidth::new(25));
        // v0: max(10, 10) = 10 (τ_v = min(15, 10) = 10);
        // v1: max(15, 20) = 20 (τ_v = 15, min rate 20);
        // v2: max(15, 10) = 15.
        assert_eq!(lb.volume, Bandwidth::new(45));
        assert_eq!(lb.vms, 2);
    }

    #[test]
    fn empty_interests_contribute_nothing() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let lb = lower_bound(&b.build(), Rate::new(10), Bandwidth::new(10));
        assert_eq!(lb.volume, Bandwidth::ZERO);
        assert_eq!(lb.vms, 0);
    }

    #[test]
    fn cost_combines_both_terms() {
        let lb = LowerBound {
            volume: Bandwidth::new(100),
            vms: 3,
        };
        let m = LinearCostModel::new(Money::from_dollars(2), Money::from_micros(5));
        assert_eq!(
            lb.cost(&m),
            Money::from_dollars(6) + Money::from_micros(500)
        );
    }

    /// On a one-tier catalogue the fleet bound is the homogeneous bound
    /// with the VM ceiling relaxed to an exact ratio — never above it.
    #[test]
    fn fleet_bound_is_floor_of_single_tier_bound() {
        use cloud_cost::{instances, Ec2CostModel, FleetCostModel};
        let w = workload(&[10, 20], &[&[0], &[1], &[0, 1]]);
        let model = Ec2CostModel::paper_default(instances::C3_LARGE);
        let fleet = FleetCostModel::new(vec![model.clone()]);
        let lb = lower_bound(&w, Rate::new(15), model.capacity());
        assert!(lb.cost_on_fleet(&fleet) <= lb.cost(&model));
    }

    /// The mixed bound must hold for every typed allocation the mixed
    /// packer produces, across thresholds.
    #[test]
    fn fleet_bound_never_above_mixed_packing() {
        use cloud_cost::{Ec2CostModel, FleetCostModel, InstanceType};
        let w = workload(
            &[40, 25, 16, 9, 5, 3],
            &[&[0, 1, 2], &[1, 3, 4], &[2, 4, 5], &[0, 5], &[3, 4, 5]],
        );
        let fleet = FleetCostModel::new(vec![
            Ec2CostModel::paper_default(InstanceType::new("small", 150_000, 64))
                .with_capacity_events(120),
            Ec2CostModel::paper_default(InstanceType::new("big", 290_000, 128))
                .with_capacity_events(260),
        ]);
        for tau in [1u64, 8, 20, 50] {
            let inst = McssInstance::new(w.clone(), Rate::new(tau), fleet.max_capacity()).unwrap();
            let lb = lower_bound(&w, inst.tau(), fleet.max_capacity());
            let mixed = crate::Solver::default().solve_mixed(&inst, &fleet).unwrap();
            assert!(
                mixed.report.total_cost >= lb.cost_on_fleet(&fleet),
                "mixed packing beat the fleet bound at τ={tau}"
            );
        }
    }

    /// Theorem A.1's actual claim: every heuristic solution costs at least
    /// the bound. Exercised across selectors × allocators × τ.
    #[test]
    fn bound_holds_for_all_heuristic_combinations() {
        let w = workload(
            &[40, 25, 16, 9, 5, 3],
            &[&[0, 1, 2], &[1, 3, 4], &[2, 4, 5], &[0, 5], &[3, 4, 5]],
        );
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(3));
        let capacity = Bandwidth::new(120);
        for tau in [1u64, 8, 20, 50, 500] {
            let inst = McssInstance::new(w.clone(), Rate::new(tau), capacity).unwrap();
            let lb = lower_bound(&w, inst.tau(), capacity);
            let selectors: Vec<Box<dyn PairSelector>> = vec![
                Box::new(GreedySelectPairs::new()),
                Box::new(RandomSelectPairs::new(9)),
            ];
            for sel in &selectors {
                let s = sel.select(&inst).unwrap();
                let allocators: Vec<Box<dyn Allocator>> = vec![
                    Box::new(FirstFitBinPacking::new()),
                    Box::new(CustomBinPacking::new(CbpConfig::full())),
                ];
                for alloc in &allocators {
                    let a = alloc.allocate(&w, &s, capacity, &cost).unwrap();
                    assert!(
                        a.cost(&cost) >= lb.cost(&cost),
                        "{}+{} beat the lower bound at τ={tau}",
                        sel.name(),
                        alloc.name()
                    );
                    assert!(a.total_bandwidth() >= lb.volume);
                    assert!(a.vm_count() as u64 >= lb.vms);
                }
            }
        }
    }
}
