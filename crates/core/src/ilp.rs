//! Export of the exact Integer Program formulation (paper Eq. 1–3).
//!
//! §III notes that the IP formulation "is expensive to solve optimally in
//! practice" and that no IP solver scales to the millions of variables the
//! workloads induce — but for completeness, and for cross-checking small
//! instances against external solvers, this module emits the exact program
//! in the ubiquitous CPLEX LP text format.
//!
//! Linearization: the paper writes `bw_b` with a `max_{v∈V_t} x_tvb` term
//! (charge a topic's incoming stream once per VM) and satisfaction with
//! `max_b x_tvb` (count a pair once). Both maxima are standard
//! disjunctions, linearized with indicator variables:
//!
//! * `z[t,b] ≥ x[t,v,b]` — topic presence on a VM (incoming stream);
//! * `w[t,v] ≤ Σ_b x[t,v,b]` — pair served anywhere;
//! * `y[b]` — VM rented; capacity couples to it: `bw_b ≤ BC·y[b]`.
//!
//! The objective prices VMs at `C1(1)` each and bandwidth at `C2(1)` per
//! event-unit, i.e. it is exact for the affine cost models the paper's
//! reduction and evaluation use.

use crate::McssInstance;
use cloud_cost::{CostModel, Money};
use std::fmt::Write as _;

/// Maximum VM count to instantiate variables for.
///
/// A safe upper bound is one VM per selected pair; callers usually pass
/// something tighter (e.g. the heuristic's VM count).
#[derive(Clone, Copy, Debug)]
pub struct IlpOptions {
    /// Number of candidate VMs `|B|`.
    pub max_vms: usize,
}

/// Renders the MCSS integer program in CPLEX LP format.
///
/// Variables: `x_t_v_b` (pair assignment), `z_t_b` (topic on VM),
/// `w_t_v` (pair counted for satisfaction), `y_b` (VM rented).
///
/// # Panics
///
/// Panics if `options.max_vms` is zero.
pub fn export_lp(instance: &McssInstance, cost: &dyn CostModel, options: IlpOptions) -> String {
    assert!(options.max_vms > 0, "need at least one candidate VM");
    let workload = instance.workload();
    let capacity = instance.capacity().get();
    let vms = options.max_vms;
    let vm_price = price(cost.vm_cost(1) - cost.vm_cost(0));
    // Probe the marginal bandwidth price over a large volume: per-unit
    // prices are routinely sub-micro (the EC2 paper model charges
    // fractions of a cent per GB), and probing a single unit truncates
    // to zero in integer `Money`, silently dropping the whole bandwidth
    // term from the objective.
    const BW_PROBE: u64 = 1_000_000;
    let unit_bw_price = price(
        cost.bandwidth_cost(pubsub_model::Bandwidth::new(BW_PROBE))
            - cost.bandwidth_cost(pubsub_model::Bandwidth::ZERO),
    ) / BW_PROBE as f64;

    let mut lp = String::new();
    let _ = writeln!(lp, "\\ MCSS integer program (ICDCS 2014, Eq. 1-3)");
    let _ = writeln!(
        lp,
        "\\ topics={} subscribers={} pairs={} vms={} capacity={}",
        workload.num_topics(),
        workload.num_subscribers(),
        workload.pair_count(),
        vms,
        capacity
    );
    let _ = writeln!(lp, "Minimize");
    let mut obj = String::from(" obj:");
    for b in 0..vms {
        let _ = write!(obj, " + {vm_price} y_{b}");
    }
    for v in workload.subscribers() {
        for &t in workload.interests(v) {
            let ev = workload.rate(t).get();
            for b in 0..vms {
                let _ = write!(
                    obj,
                    " + {} x_{}_{}_{}",
                    unit_bw_price * ev as f64,
                    t.raw(),
                    v.raw(),
                    b
                );
            }
        }
    }
    for t in workload.topics() {
        let ev = workload.rate(t).get();
        for b in 0..vms {
            let _ = write!(obj, " + {} z_{}_{}", unit_bw_price * ev as f64, t.raw(), b);
        }
    }
    let _ = writeln!(lp, "{obj}");

    let _ = writeln!(lp, "Subject To");
    // Capacity per VM, coupled to rental.
    for b in 0..vms {
        let mut row = format!(" cap_{b}:");
        for v in workload.subscribers() {
            for &t in workload.interests(v) {
                let _ = write!(
                    row,
                    " + {} x_{}_{}_{}",
                    workload.rate(t).get(),
                    t.raw(),
                    v.raw(),
                    b
                );
            }
        }
        for t in workload.topics() {
            let _ = write!(row, " + {} z_{}_{}", workload.rate(t).get(), t.raw(), b);
        }
        let _ = writeln!(lp, "{row} - {capacity} y_{b} <= 0");
    }
    // Topic presence: x ≤ z.
    for v in workload.subscribers() {
        for &t in workload.interests(v) {
            for b in 0..vms {
                let _ = writeln!(
                    lp,
                    " pres_{}_{}_{}: x_{}_{}_{} - z_{}_{} <= 0",
                    t.raw(),
                    v.raw(),
                    b,
                    t.raw(),
                    v.raw(),
                    b,
                    t.raw(),
                    b
                );
            }
        }
    }
    // Served-anywhere indicator: w ≤ Σ_b x.
    for v in workload.subscribers() {
        for &t in workload.interests(v) {
            let mut row = format!(" served_{}_{}: w_{}_{}", t.raw(), v.raw(), t.raw(), v.raw());
            for b in 0..vms {
                let _ = write!(row, " - x_{}_{}_{}", t.raw(), v.raw(), b);
            }
            let _ = writeln!(lp, "{row} <= 0");
        }
    }
    // Satisfaction: Σ_t ev_t w_tv ≥ τ_v.
    for v in workload.subscribers() {
        let tau_v = instance.tau_v(v).get();
        if tau_v == 0 {
            continue;
        }
        let mut row = format!(" sat_{}:", v.raw());
        for &t in workload.interests(v) {
            let _ = write!(
                row,
                " + {} w_{}_{}",
                workload.rate(t).get(),
                t.raw(),
                v.raw()
            );
        }
        let _ = writeln!(lp, "{row} >= {tau_v}");
    }

    let _ = writeln!(lp, "Binary");
    for b in 0..vms {
        let _ = writeln!(lp, " y_{b}");
    }
    for t in workload.topics() {
        for b in 0..vms {
            let _ = writeln!(lp, " z_{}_{}", t.raw(), b);
        }
    }
    for v in workload.subscribers() {
        for &t in workload.interests(v) {
            let _ = writeln!(lp, " w_{}_{}", t.raw(), v.raw());
            for b in 0..vms {
                let _ = writeln!(lp, " x_{}_{}_{}", t.raw(), v.raw(), b);
            }
        }
    }
    let _ = writeln!(lp, "End");
    lp
}

/// Dollar figure with micro precision for LP coefficients.
fn price(m: Money) -> f64 {
    m.as_dollars_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::LinearCostModel;
    use pubsub_model::{Bandwidth, Rate, Workload};

    fn tiny_instance() -> McssInstance {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(10)).unwrap();
        let t1 = b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        McssInstance::new(b.build(), Rate::new(8), Bandwidth::new(40)).unwrap()
    }

    fn cost() -> LinearCostModel {
        LinearCostModel::new(Money::from_dollars(2), Money::from_micros(3))
    }

    #[test]
    fn lp_has_all_sections() {
        let lp = export_lp(&tiny_instance(), &cost(), IlpOptions { max_vms: 2 });
        for section in ["Minimize", "Subject To", "Binary", "End"] {
            assert!(lp.contains(section), "missing {section}");
        }
    }

    #[test]
    fn lp_counts_match_formulation() {
        let lp = export_lp(&tiny_instance(), &cost(), IlpOptions { max_vms: 2 });
        // 2 pairs × 2 VMs assignment vars.
        for var in ["x_0_0_0", "x_0_0_1", "x_1_0_0", "x_1_0_1"] {
            assert!(lp.contains(var), "missing {var}");
        }
        // Topic presence and satisfaction machinery.
        assert!(lp.contains("z_0_0"));
        assert!(lp.contains("w_1_0"));
        assert_eq!(lp.matches("cap_").count(), 2);
        assert_eq!(lp.matches(" sat_0:").count(), 1);
        // τ_v = min(8, 15) = 8 on the RHS.
        assert!(lp.contains(">= 8"));
    }

    #[test]
    fn lp_capacity_couples_to_rental() {
        let lp = export_lp(&tiny_instance(), &cost(), IlpOptions { max_vms: 1 });
        assert!(
            lp.contains("- 40 y_0 <= 0"),
            "capacity row must reference BC·y"
        );
    }

    #[test]
    fn zero_tau_subscribers_need_no_constraint() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let inst = McssInstance::new(b.build(), Rate::new(5), Bandwidth::new(10)).unwrap();
        let lp = export_lp(&inst, &cost(), IlpOptions { max_vms: 1 });
        assert!(!lp.contains("sat_0"));
    }

    #[test]
    #[should_panic(expected = "at least one candidate VM")]
    fn zero_vms_rejected() {
        let _ = export_lp(&tiny_instance(), &cost(), IlpOptions { max_vms: 0 });
    }
}
