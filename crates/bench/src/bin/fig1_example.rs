//! E-FIG1: the worked allocation example of Fig. 1.
//!
//! Run with: `cargo run --release -p mcss-bench --bin fig1_example`

fn main() {
    print!("{}", mcss_bench::experiments::fig1_example());
}
