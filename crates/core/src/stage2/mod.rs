//! Stage 2 of the MCSS heuristic: allocating selected pairs to VMs.
//!
//! Given the pair set `S` from Stage 1, Stage 2 packs pairs onto VMs of
//! capacity `BC` (paper §III-B). Two allocators:
//!
//! * [`FirstFitBinPacking`] — Alg. 3, the classical first-fit strategy that
//!   treats pairs individually;
//! * [`CustomBinPacking`] — Alg. 4, the paper's customized packing with the
//!   incremental optimizations (b)–(e) of §III-B/§IV-D, toggled through
//!   [`CbpConfig`]:
//!   * (b) grouping all pairs of a topic and placing them together,
//!   * (c) most expensive topic first ([`ExpensiveOrder`]),
//!   * (d) most-free-VM-first when spilling onto existing VMs,
//!   * (e) the cost-model-driven spill-vs-new-VM decision
//!     ([`cheaper_to_distribute`], Alg. 7);
//! * [`MixedFleetPacker`] — *extension*: packing onto a heterogeneous
//!   fleet of several instance types ranked by cost density, never worse
//!   than the best homogeneous fleet on the same selection.
//!
//! Both allocators maintain the exact marginal-cost invariant: placing a
//! pair `(t, v)` on VM `b` consumes `2·ev_t` if `t` is new to `b`
//! (incoming stream + delivery) and `ev_t` otherwise. See `DESIGN.md` for
//! the deliberate deviations from the paper's (looser) pseudocode checks.

mod baselines;
mod cbp;
mod cheaper;
mod ffbp;
mod ffd;
mod improve;
mod mixed;
mod vm;

pub use baselines::{BestFitBinPacking, NextFitBinPacking};
pub use cbp::{CbpConfig, CustomBinPacking, ExpensiveOrder};
pub use cheaper::cheaper_to_distribute;
pub use ffbp::FirstFitBinPacking;
pub use ffd::FfdBinPacking;
pub use improve::{improve, improve_mixed, ImproveReport, SearchBudget};
pub use mixed::{mixed_cost_split, MixedFleetPacker};

pub(crate) use improve::{group_pos, vm_usage, VmGroups};
pub(crate) use vm::VmBuild;

use crate::{Allocation, McssError, Selection};
use cloud_cost::CostModel;
use pubsub_model::{Bandwidth, Workload, WorkloadView};

/// A Stage-2 algorithm: packs a selection onto VMs.
///
/// Implementations operate on a [`WorkloadView`]: the `selection` is
/// indexed in the view's local subscriber numbering (as produced by
/// [`PairSelector::select_view`](crate::stage1::PairSelector::select_view)
/// over the same view), while the emitted [`Allocation`] always carries
/// arena subscriber ids — which is what lets per-shard fleets be
/// concatenated and validated against the full workload.
pub trait Allocator: std::fmt::Debug {
    /// Short name used in reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Packs every pair of `selection` (view-local indexing) onto VMs of
    /// the given capacity, emitting arena subscriber ids.
    ///
    /// The cost model is consulted only by allocators with cost-driven
    /// decisions (CBP optimization (e)); others ignore it.
    ///
    /// # Errors
    ///
    /// [`McssError::InfeasibleTopic`] if a selected topic cannot fit on an
    /// empty VM (`2·ev_t > BC`).
    fn allocate_view(
        &self,
        view: WorkloadView<'_>,
        selection: &Selection,
        capacity: Bandwidth,
        cost: &dyn CostModel,
    ) -> Result<Allocation, McssError>;

    /// Convenience wrapper: packs a whole-workload selection.
    ///
    /// # Errors
    ///
    /// Propagates [`Allocator::allocate_view`] errors.
    fn allocate(
        &self,
        workload: &Workload,
        selection: &Selection,
        capacity: Bandwidth,
        cost: &dyn CostModel,
    ) -> Result<Allocation, McssError> {
        self.allocate_view(workload.view(), selection, capacity, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{GreedySelectPairs, PairSelector};
    use crate::McssInstance;
    use cloud_cost::{LinearCostModel, Money};
    use pubsub_model::{Rate, Workload};

    /// Contract shared by every allocator: output validates against the
    /// MCSS constraints whenever Stage 1 satisfied the subscribers.
    #[test]
    fn all_allocators_produce_valid_allocations() {
        let mut b = Workload::builder();
        let mut ts = Vec::new();
        for r in [30u64, 22, 15, 9, 4, 2] {
            ts.push(b.add_topic(Rate::new(r)).unwrap());
        }
        b.add_subscriber([ts[0], ts[1], ts[2]]).unwrap();
        b.add_subscriber([ts[1], ts[3], ts[4]]).unwrap();
        b.add_subscriber([ts[0], ts[5]]).unwrap();
        b.add_subscriber([ts[2], ts[3], ts[5]]).unwrap();
        let w = b.build();
        let inst = McssInstance::new(w, Rate::new(25), Bandwidth::new(100)).unwrap();
        let sel = GreedySelectPairs::new().select(&inst).unwrap();
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1));

        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(FirstFitBinPacking::new()),
            Box::new(CustomBinPacking::new(CbpConfig::grouping_only())),
            Box::new(CustomBinPacking::new(CbpConfig::full())),
        ];
        for a in allocators {
            let alloc = a
                .allocate(inst.workload(), &sel, inst.capacity(), &cost)
                .expect("feasible instance");
            alloc
                .validate(inst.workload(), inst.tau())
                .unwrap_or_else(|e| panic!("{} produced invalid allocation: {e}", a.name()));
            assert_eq!(
                alloc.pair_count(),
                sel.pair_count(),
                "{} lost pairs",
                a.name()
            );
        }
    }
}
