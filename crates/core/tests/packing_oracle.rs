//! Property suite proving the anytime Stage-2 machinery against the
//! exhaustive [`ExactSolver`] oracle on small instances:
//!
//! - the cost sandwich `greedy ≥ refined ≥ exact ≥ lower bound`;
//! - the Dósa bound for FFD on pure bin-packing instances,
//!   `9·FFD ≤ 11·OPT + 6`;
//! - certificate soundness: when the search stops because the Alg. 5
//!   bound is met, the refined cost *is* the exact optimum;
//! - delivery invariance and bit-for-bit determinism of `improve`;
//! - the mixed-fleet lower bound never exceeds the achievable cost.
//!
//! The serve-daemon side of the same machinery (crash mid-compaction,
//! deterministic replay) lives in `serve_replay.rs`.

use cloud_cost::{Ec2CostModel, FleetCostModel, InstanceType, LinearCostModel, Money};
use mcss_core::exact::ExactSolver;
use mcss_core::stage1::{GreedySelectPairs, PairSelector};
use mcss_core::stage2::{
    improve, Allocator, CbpConfig, CustomBinPacking, FfdBinPacking, SearchBudget,
};
use mcss_core::{lower_bound, McssInstance, Solver, SolverParams};
use proptest::collection::vec;
use proptest::prelude::*;
use pubsub_model::{Bandwidth, Rate, TopicId, Workload};

fn nocost() -> LinearCostModel {
    LinearCostModel::new(Money::from_dollars(1), Money::from_micros(5))
}

/// VM rental only — makes the exact optimum a pure bin-count minimum.
fn vm_only_cost() -> LinearCostModel {
    LinearCostModel::new(Money::from_dollars(1), Money::ZERO)
}

/// Tiny instances whose pair count stays ≤ 7, well under the
/// [`ExactSolver`] default limit of 12: subscribers over prefixes of
/// the topic list (all topics, first two, first one).
fn arb_small_instance() -> impl Strategy<Value = McssInstance> {
    (vec(1u64..=12, 1..=4), 1u64..=20, 0u64..=60).prop_map(|(rates, tau, cap_slack)| {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = rates
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber(ts.iter().copied()).unwrap();
        b.add_subscriber(ts.iter().copied().take(2)).unwrap();
        b.add_subscriber(ts.iter().copied().take(1)).unwrap();
        let max_rate = rates.iter().copied().max().unwrap();
        let cap = Bandwidth::new(2 * max_rate + cap_slack);
        McssInstance::new(b.build(), Rate::new(tau), cap).unwrap()
    })
}

/// Random workload mirroring the `proptests.rs` generator: 1..=8 topics
/// with rates 1..=30, 1..=8 subscribers with non-empty interests. Pair
/// counts routinely exceed the exact limit — only used where no oracle
/// is needed.
fn arb_workload() -> impl Strategy<Value = Workload> {
    vec(1u64..=30, 1..=8).prop_flat_map(|rates| {
        let nt = rates.len() as u32;
        vec(vec(0..nt, 1..=6), 1..=8).prop_map(move |interests| {
            let mut b = Workload::builder();
            for &r in &rates {
                b.add_topic(Rate::new(r)).unwrap();
            }
            for tv in &interests {
                b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                    .unwrap();
            }
            b.build()
        })
    })
}

fn arb_instance() -> impl Strategy<Value = McssInstance> {
    (arb_workload(), 1u64..=80, 60u64..=400).prop_map(|(w, tau, cap)| {
        McssInstance::new(w, Rate::new(tau), Bandwidth::new(cap)).unwrap()
    })
}

/// A random two/three-tier fleet whose smallest tier always fits the
/// largest `arb_workload` topic (rate ≤ 30 → pair cost ≤ 60).
fn arb_fleet() -> impl Strategy<Value = FleetCostModel> {
    (
        60u64..=150,         // small capacity
        1u64..=4,            // big capacity multiplier
        50_000u64..=400_000, // small hourly micro-price
        1u64..=5,            // big price multiplier
        0u64..=1,            // 1 = add a third (mid) tier
    )
        .prop_map(|(small_cap, cap_mul, small_price, price_mul, three)| {
            let three = three == 1;
            let small_price = small_price as i64;
            let mut tiers = vec![
                Ec2CostModel::paper_default(InstanceType::new("oracle-small", small_price, 64))
                    .with_capacity_events(small_cap),
                Ec2CostModel::paper_default(InstanceType::new(
                    "oracle-big",
                    small_price * price_mul as i64,
                    128,
                ))
                .with_capacity_events(small_cap * cap_mul),
            ];
            if three {
                tiers.push(
                    Ec2CostModel::paper_default(InstanceType::new(
                        "oracle-mid",
                        small_price * 2,
                        96,
                    ))
                    .with_capacity_events(small_cap * 3 / 2),
                );
            }
            FleetCostModel::new(tiers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full anytime sandwich on oracle-sized instances:
    /// `greedy ≥ refined ≥ exact ≥ lower bound`. The refined pipeline is
    /// the greedy one plus an unbounded improvement pass, so the first
    /// inequality also certifies that refinement never regresses.
    #[test]
    fn sandwich_greedy_refined_exact_lb(inst in arb_small_instance()) {
        let cost = nocost();
        let greedy = Solver::default().solve(&inst, &cost).unwrap();
        let refined = Solver::new(SolverParams::default().with_refinement(SearchBudget::UNBOUNDED))
            .solve(&inst, &cost)
            .unwrap();
        let exact = ExactSolver::new().solve(&inst, &cost).unwrap();
        let lb = lower_bound(inst.workload(), inst.tau(), inst.capacity());

        prop_assert!(
            refined.report.total_cost <= greedy.report.total_cost,
            "refined {} above greedy {}",
            refined.report.total_cost,
            greedy.report.total_cost
        );
        prop_assert!(
            exact.cost <= refined.report.total_cost,
            "exact {} above refined {}",
            exact.cost,
            refined.report.total_cost
        );
        prop_assert!(
            lb.cost(&cost) <= exact.cost,
            "lower bound {} above exact {}",
            lb.cost(&cost),
            exact.cost
        );
        refined
            .allocation
            .validate(inst.workload(), inst.tau())
            .map_err(|e| TestCaseError::fail(format!("refined allocation invalid: {e}")))?;
    }

    /// When the certificate fires (search stopped because the Alg. 5
    /// bound was reached), the refined cost must *be* the exact optimum
    /// — a sound certificate never stops the search above it.
    #[test]
    fn certificate_never_stops_above_exact(inst in arb_small_instance()) {
        let cost = nocost();
        let refined = Solver::new(SolverParams::default().with_refinement(SearchBudget::UNBOUNDED))
            .solve(&inst, &cost)
            .unwrap();
        let report = refined.refinement.expect("refinement was requested");
        prop_assert_eq!(report.final_cost, refined.report.total_cost);
        if report.certificate_met {
            let exact = ExactSolver::new().solve(&inst, &cost).unwrap();
            prop_assert_eq!(
                refined.report.total_cost, exact.cost,
                "certificate claimed optimality but exact found cheaper"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dósa's tight FFD guarantee, `FFD ≤ 11/9·OPT + 6/9`, checked as
    /// the integer inequality `9·FFD ≤ 11·OPT + 6` against the exact
    /// oracle. Singleton interests over distinct topics make the
    /// instance a pure bin-packing problem (items of size `2·rate`),
    /// and a VM-only cost model makes the exact optimum a bin count.
    #[test]
    fn ffd_respects_dosa_bound(
        rates in vec(1u64..=30, 2..=9),
        cap_slack in 0u64..=80,
    ) {
        let mut b = Workload::builder();
        for &r in &rates {
            let t = b.add_topic(Rate::new(r)).unwrap();
            b.add_subscriber([t]).unwrap();
        }
        let w = b.build();
        let max_rate = rates.iter().copied().max().unwrap();
        let cap = Bandwidth::new(2 * max_rate + cap_slack);
        let inst = McssInstance::new(w, Rate::new(1), cap).unwrap();
        let cost = vm_only_cost();

        let exact = ExactSolver::new().solve(&inst, &cost).unwrap();
        let sel = GreedySelectPairs::new().select(&inst).unwrap();
        let ffd = FfdBinPacking::new()
            .allocate(inst.workload(), &sel, inst.capacity(), &cost)
            .unwrap();
        ffd.validate(inst.workload(), inst.tau())
            .map_err(|e| TestCaseError::fail(format!("FFD allocation invalid: {e}")))?;

        let ffd_bins = ffd.vm_count() as u64;
        let opt_bins = exact.vms;
        prop_assert!(
            9 * ffd_bins <= 11 * opt_bins + 6,
            "Dósa bound violated: FFD used {ffd_bins} bins vs OPT {opt_bins}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `improve` is a pure repacking: the delivered per-pair rates are
    /// bit-identical before and after, the result still validates, the
    /// cost never rises below the certificate, and two runs from the
    /// same start produce bit-equal allocations and reports.
    #[test]
    fn improve_preserves_delivery_and_is_deterministic(inst in arb_instance()) {
        let w = inst.workload();
        let cost = nocost();
        let sel = GreedySelectPairs::new().select(&inst).unwrap();
        let start = CustomBinPacking::new(CbpConfig::full())
            .allocate(w, &sel, inst.capacity(), &cost)
            .unwrap();
        let baseline_rates = start.delivered_rates(w);
        let certificate = lower_bound(w, inst.tau(), inst.capacity()).cost(&cost);

        let (r1, rep1) = improve(start.clone(), w, &cost, certificate, SearchBudget::UNBOUNDED);
        let (r2, rep2) = improve(start.clone(), w, &cost, certificate, SearchBudget::UNBOUNDED);
        prop_assert_eq!(&r1, &r2, "improve must be deterministic");
        // `elapsed` is wall-clock and legitimately differs between runs;
        // everything else must agree bit for bit.
        prop_assert_eq!(rep1.steps, rep2.steps);
        prop_assert_eq!(rep1.final_cost, rep2.final_cost);
        prop_assert_eq!(rep1.certificate_met, rep2.certificate_met);

        r1.validate(w, inst.tau())
            .map_err(|e| TestCaseError::fail(format!("refined allocation invalid: {e}")))?;
        prop_assert_eq!(
            r1.delivered_rates(w),
            baseline_rates,
            "improve changed what a subscriber receives"
        );
        prop_assert!(rep1.final_cost <= rep1.initial_cost, "cost rose");
        prop_assert_eq!(rep1.initial_cost, start.cost(&cost));
        prop_assert_eq!(rep1.final_cost, r1.cost(&cost));
        prop_assert!(rep1.final_cost >= certificate, "refined below the lower bound");

        // A truncated budget still yields a valid, never-worse packing.
        let (partial, prep) = improve(start.clone(), w, &cost, certificate, SearchBudget::steps(2));
        prop_assert!(prep.steps <= 2, "step budget overrun");
        prop_assert!(prep.final_cost <= prep.initial_cost);
        partial
            .validate(w, inst.tau())
            .map_err(|e| TestCaseError::fail(format!("partial refinement invalid: {e}")))?;
        prop_assert_eq!(partial.delivered_rates(w), r1.delivered_rates(w));
    }
}

/// Refinement after the shard-merge path: at every shard count the
/// refined solve is bit-reproducible run to run, never worse than the
/// unrefined solve at the same shard count, and still valid. (Different
/// shard counts may start from different merged packings; determinism
/// is per-configuration.)
#[test]
fn refinement_is_deterministic_at_every_shard_count() {
    let mut b = Workload::builder();
    let ts: Vec<TopicId> = (0..24)
        .map(|i| b.add_topic(Rate::new(3 + (i * 7) % 29)).unwrap())
        .collect();
    for v in 0..60u32 {
        let first = (v as usize * 5) % ts.len();
        let picks: Vec<TopicId> = (0..(1 + v % 4) as usize)
            .map(|k| ts[(first + k * 3) % ts.len()])
            .collect();
        b.add_subscriber(picks).unwrap();
    }
    let inst = McssInstance::new(b.build(), Rate::new(25), Bandwidth::new(120)).unwrap();
    let cost = nocost();

    for shards in [1usize, 2, 4] {
        let params = SolverParams::default().with_refinement(SearchBudget::UNBOUNDED);
        let params = if shards > 1 {
            SolverParams {
                sharding: Some(mcss_core::ShardingConfig::new(shards)),
                ..params
            }
        } else {
            params
        };
        let plain = Solver::new(SolverParams {
            refine: None,
            ..params
        })
        .solve(&inst, &cost)
        .unwrap();
        let a = Solver::new(params).solve(&inst, &cost).unwrap();
        let b2 = Solver::new(params).solve(&inst, &cost).unwrap();
        assert_eq!(
            a.allocation, b2.allocation,
            "refined solve not reproducible at {shards} shards"
        );
        assert!(
            a.report.total_cost <= plain.report.total_cost,
            "refinement regressed cost at {shards} shards"
        );
        a.allocation.validate(inst.workload(), inst.tau()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mixed-fleet lower bound is a true floor: the refined
    /// heterogeneous packing never beats `lb.cost_on_fleet`, and the
    /// reported gap is therefore ≥ 1.
    #[test]
    fn mixed_lower_bound_is_a_floor(
        w in arb_workload(),
        tau in 1u64..=80,
        fleet in arb_fleet(),
    ) {
        let inst = McssInstance::new(w, Rate::new(tau), fleet.max_capacity()).unwrap();
        let outcome = Solver::new(SolverParams::default().with_refinement(SearchBudget::UNBOUNDED))
            .solve_mixed(&inst, &fleet)
            .unwrap();
        outcome
            .allocation
            .validate(inst.workload(), inst.tau())
            .map_err(|e| TestCaseError::fail(format!("refined mixed allocation invalid: {e}")))?;
        prop_assert!(
            outcome.report.lower_bound_cost <= outcome.report.total_cost,
            "mixed lower bound {} above achieved cost {}",
            outcome.report.lower_bound_cost,
            outcome.report.total_cost
        );
        prop_assert!(outcome.report.optimality_gap() >= 1.0);
        let report = outcome.refinement.expect("refinement was requested");
        prop_assert!(report.final_cost <= report.initial_cost);
    }
}
