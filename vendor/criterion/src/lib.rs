//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements the `criterion_group!`/`criterion_main!` entry points,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`] and [`Bencher::iter`] with a simple
//! warmup-then-sample wall-clock measurement, reporting min/median/max
//! nanoseconds per iteration. No statistical analysis, plots, or HTML
//! reports — enough for `cargo bench` to produce honest relative numbers
//! and for `cargo bench --no-run` to keep the perf surface compiling.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the default number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Test mode (the `--test` harness flag, like upstream criterion):
    /// every benchmark routine runs exactly once, unmeasured — a smoke
    /// check that the bench executes, cheap enough for CI.
    pub fn with_test_mode(mut self) -> Self {
        self.test_mode = true;
        self
    }

    /// Restricts runs to benchmark ids containing `filter` (the positional
    /// argument `cargo bench -- <filter>` forwards).
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.full_name(None), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// Identifies one benchmark: an optional function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter, e.g. `GSP/100`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id distinguished by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured-iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into().full_name(Some(&self.name));
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&name, sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().full_name(Some(&self.name));
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&name, sample_size, f);
        self
    }

    /// Ends the group (present for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine` over one warmup call plus `sample_size` timed
    /// iterations, keeping each return value alive through `black_box`.
    /// In test mode (`--test`) the routine runs exactly once, unmeasured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        if self.test_mode {
            return;
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.test_mode {
            println!("{name:<60} ok (--test)");
            return;
        }
        if self.samples.is_empty() {
            println!("{name:<60} no samples recorded");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let max = *self.samples.last().expect("non-empty");
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Builds the `Criterion` configuration for a `criterion_main!` run,
/// honoring the filter argument `cargo bench -- <filter>` forwards.
#[doc(hidden)]
pub fn criterion_from_args() -> Criterion {
    let mut c = Criterion::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Harness flags cargo/criterion conventionally pass; ignored.
            "--bench" | "--verbose" | "-v" | "--quiet" | "--noplot" => {}
            // Upstream semantics: run each benchmark once, unmeasured.
            "--test" => c = c.with_test_mode(),
            "--sample-size" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    c = c.sample_size(n);
                }
            }
            other if other.starts_with("--") => {
                // Swallow `--flag value` pairs we don't implement.
                if !other.contains('=') {
                    let _ = args.next();
                }
            }
            filter => c = c.with_filter(filter),
        }
    }
    c
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench-harness `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::criterion_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(
            BenchmarkId::new("GSP", 10).full_name(Some("stage1")),
            "stage1/GSP/10"
        );
        assert_eq!(BenchmarkId::from_parameter("x").full_name(Some("g")), "g/x");
        assert_eq!(BenchmarkId::from(String::from("f")).full_name(None), "f");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(4);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // one warmup + four measured iterations
        assert_eq!(runs, 5);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().sample_size(2).with_filter("match-me");
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
