//! The MCSS problem instance.

use crate::McssError;
use pubsub_model::{Bandwidth, Rate, SubscriberId, Workload};
use std::sync::Arc;

/// An instance of `MCSS(T, V, ev, Int, τ, BC, C1, C2)` minus the cost
/// functions, which are passed separately as a
/// [`CostModel`](cloud_cost::CostModel) so one instance can be priced under
/// several models.
///
/// The workload is held in an [`Arc`] so solver variants, benches, and the
/// simulator can share it without copying multi-million-pair tables.
///
/// ```
/// use mcss_core::McssInstance;
/// use pubsub_model::{Bandwidth, Rate, Workload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Workload::builder();
/// let t = b.add_topic(Rate::new(10))?;
/// let v = b.add_subscriber([t])?;
/// let inst = McssInstance::new(b.build(), Rate::new(5), Bandwidth::new(100))?;
/// assert_eq!(inst.tau_v(v), Rate::new(5));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct McssInstance {
    workload: Arc<Workload>,
    tau: Rate,
    capacity: Bandwidth,
}

impl McssInstance {
    /// Creates an instance from a workload, the global satisfaction
    /// threshold `τ`, and the per-VM bandwidth capacity `BC`.
    ///
    /// # Errors
    ///
    /// Returns [`McssError::ZeroCapacity`] if `capacity` is zero.
    pub fn new(
        workload: impl Into<Arc<Workload>>,
        tau: Rate,
        capacity: Bandwidth,
    ) -> Result<Self, McssError> {
        if capacity.is_zero() {
            return Err(McssError::ZeroCapacity);
        }
        Ok(McssInstance {
            workload: workload.into(),
            tau,
            capacity,
        })
    }

    /// The underlying workload.
    #[inline]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// A shared handle to the workload.
    pub fn workload_arc(&self) -> Arc<Workload> {
        Arc::clone(&self.workload)
    }

    /// The global satisfaction threshold `τ`.
    #[inline]
    pub fn tau(&self) -> Rate {
        self.tau
    }

    /// The per-VM bandwidth capacity `BC`.
    #[inline]
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// The subscriber-specific threshold `τ_v = min(τ, Σ_{t∈T_v} ev_t)`.
    #[inline]
    pub fn tau_v(&self, v: SubscriberId) -> Rate {
        self.workload.tau_v(v, self.tau)
    }

    /// Returns a copy of this instance with a different threshold —
    /// convenient for τ sweeps over a shared workload.
    pub fn with_tau(&self, tau: Rate) -> Self {
        McssInstance {
            workload: Arc::clone(&self.workload),
            tau,
            capacity: self.capacity,
        }
    }

    /// Returns a copy with a different capacity — convenient for instance
    /// type sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`McssError::ZeroCapacity`] if `capacity` is zero.
    pub fn with_capacity(&self, capacity: Bandwidth) -> Result<Self, McssError> {
        if capacity.is_zero() {
            return Err(McssError::ZeroCapacity);
        }
        Ok(McssInstance {
            workload: Arc::clone(&self.workload),
            tau: self.tau,
            capacity,
        })
    }

    /// Checks that every topic *could* be placed on a VM (`2·ev_t ≤ BC`).
    ///
    /// This is stricter than necessary — a topic violating it only matters
    /// if Stage 1 selects one of its pairs — but it is the useful
    /// preflight check for generated workloads.
    ///
    /// # Errors
    ///
    /// Returns [`McssError::InfeasibleTopic`] for the first oversized topic.
    pub fn check_all_topics_fit(&self) -> Result<(), McssError> {
        for t in self.workload.topics() {
            let required = self.workload.rate(t).pair_cost();
            if required > self.capacity {
                return Err(McssError::InfeasibleTopic {
                    topic: t,
                    required,
                    capacity: self.capacity,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_model::TopicId;

    fn instance(tau: u64, capacity: u64) -> McssInstance {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(20)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t1]).unwrap();
        McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(capacity)).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(1)).unwrap();
        let err = McssInstance::new(b.build(), Rate::new(1), Bandwidth::ZERO).unwrap_err();
        assert_eq!(err, McssError::ZeroCapacity);
    }

    #[test]
    fn tau_v_is_capped() {
        let inst = instance(100, 1000);
        assert_eq!(inst.tau_v(SubscriberId::new(0)), Rate::new(30));
        assert_eq!(inst.tau_v(SubscriberId::new(1)), Rate::new(10));
        let low = inst.with_tau(Rate::new(5));
        assert_eq!(low.tau_v(SubscriberId::new(0)), Rate::new(5));
    }

    #[test]
    fn with_capacity_validates() {
        let inst = instance(10, 100);
        assert!(inst.with_capacity(Bandwidth::new(50)).is_ok());
        assert_eq!(
            inst.with_capacity(Bandwidth::ZERO).unwrap_err(),
            McssError::ZeroCapacity
        );
    }

    #[test]
    fn feasibility_preflight() {
        let ok = instance(10, 40); // biggest topic needs 2×20 = 40
        assert!(ok.check_all_topics_fit().is_ok());
        let bad = instance(10, 39);
        assert_eq!(
            bad.check_all_topics_fit().unwrap_err(),
            McssError::InfeasibleTopic {
                topic: TopicId::new(0),
                required: Bandwidth::new(40),
                capacity: Bandwidth::new(39),
            }
        );
    }

    #[test]
    fn workload_is_shared_not_copied() {
        let inst = instance(10, 100);
        let copy = inst.with_tau(Rate::new(3));
        assert!(Arc::ptr_eq(&inst.workload_arc(), &copy.workload_arc()));
    }
}
