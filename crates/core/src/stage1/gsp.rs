//! GreedySelectPairs — Alg. 1 and Alg. 2 of the paper.

use super::PairSelector;
use crate::{McssError, Selection, SelectionBuilder};
use pubsub_model::{Rate, SubscriberId, TopicId, WorkloadView};

/// The paper's Stage-1 greedy (Alg. 2), selecting pairs per subscriber by
/// maximum benefit-cost ratio (Alg. 1):
///
/// * cost of `(t, v)` is `2·ev_t` (incoming + outgoing);
/// * benefit is `min(1, ev_t / rem_v)` where `rem_v` is the rate still
///   missing towards `τ_v`.
///
/// Topics that fit within `rem_v` therefore all share the ratio
/// `1/(2·rem_v)` and beat any threshold-exceeding topic, whose ratio
/// `1/(2·ev_t)` penalizes overshoot proportionally to its cost. Ties are
/// broken towards the **largest** event rate (fills `rem_v` fastest; the
/// paper leaves ties unspecified — see DESIGN.md), then the lowest topic
/// id.
///
/// That closed form lets each subscriber be served with one descending
/// sweep over its interests instead of re-scoring every topic per
/// iteration (the `O(|T_v|²)` literal reading of Alg. 2): select every
/// topic that fits the remaining need in descending rate order; if need
/// remains, add the smallest-rate leftover topic (all leftovers exceed the
/// need, and the smallest has the best ratio). The sweep provably picks
/// the same set as the literal greedy under our tie-break.
///
/// The sweep is **sort-free**: it walks the workload's rate-ranked
/// interest arena ([`WorkloadView::ranked_interests`]), which stores every
/// row pre-sorted in exactly the (descending rate, ascending id) order the
/// greedy needs, and tracks the cheapest skipped exceeder inline — no
/// per-subscriber `sort_unstable`, no scratch buffers, no chosen bitmap.
///
/// Subscribers are independent, so selection parallelizes losslessly:
/// [`GreedySelectPairs::with_threads`] splits them over scoped threads and
/// produces bit-identical output to the sequential run.
#[derive(Clone, Copy, Debug)]
pub struct GreedySelectPairs {
    threads: usize,
}

impl GreedySelectPairs {
    /// Sequential greedy selection.
    pub fn new() -> Self {
        GreedySelectPairs { threads: 1 }
    }

    /// Greedy selection over `threads` worker threads (1 = sequential).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        GreedySelectPairs { threads }
    }
}

impl Default for GreedySelectPairs {
    fn default() -> Self {
        GreedySelectPairs::new()
    }
}

impl PairSelector for GreedySelectPairs {
    fn name(&self) -> &'static str {
        "GSP"
    }

    fn select_view(&self, view: WorkloadView<'_>, tau: Rate) -> Result<Selection, McssError> {
        let n = view.num_subscribers();

        if self.threads <= 1 || n < 2 * self.threads {
            let mut builder = SelectionBuilder::with_capacity(n, n);
            for vi in 0..n {
                let v = SubscriberId::new(vi as u32);
                builder.push_row_with(|row| select_for_subscriber_into(view, v, tau, row));
            }
            return Ok(builder.build());
        }

        // Each worker builds a CSR chunk for a contiguous subscriber
        // range; the chunks are stitched back in order afterwards.
        let chunk = n.div_ceil(self.threads);
        let chunks = n.div_ceil(chunk);
        let mut parts: Vec<Option<SelectionBuilder>> = Vec::new();
        parts.resize_with(chunks, || None);
        std::thread::scope(|scope| {
            for (ci, slot) in parts.iter_mut().enumerate() {
                let start = ci * chunk;
                let end = (start + chunk).min(n);
                scope.spawn(move || {
                    let mut builder = SelectionBuilder::with_capacity(end - start, end - start);
                    for vi in start..end {
                        let v = SubscriberId::new(vi as u32);
                        builder.push_row_with(|row| select_for_subscriber_into(view, v, tau, row));
                    }
                    *slot = Some(builder);
                });
            }
        });
        let mut builder = SelectionBuilder::with_capacity(n, n);
        for part in parts {
            builder.append(part.expect("every chunk slot is filled"));
        }
        Ok(builder.build())
    }
}

/// One subscriber's greedy selection (Alg. 1 + Alg. 2 inner loop, via the
/// descending sweep described on [`GreedySelectPairs`]), appended to
/// `out`. `v` is in the view's local numbering.
///
/// Pure linear sweep over the rate-ranked interest arena: topics that fit
/// the remaining need are taken in place; skipped topics only ever get
/// cheaper along the row, so the cheapest skipped exceeder — the fallback
/// pick when the sweep ends short — is tracked in one register (first
/// strict improvement wins, which preserves the lowest-id tie-break
/// because equal-rate topics arrive in ascending id order).
pub(crate) fn select_for_subscriber_into(
    view: WorkloadView<'_>,
    v: SubscriberId,
    tau: Rate,
    out: &mut Vec<TopicId>,
) {
    let ranked = view.ranked_interests(v);
    if ranked.is_empty() {
        return;
    }
    let tau_v = view.tau_v(v, tau);
    let total = view.subscriber_total_rate(v);
    if total <= tau_v {
        // τ_v = min(τ, total): everything is needed.
        out.extend_from_slice(view.interests(v));
        return;
    }

    let mut rem = tau_v;
    let mut cheapest_skipped: Option<(Rate, TopicId)> = None;
    for &t in ranked {
        if rem.is_zero() {
            break;
        }
        let ev = view.rate(t);
        if ev <= rem {
            out.push(t);
            rem = rem.saturating_sub(ev);
        } else if cheapest_skipped.is_none_or(|(best, _)| ev < best) {
            cheapest_skipped = Some((ev, t));
        }
    }
    if !rem.is_zero() {
        // Every skipped topic exceeds the remaining need; the best ratio
        // 1/(2·ev_t) belongs to the smallest rate, ties to the lowest id.
        let (_, exceeder) =
            cheapest_skipped.expect("total > tau_v guarantees a skipped topic remains");
        out.push(exceeder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McssInstance;
    use pubsub_model::{Bandwidth, Workload};

    fn build(rates: &[u64], interests: &[&[u32]]) -> Workload {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        b.build()
    }

    fn select(w: &Workload, tau: u64) -> Selection {
        let inst =
            McssInstance::new(w.clone(), Rate::new(tau), Bandwidth::new(u64::MAX / 4)).unwrap();
        GreedySelectPairs::new().select(&inst).unwrap()
    }

    #[test]
    fn selects_everything_when_tau_exceeds_total() {
        let w = build(&[5, 3], &[&[0, 1]]);
        let s = select(&w, 100);
        assert_eq!(s.selected(SubscriberId::new(0)).len(), 2);
    }

    #[test]
    fn prefers_non_exceeding_topics() {
        // τ = 10; rates 9 and 50. Selecting 9 then 50 would cost 118;
        // greedy picks 9 (non-exceeder) first, then must take 50.
        // Actually: after 9, rem=1, only 50 remains (exceeder) -> both.
        // Compare with rates 9 and 10: 10 fits exactly -> only 10.
        let w = build(&[9, 10], &[&[0, 1]]);
        let s = select(&w, 10);
        assert_eq!(s.selected(SubscriberId::new(0)), &[TopicId::new(1)]);
    }

    #[test]
    fn overshoot_picks_cheapest_exceeder() {
        // τ = 10, rates {40, 15}: both exceed; ratio 1/(2·15) > 1/(2·40).
        let w = build(&[40, 15], &[&[0, 1]]);
        let s = select(&w, 10);
        assert_eq!(s.selected(SubscriberId::new(0)), &[TopicId::new(1)]);
    }

    #[test]
    fn descending_fill_then_smallest_exceeder() {
        // τ = 9, rates {10, 7, 7, 3}: select 7, rem 2; skip 7, skip 3? No:
        // 7 ≤ 9 select (rem 2); second 7 > 2 skip; 3 > 2 skip; rem 2 > 0:
        // smallest unchosen is 3.
        let w = build(&[10, 7, 7, 3], &[&[0, 1, 2, 3]]);
        let s = select(&w, 9);
        let sel = s.selected(SubscriberId::new(0));
        let rates: Vec<u64> = sel.iter().map(|&t| w.rate(t).get()).collect();
        assert_eq!(rates, vec![7, 3]);
    }

    #[test]
    fn matches_literal_greedy_on_exhaustive_small_cases() {
        // Cross-check the sweep against a direct implementation of
        // Alg. 1/2 (re-scoring every topic each iteration) on all rate
        // combinations from a small alphabet.
        let alphabet = [1u64, 2, 3, 5, 8, 13];
        for a in alphabet {
            for b in alphabet {
                for c in alphabet {
                    for tau in [1u64, 3, 6, 10, 20, 30] {
                        let w = build(&[a, b, c], &[&[0, 1, 2]]);
                        let fast = select(&w, tau);
                        let slow = literal_greedy(&w, SubscriberId::new(0), Rate::new(tau));
                        let fast_set: std::collections::BTreeSet<_> = fast
                            .selected(SubscriberId::new(0))
                            .iter()
                            .copied()
                            .collect();
                        let slow_set: std::collections::BTreeSet<_> = slow.into_iter().collect();
                        assert_eq!(fast_set, slow_set, "rates ({a},{b},{c}) tau {tau}");
                    }
                }
            }
        }
    }

    /// Direct transcription of Alg. 1 + Alg. 2 with the same tie-breaks
    /// (max ratio, then max rate, then min id). The benefit-cost ratio
    /// `min(1, ev/rem) / (2·ev)` simplifies exactly to
    /// `1/(2·max(ev, rem))`, so candidates are compared in integers —
    /// no floating-point tie ambiguity.
    fn literal_greedy(w: &Workload, v: SubscriberId, tau: Rate) -> Vec<TopicId> {
        use std::cmp::Reverse;
        let tau_v = w.tau_v(v, tau);
        let mut selected: Vec<TopicId> = Vec::new();
        let mut delivered = Rate::ZERO;
        while delivered < tau_v {
            let rem = tau_v.saturating_sub(delivered);
            // Max ratio == min max(ev, rem); then max rate; then min id.
            let t = w
                .interests(v)
                .iter()
                .copied()
                .filter(|t| !selected.contains(t))
                .min_by_key(|&t| {
                    let ev = w.rate(t).get();
                    (ev.max(rem.get()), Reverse(ev), t.raw())
                })
                .expect("tau_v <= total ensures progress");
            selected.push(t);
            delivered += w.rate(t);
        }
        selected
    }

    #[test]
    fn parallel_matches_sequential() {
        // A workload with enough subscribers to exercise chunking.
        let rates: Vec<u64> = (1..=40).collect();
        let mut b = Workload::builder();
        for &r in &rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for vi in 0..100u32 {
            let tv: Vec<TopicId> = (0..40)
                .filter(|t| (t + vi) % 3 != 0)
                .map(TopicId::new)
                .collect();
            b.add_subscriber(tv).unwrap();
        }
        let w = b.build();
        let inst = McssInstance::new(w, Rate::new(50), Bandwidth::new(1 << 40)).unwrap();
        let seq = GreedySelectPairs::new().select(&inst).unwrap();
        let par = GreedySelectPairs::with_threads(4).select(&inst).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_interests_select_nothing() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let inst = McssInstance::new(b.build(), Rate::new(5), Bandwidth::new(100)).unwrap();
        let s = GreedySelectPairs::new().select(&inst).unwrap();
        assert_eq!(s.pair_count(), 0);
        assert!(s.satisfies(inst.workload(), inst.tau())); // τ_v = 0
    }

    #[test]
    fn satisfies_across_tau_range() {
        let w = build(
            &[100, 50, 25, 12, 6, 3],
            &[&[0, 1, 2], &[2, 3, 4, 5], &[0, 5]],
        );
        for tau in [1u64, 10, 50, 150, 1000] {
            let s = select(&w, tau);
            assert!(s.satisfies(&w, Rate::new(tau)), "tau {tau}");
        }
    }
}
