//! Property-based tests over the full solver stack.

use cloud_cost::{CostModel, Ec2CostModel, FleetCostModel, InstanceType, LinearCostModel, Money};
use mcss_core::dynamic::DriftModel;
use mcss_core::exact::ExactSolver;
use mcss_core::incremental::{IncrementalConfig, IncrementalReallocator};
use mcss_core::reduction::{partition_to_dcss, subset_sum_partitionable};
use mcss_core::stage1::{
    GreedySelectPairs, OptimalSelectPairs, PairSelector, RandomSelectPairs, SharedAwareGreedy,
};
use mcss_core::stage2::{
    Allocator, BestFitBinPacking, CbpConfig, CustomBinPacking, FirstFitBinPacking,
    MixedFleetPacker, NextFitBinPacking,
};
use mcss_core::{
    lower_bound, McssInstance, PartitionerKind, ShardedSolver, ShardingConfig, Solver, SolverParams,
};
use proptest::collection::vec;
use proptest::prelude::*;
use pubsub_model::{Bandwidth, Rate, TopicId, Workload};

/// Random workload: 1..=8 topics with rates 1..=30, 1..=8 subscribers
/// with non-empty interests.
fn arb_workload() -> impl Strategy<Value = Workload> {
    vec(1u64..=30, 1..=8).prop_flat_map(|rates| {
        let nt = rates.len() as u32;
        vec(vec(0..nt, 1..=6), 1..=8).prop_map(move |interests| {
            let mut b = Workload::builder();
            for &r in &rates {
                b.add_topic(Rate::new(r)).unwrap();
            }
            for tv in &interests {
                b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                    .unwrap();
            }
            b.build()
        })
    })
}

/// Capacity large enough for the biggest topic (2·30), with headroom
/// variety.
fn arb_instance() -> impl Strategy<Value = McssInstance> {
    (arb_workload(), 1u64..=80, 60u64..=400).prop_map(|(w, tau, cap)| {
        McssInstance::new(w, Rate::new(tau), Bandwidth::new(cap)).unwrap()
    })
}

fn nocost() -> LinearCostModel {
    LinearCostModel::new(Money::from_dollars(1), Money::from_micros(5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every Stage-1 selector satisfies every subscriber.
    #[test]
    fn stage1_always_satisfies(inst in arb_instance(), seed in 0u64..100) {
        let selectors: Vec<Box<dyn PairSelector>> = vec![
            Box::new(GreedySelectPairs::new()),
            Box::new(GreedySelectPairs::with_threads(3)),
            Box::new(RandomSelectPairs::new(seed)),
            Box::new(SharedAwareGreedy::new()),
        ];
        for s in selectors {
            let sel = s.select(&inst).unwrap();
            prop_assert!(
                sel.satisfies(inst.workload(), inst.tau()),
                "{} left a subscriber short", s.name()
            );
        }
    }

    /// The DP optimum never pays more Stage-1 cost than the greedy, and
    /// both satisfy.
    #[test]
    fn optimal_stage1_lower_or_equal_greedy(inst in arb_instance()) {
        let opt = OptimalSelectPairs::new().select(&inst).unwrap();
        let gsp = GreedySelectPairs::new().select(&inst).unwrap();
        let w = inst.workload();
        prop_assert!(opt.satisfies(w, inst.tau()));
        prop_assert!(opt.stage1_cost(w) <= gsp.stage1_cost(w));
    }

    /// Stage 2 invariants for every allocator preset: capacity respected,
    /// no pair lost or duplicated, bandwidth accounting exact.
    #[test]
    fn stage2_invariants(inst in arb_instance(), seed in 0u64..50) {
        let w = inst.workload();
        let sel = RandomSelectPairs::new(seed).select(&inst).unwrap();
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(FirstFitBinPacking::new()),
            Box::new(BestFitBinPacking::new()),
            Box::new(NextFitBinPacking::new()),
            Box::new(CustomBinPacking::new(CbpConfig::grouping_only())),
            Box::new(CustomBinPacking::new(CbpConfig::expensive_first())),
            Box::new(CustomBinPacking::new(CbpConfig::most_free())),
            Box::new(CustomBinPacking::new(CbpConfig::full())),
        ];
        for a in allocators {
            let alloc = a.allocate(w, &sel, inst.capacity(), &nocost()).unwrap();
            prop_assert_eq!(alloc.pair_count(), sel.pair_count(), "{} lost pairs", a.name());
            alloc.validate(w, inst.tau()).map_err(|e| {
                TestCaseError::fail(format!("{} invalid: {e}", a.name()))
            })?;
        }
    }

    /// The Alg. 5 lower bound holds for every pipeline combination.
    #[test]
    fn lower_bound_holds(inst in arb_instance(), seed in 0u64..50) {
        let w = inst.workload();
        let lb = lower_bound(w, inst.tau(), inst.capacity());
        let cost = nocost();
        let selections = [
            GreedySelectPairs::new().select(&inst).unwrap(),
            RandomSelectPairs::new(seed).select(&inst).unwrap(),
        ];
        for sel in &selections {
            for alloc in [
                &CustomBinPacking::new(CbpConfig::full()) as &dyn Allocator,
                &FirstFitBinPacking::new() as &dyn Allocator,
            ] {
                let a = alloc.allocate(w, sel, inst.capacity(), &cost).unwrap();
                prop_assert!(a.total_bandwidth() >= lb.volume);
                prop_assert!(a.vm_count() as u64 >= lb.vms);
                prop_assert!(a.cost(&cost) >= lb.cost(&cost));
            }
        }
    }

    /// The `TopicGroups` CSR inversion agrees exactly with a reference
    /// `HashMap<TopicId, Vec<SubscriberId>>` grouping on random
    /// selections: same topics (ascending), same subscribers per topic in
    /// selection order.
    #[test]
    fn topic_groups_match_hashmap_grouping(inst in arb_instance(), seed in 0u64..100) {
        use std::collections::HashMap;
        let w = inst.workload();
        let sel = RandomSelectPairs::new(seed).select(&inst).unwrap();
        let groups = sel.topic_groups(w);

        let mut reference: HashMap<TopicId, Vec<pubsub_model::SubscriberId>> = HashMap::new();
        for p in sel.iter_pairs() {
            reference.entry(p.topic).or_default().push(p.subscriber);
        }
        prop_assert_eq!(groups.len(), reference.len());
        let mut total = 0u64;
        for (t, vs) in groups.iter() {
            let expected = reference.get(&t).expect("topic present in reference");
            prop_assert_eq!(vs, expected.as_slice(), "group of {} differs", t);
            total += vs.len() as u64;
        }
        prop_assert_eq!(total, sel.pair_count());
        // Topics come out ascending.
        for g in 1..groups.len() {
            prop_assert!(groups.topic(g - 1) < groups.topic(g));
        }
    }

    /// The rate-ranked interest arena stays sorted by (descending rate,
    /// ascending id) and consistent with `rate()` across random
    /// `DriftModel::evolve_tracked` sequences (the incremental
    /// maintenance path), and always matches a from-scratch rebuild.
    #[test]
    fn ranked_arena_consistent_across_drift(
        inst in arb_instance(),
        sigma_pct in 0u64..60,
        churn_pct in 0u64..90,
        seed in 0u64..1000,
        epochs in 1u64..6,
    ) {
        let drift = DriftModel {
            rate_sigma: sigma_pct as f64 / 100.0,
            churn_prob: churn_pct as f64 / 100.0,
            seed,
        };
        let mut w = inst.workload().clone();
        for epoch in 0..epochs {
            (w, _) = drift.evolve_tracked(&w, epoch);
            for v in w.subscribers() {
                let ranked = w.ranked_interests(v);
                for pair in ranked.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    prop_assert!(
                        w.rate(a) > w.rate(b) || (w.rate(a) == w.rate(b) && a < b),
                        "epoch {}: ranked row of {} out of order", epoch, v
                    );
                }
                let mut sorted: Vec<TopicId> = ranked.to_vec();
                sorted.sort_unstable();
                prop_assert_eq!(sorted.as_slice(), w.interests(v), "epoch {}", epoch);
            }
            let rebuilt = Workload::from_parts(
                w.rates().to_vec(),
                w.subscribers().map(|v| w.interests(v).to_vec()).collect(),
            );
            for v in w.subscribers() {
                prop_assert_eq!(
                    w.ranked_interests(v),
                    rebuilt.ranked_interests(v),
                    "epoch {}: incremental arena diverged from rebuild", epoch
                );
            }
        }
    }

    /// The incremental re-allocator maintains every MCSS invariant across
    /// an arbitrary sequence of workload snapshots (treating each fresh
    /// instance as the "next epoch" of the previous one).
    #[test]
    fn incremental_repair_stays_valid(
        instances in proptest::collection::vec(arb_instance(), 2..5)
    ) {
        // Re-use the first instance's capacity so epochs are comparable.
        let capacity = instances[0].capacity();
        let mut inc = IncrementalReallocator::default();
        for inst in &instances {
            let inst = inst.with_capacity(capacity).unwrap();
            let out = inc.step(&inst, &nocost()).unwrap();
            out.allocation.validate(inst.workload(), inst.tau()).map_err(|e| {
                TestCaseError::fail(format!("incremental epoch invalid: {e}"))
            })?;
        }
    }

    /// Dirty-subscriber re-selection is bit-identical to a full GSP
    /// re-selection across random drift sequences — for the self-scanned
    /// delta, the drift-provided delta, and the full-reselect baseline —
    /// and the repaired fleet stays valid either way.
    #[test]
    fn dirty_reselection_bit_identical_across_drift(
        inst in arb_instance(),
        sigma_pct in 0u64..50,
        churn_pct in 0u64..80,
        seed in 0u64..1000,
        epochs in 2u64..6,
    ) {
        let drift = DriftModel {
            rate_sigma: sigma_pct as f64 / 100.0,
            churn_prob: churn_pct as f64 / 100.0,
            seed,
        };
        let mut scanned = IncrementalReallocator::default();
        let mut delta_fed = IncrementalReallocator::default();
        let mut full = IncrementalReallocator::new(IncrementalConfig {
            dirty_tracking: false,
            ..IncrementalConfig::default()
        });
        let mut w = inst.workload().clone();
        let mut delta = mcss_core::dynamic::WorkloadDelta::default();
        // Headroom so drifted rates stay feasible for the capacity.
        let capacity = Bandwidth::new(inst.capacity().get().saturating_mul(8));
        for epoch in 0..epochs {
            let step = McssInstance::new(w.clone(), inst.tau(), capacity).unwrap();
            let fresh = GreedySelectPairs::new().select(&step).unwrap();
            let a = scanned.step(&step, &nocost()).unwrap();
            let b = delta_fed.step_with_delta(&step, &nocost(), &delta).unwrap();
            let c = full.step(&step, &nocost()).unwrap();
            prop_assert_eq!(&a.selection, &fresh, "scanned diverged at epoch {}", epoch);
            prop_assert_eq!(&b.selection, &fresh, "delta-fed diverged at epoch {}", epoch);
            prop_assert_eq!(&c.selection, &fresh, "full diverged at epoch {}", epoch);
            for out in [&a, &b, &c] {
                out.allocation.validate(step.workload(), step.tau()).map_err(|e| {
                    TestCaseError::fail(format!("epoch {epoch} invalid: {e}"))
                })?;
            }
            (w, delta) = drift.evolve_tracked(&w, epoch);
        }
    }

    /// Shard-parallel epoch repair is bit-identical to the sequential
    /// dirty loop across random drift sequences × shard counts (1, 2, 4,
    /// 7) × both partitioners, ending in a mass-unsubscribe epoch that
    /// dirties every subscriber at once; the repaired fleet stays valid
    /// throughout.
    #[test]
    fn parallel_repair_bit_identical_across_drift(
        inst in arb_instance(),
        sigma_pct in 0u64..50,
        churn_pct in 0u64..80,
        seed in 0u64..1000,
        epochs in 2u64..5,
        shards_idx in 0usize..4,
        hash_partitioner in 0usize..2,
    ) {
        let shards = [1usize, 2, 4, 7][shards_idx];
        let partitioner = if hash_partitioner == 1 {
            PartitionerKind::Hash { seed }
        } else {
            PartitionerKind::TopicLocality
        };
        let drift = DriftModel {
            rate_sigma: sigma_pct as f64 / 100.0,
            churn_prob: churn_pct as f64 / 100.0,
            seed,
        };
        let mut seq = IncrementalReallocator::default();
        let mut par = IncrementalReallocator::new(IncrementalConfig {
            repair: Some(ShardingConfig::new(shards).with_partitioner(partitioner)),
            ..IncrementalConfig::default()
        });
        let mut w = inst.workload().clone();
        // Headroom so drifted rates stay feasible for the capacity.
        let capacity = Bandwidth::new(inst.capacity().get().saturating_mul(8));
        for epoch in 0..=epochs {
            if epoch == epochs {
                // Mass unsubscribe: every interest list empties at once.
                w = Workload::from_parts(
                    w.rates().to_vec(),
                    vec![Vec::new(); w.num_subscribers()],
                );
            }
            let step = McssInstance::new(w.clone(), inst.tau(), capacity).unwrap();
            let s = seq.step(&step, &nocost()).unwrap();
            let p = par.step(&step, &nocost()).unwrap();
            prop_assert_eq!(
                &p.selection, &s.selection,
                "epoch {} diverged ({} shards, {:?})", epoch, shards, partitioner
            );
            prop_assert_eq!(p.pairs_reused, s.pairs_reused, "epoch {}", epoch);
            p.allocation.validate(step.workload(), step.tau()).map_err(|e| {
                TestCaseError::fail(format!("epoch {epoch} invalid: {e}"))
            })?;
            if epoch < epochs {
                w = drift.evolve(&w, epoch);
            }
        }
    }

    /// A sharded solve is feasible (no VM over capacity, no pair lost or
    /// forged) and satisfies exactly the same per-subscriber thresholds
    /// as the monolithic solve, for both partitioners and any shard
    /// count — including more shards than subscribers.
    #[test]
    fn sharded_solve_feasible_and_satisfaction_identical(
        inst in arb_instance(),
        shards in 1usize..=12,
        seed in 0u64..50,
    ) {
        let w = inst.workload();
        let mono = Solver::default().solve(&inst, &nocost()).unwrap();
        for partitioner in [PartitionerKind::Hash { seed }, PartitionerKind::TopicLocality] {
            let sharding = ShardingConfig::new(shards).with_partitioner(partitioner);
            let out = ShardedSolver::new(SolverParams::default(), sharding)
                .solve(&inst, &nocost())
                .unwrap();
            // Feasibility: the merged allocation passes the full MCSS
            // validator (capacity, duplicates, foreign pairs, τ_v).
            out.allocation.validate(w, inst.tau()).map_err(|e| {
                TestCaseError::fail(format!("{shards} shards ({partitioner:?}) invalid: {e}"))
            })?;
            // Satisfaction identical to monolithic: GSP is
            // per-subscriber independent, so the merged selection *is*
            // the monolithic selection and every subscriber receives the
            // same delivered rate.
            prop_assert_eq!(&out.selection, &mono.selection, "{:?}", partitioner);
            prop_assert_eq!(
                out.allocation.delivered_rates(w),
                mono.allocation.delivered_rates(w),
                "{:?}", partitioner
            );
            prop_assert_eq!(out.allocation.pair_count(), mono.allocation.pair_count());
        }
    }

    /// A sharded solve is deterministic for a fixed partitioner seed and
    /// thread count.
    #[test]
    fn sharded_solve_deterministic(inst in arb_instance(), seed in 0u64..50) {
        let sharding = ShardingConfig::new(4)
            .with_threads(3)
            .with_partitioner(PartitionerKind::Hash { seed });
        let solver = ShardedSolver::new(SolverParams::default(), sharding);
        let a = solver.solve(&inst, &nocost()).unwrap();
        let b = solver.solve(&inst, &nocost()).unwrap();
        prop_assert_eq!(a.selection, b.selection);
        prop_assert_eq!(a.allocation, b.allocation);
        prop_assert_eq!(a.merge, b.merge);
    }

    /// The merge's topic-group compaction never increases cost: the
    /// sharded total bandwidth stays within the shard fleets' combined
    /// bandwidth, and the lower bound still holds.
    #[test]
    fn sharded_solve_respects_lower_bound(inst in arb_instance(), shards in 2usize..=6) {
        let w = inst.workload();
        let lb = lower_bound(w, inst.tau(), inst.capacity());
        let out = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(shards))
            .solve(&inst, &nocost())
            .unwrap();
        prop_assert!(out.allocation.total_bandwidth() >= lb.volume);
        prop_assert!(out.allocation.vm_count() as u64 >= lb.vms);
    }

    /// Determinism: identical inputs give identical outputs for the whole
    /// pipeline (greedy path).
    #[test]
    fn pipeline_is_deterministic(inst in arb_instance()) {
        let run = || {
            let sel = GreedySelectPairs::new().select(&inst).unwrap();
            let alloc = CustomBinPacking::new(CbpConfig::full())
                .allocate(inst.workload(), &sel, inst.capacity(), &nocost())
                .unwrap();
            (sel, alloc)
        };
        let (s1, a1) = run();
        let (s2, a2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(a1, a2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiny instances: lower bound ≤ exact optimum ≤ heuristic.
    #[test]
    fn exact_sandwich(
        rates in vec(1u64..=12, 1..=3),
        tau in 1u64..=20,
        cap_slack in 0u64..=60,
    ) {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> =
            rates.iter().map(|&r| b.add_topic(Rate::new(r)).unwrap()).collect();
        // Two subscribers over all topics keeps pair counts ≤ 6.
        b.add_subscriber(ts.iter().copied()).unwrap();
        b.add_subscriber(ts.iter().copied().take(2)).unwrap();
        let w = b.build();
        let max_rate = rates.iter().copied().max().unwrap();
        let cap = Bandwidth::new(2 * max_rate + cap_slack);
        let inst = McssInstance::new(w, Rate::new(tau), cap).unwrap();
        let cost = nocost();

        let exact = ExactSolver::new().solve(&inst, &cost).unwrap();
        let lb = lower_bound(inst.workload(), inst.tau(), inst.capacity());
        prop_assert!(lb.cost(&cost) <= exact.cost, "LB above exact");

        let sel = GreedySelectPairs::new().select(&inst).unwrap();
        let heur = CustomBinPacking::new(CbpConfig::full())
            .allocate(inst.workload(), &sel, inst.capacity(), &cost)
            .unwrap();
        prop_assert!(exact.cost <= heur.cost(&cost), "exact above heuristic");
    }

    /// Theorem II.2: the reduced DCSS instance answers exactly the
    /// Partition question.
    #[test]
    fn reduction_equivalence(xs in vec(1u64..=9, 1..=5)) {
        let reduced = partition_to_dcss(&xs).unwrap();
        let dcss = ExactSolver::new()
            .decide_dcss(&reduced.instance, &reduced.cost, reduced.budget)
            .unwrap();
        prop_assert_eq!(dcss, subset_sum_partitionable(&xs), "multiset {:?}", xs);
    }
}

/// A random two/three-tier fleet whose smallest tier always fits the
/// largest `arb_workload` topic (rate ≤ 30 → pair cost ≤ 60).
fn arb_fleet() -> impl Strategy<Value = FleetCostModel> {
    (
        60u64..=150,         // small capacity
        1u64..=4,            // big capacity multiplier
        50_000u64..=400_000, // small hourly micro-price
        1u64..=5,            // big price multiplier
        0u64..=1,            // 1 = add a third (mid) tier
    )
        .prop_map(|(small_cap, cap_mul, small_price, price_mul, three)| {
            let three = three == 1;
            let small_price = small_price as i64;
            let mut tiers = vec![
                Ec2CostModel::paper_default(InstanceType::new("prop-small", small_price, 64))
                    .with_capacity_events(small_cap),
                Ec2CostModel::paper_default(InstanceType::new(
                    "prop-big",
                    small_price * price_mul as i64,
                    128,
                ))
                .with_capacity_events(small_cap * cap_mul),
            ];
            if three {
                tiers.push(
                    Ec2CostModel::paper_default(InstanceType::new("prop-mid", small_price * 2, 96))
                        .with_capacity_events(small_cap * 3 / 2),
                );
            }
            FleetCostModel::new(tiers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The mixed-fleet invariants of ISSUE 4: on random workloads the
    /// heterogeneous packing (a) never costs more than the best
    /// single-type fleet over the same selection, (b) keeps every VM
    /// within its *own* tier's capacity, and (c) places every selected
    /// pair (same satisfaction as any homogeneous packing).
    #[test]
    fn mixed_fleet_never_beaten_by_homogeneous_and_respects_tier_caps(
        w in arb_workload(),
        tau in 1u64..=80,
        fleet in arb_fleet(),
    ) {
        let inst = McssInstance::new(w, Rate::new(tau), fleet.max_capacity()).unwrap();
        let sel = GreedySelectPairs::new().select(&inst).unwrap();
        let mixed = MixedFleetPacker::new()
            .allocate(inst.workload(), &sel, &fleet)
            .unwrap();

        // (b) + (c): validation enforces per-tier capacities, no foreign
        // or duplicated pairs, and τ_v satisfaction; pair_count equality
        // rules out silently dropped placements.
        prop_assert!(mixed.typing().is_some(), "mixed output must be typed");
        mixed
            .validate(inst.workload(), inst.tau())
            .map_err(|e| TestCaseError::fail(format!("invalid mixed fleet: {e}")))?;
        prop_assert_eq!(mixed.pair_count(), sel.pair_count(), "pairs lost");
        for (vm, &tier) in mixed.vms().iter().zip(
            mixed.typing().unwrap().assignment(),
        ) {
            let (_, cap) = mixed.typing().unwrap().tiers()[tier as usize];
            prop_assert!(vm.used() <= cap, "VM over its own tier capacity");
        }

        // (a): cheaper-or-equal versus every feasible homogeneous tier,
        // each priced under its own Ec2 model.
        let mixed_cost = mixed.cost_on_fleet(&fleet);
        for t in 0..fleet.tier_count() {
            let cap = fleet.capacity(t);
            if inst.workload().rates().iter().any(|r| r.pair_cost() > cap) {
                continue; // this tier alone cannot host the workload
            }
            let homog = CustomBinPacking::new(CbpConfig::full())
                .allocate(inst.workload(), &sel, cap, fleet.tier(t))
                .unwrap();
            let homog_cost =
                fleet.tier(t).total_cost(homog.vm_count(), homog.total_bandwidth());
            prop_assert!(
                mixed_cost <= homog_cost,
                "mixed {} dearer than tier {} at {}",
                mixed_cost, t, homog_cost
            );
        }
    }

    /// Mixed repair over drift epochs: selections stay bit-identical to
    /// the homogeneous churn path and tier capacities hold every epoch.
    #[test]
    fn mixed_fleet_repair_stays_valid_under_drift(
        w in arb_workload(),
        tau in 1u64..=60,
        seed in 0u64..100,
    ) {
        let fleet = FleetCostModel::new(vec![
            Ec2CostModel::paper_default(InstanceType::new("drift-small", 150_000, 64))
                .with_capacity_events(80),
            Ec2CostModel::paper_default(InstanceType::new("drift-big", 290_000, 128))
                .with_capacity_events(160),
        ]);
        let drift = DriftModel { rate_sigma: 0.0, churn_prob: 0.5, seed };
        let mut mixed = IncrementalReallocator::default().with_fleet(fleet.clone());
        let mut homog = IncrementalReallocator::default();
        let mut w = w;
        for epoch in 0..4 {
            let mixed_inst =
                McssInstance::new(w.clone(), Rate::new(tau), fleet.max_capacity()).unwrap();
            let homog_inst =
                McssInstance::new(w.clone(), Rate::new(tau), fleet.capacity(0)).unwrap();
            let m = mixed.step(&mixed_inst, &nocost()).unwrap();
            let h = homog.step(&homog_inst, &nocost()).unwrap();
            prop_assert_eq!(&m.selection, &h.selection, "selections diverged");
            m.allocation
                .validate(mixed_inst.workload(), mixed_inst.tau())
                .map_err(|e| TestCaseError::fail(format!("epoch {epoch}: {e}")))?;
            w = drift.evolve(&w, epoch);
        }
    }
}
