//! Synthetic Spotify-like trace generator.
//!
//! Reproduces the published shape of the paper's Spotify trace (§IV-B): a
//! music-activity pub/sub feed with ~1.1 M topics for 4.9 M subscribers
//! (ratio ≈ 0.22) and ~12 M topic-subscriber pairs (≈ 2.45 interests per
//! subscriber — far sparser than Twitter's ≈ 22.8). Topic popularity is
//! Zipf (a few artists/friends dominate follows); playback event rates are
//! log-normal (most sources generate modest activity, a few are very
//! loud). Messages average 111 bytes but the paper prices them at 200 bytes
//! for comparability — the cost model handles that, not the generator.

use crate::dist::{AliasTable, LogNormal, Zipf};
use pubsub_model::{Rate, TopicId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Spotify-like generator.
///
/// ```
/// use pubsub_traces::SpotifyLike;
///
/// let w = SpotifyLike::new(5_000, 42).generate();
/// let stats = w.stats();
/// // Interests per subscriber sit near the paper's 12M/4.9M ≈ 2.45.
/// assert!(stats.mean_interests > 1.0 && stats.mean_interests < 6.0);
/// ```
#[derive(Clone, Debug)]
pub struct SpotifyLike {
    /// Number of subscribers `|V|`.
    pub subscribers: usize,
    /// RNG seed; identical seeds produce identical workloads.
    pub seed: u64,
    /// Topics per subscriber (the paper's 1.1 M / 4.9 M ≈ 0.22).
    pub topic_ratio: f64,
    /// Zipf exponent of topic popularity.
    pub popularity_exponent: f64,
    /// Zipf exponent of the interests-per-subscriber distribution
    /// (calibrated so the mean lands near 2.45).
    pub interest_exponent: f64,
    /// Cap on interests per subscriber.
    pub max_interests: usize,
    /// Log-mean of the playback event rate per topic (events/window).
    pub rate_log_mean: f64,
    /// Log-std of the playback event rate.
    pub rate_log_sigma: f64,
}

impl SpotifyLike {
    /// A generator for `subscribers` subscribers with paper-shaped
    /// defaults.
    pub fn new(subscribers: usize, seed: u64) -> Self {
        SpotifyLike {
            subscribers,
            seed,
            topic_ratio: 0.22,
            popularity_exponent: 1.0,
            interest_exponent: 2.3,
            max_interests: 200,
            // exp(6.3 + 0.8²/2) ≈ 750 events per 10-day window on
            // average. Calibrated against the evaluation's shape: with
            // ≈ 2.45 interests/subscriber this puts the deliverable
            // volume per subscriber near 1.8k events — close enough to
            // τ=1000 that the optimization headroom shrinks there (the
            // ~11% savings of Fig. 2) while τ=10/100 stay mostly
            // pair-granular (the ~30% savings regime); the spread leaves
            // a few-percent tail of sub-100-event topics so τ=10 and
            // τ=100 differ.
            rate_log_mean: 6.3,
            rate_log_sigma: 0.8,
        }
    }

    /// Number of topics this configuration will create.
    pub fn num_topics(&self) -> usize {
        ((self.subscribers as f64 * self.topic_ratio) as usize).max(1)
    }

    /// Generates the workload.
    ///
    /// Topics that end up with zero followers are still created (they get
    /// filtered by Stage 1 anyway, and keeping them preserves the paper's
    /// topic count); subscribers always have at least one interest.
    ///
    /// # Panics
    ///
    /// Panics if `subscribers` is zero or `topic_ratio` is not positive.
    pub fn generate(&self) -> Workload {
        assert!(self.subscribers > 0, "need at least one subscriber");
        assert!(self.topic_ratio > 0.0, "topic ratio must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_topics = self.num_topics();

        // Topic popularity: which artists/friends get followed.
        let mut ranks: Vec<u32> = (0..num_topics as u32).collect();
        shuffle(&mut ranks, &mut rng);
        let weights: Vec<f64> = ranks
            .iter()
            .map(|&r| (f64::from(r) + 1.0).powf(-self.popularity_exponent))
            .collect();
        let topic_pick = AliasTable::new(&weights);

        // Playback rates.
        let rate_dist = LogNormal::new(self.rate_log_mean, self.rate_log_sigma);
        let mut builder = Workload::builder();
        for _ in 0..num_topics {
            let rate = rate_dist.sample(&mut rng).round().max(1.0) as u64;
            builder
                .add_topic(Rate::new(rate))
                .expect("rate positive and bounded");
        }

        // Interests: small Zipf-distributed sets.
        let interest_dist = Zipf::new(
            self.max_interests.min(num_topics).max(1),
            self.interest_exponent,
        );
        for _ in 0..self.subscribers {
            let k = interest_dist.sample(&mut rng);
            let mut chosen: Vec<TopicId> = Vec::with_capacity(k);
            let mut attempts = 0usize;
            let max_attempts = k * 20 + 16;
            while chosen.len() < k && attempts < max_attempts {
                attempts += 1;
                let t = TopicId::new(topic_pick.sample(&mut rng) as u32);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            builder.add_subscriber(chosen).expect("topics exist");
        }
        builder.build()
    }
}

/// Fisher-Yates shuffle.
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        SpotifyLike::new(10_000, 77).generate()
    }

    #[test]
    fn shape_matches_paper_ratios() {
        let w = workload();
        let s = w.stats();
        let ratio = s.num_topics as f64 / s.num_subscribers as f64;
        assert!((0.15..0.3).contains(&ratio), "topic ratio {ratio}");
        assert!(
            (1.2..4.5).contains(&s.mean_interests),
            "mean interests {}",
            s.mean_interests
        );
    }

    #[test]
    fn rates_are_positive_lognormal_ish() {
        let w = workload();
        let s = w.stats();
        assert!(
            s.mean_rate > 300.0 && s.mean_rate < 1500.0,
            "mean rate {}",
            s.mean_rate
        );
        assert!(s.max_rate as f64 > 3.0 * s.mean_rate, "tail too light");
        for t in w.topics() {
            assert!(!w.rate(t).is_zero());
        }
    }

    #[test]
    fn every_subscriber_has_interests() {
        let w = workload();
        for v in w.subscribers() {
            assert!(!w.interests(v).is_empty());
        }
    }

    #[test]
    fn popular_topics_attract_more_followers() {
        let w = workload();
        let mut counts: Vec<usize> = w.topics().map(|t| w.subscribers_of(t).len()).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf head: the most-followed topic clearly dominates the median.
        let median = counts[counts.len() / 2];
        assert!(
            counts[0] > 10 * median.max(1),
            "head {} median {median}",
            counts[0]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SpotifyLike::new(2_000, 5).generate();
        let b = SpotifyLike::new(2_000, 5).generate();
        assert_eq!(a.rates(), b.rates());
        assert_eq!(a.pair_count(), b.pair_count());
    }

    #[test]
    fn num_topics_accessor_matches_generation() {
        let g = SpotifyLike::new(10_000, 1);
        assert_eq!(g.generate().num_topics(), g.num_topics());
    }

    #[test]
    #[should_panic(expected = "at least one subscriber")]
    fn rejects_empty() {
        let _ = SpotifyLike::new(0, 0).generate();
    }
}
