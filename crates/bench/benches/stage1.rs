//! E-FIG4/5 (Criterion form): Stage-1 runtime, GSP vs RSP, across τ, on
//! Spotify-like and Twitter-like traces.

use cloud_cost::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::scenario::Scenario;
use mcss_core::stage1::{GreedySelectPairs, PairSelector, RandomSelectPairs};
use std::hint::black_box;

fn bench_stage1(c: &mut Criterion) {
    let scenarios = [
        Scenario::spotify(20_000, 20140113),
        Scenario::twitter(10_000, 20131030),
    ];
    for scenario in &scenarios {
        let mut group = c.benchmark_group(format!("stage1/{}", scenario.name));
        group.sample_size(10);
        for tau in [10u64, 100, 1000] {
            let inst = scenario
                .instance(tau, instances::C3_LARGE)
                .expect("valid capacity");
            group.bench_with_input(BenchmarkId::new("GSP", tau), &inst, |b, inst| {
                let sel = GreedySelectPairs::new();
                b.iter(|| black_box(sel.select(inst).expect("gsp")));
            });
            group.bench_with_input(BenchmarkId::new("GSP-par4", tau), &inst, |b, inst| {
                let sel = GreedySelectPairs::with_threads(4);
                b.iter(|| black_box(sel.select(inst).expect("gsp")));
            });
            group.bench_with_input(BenchmarkId::new("RSP", tau), &inst, |b, inst| {
                let sel = RandomSelectPairs::new(42);
                b.iter(|| black_box(sel.select(inst).expect("rsp")));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_stage1);
criterion_main!(benches);
