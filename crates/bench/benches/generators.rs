//! Trace generator throughput: how fast the synthetic Spotify/Twitter
//! workloads materialize (relevant when sweeping large scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_traces::{SpotifyLike, TwitterLike};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for size in [5_000usize, 20_000] {
        group.bench_with_input(BenchmarkId::new("spotify", size), &size, |b, &n| {
            b.iter(|| black_box(SpotifyLike::new(n, 7).generate()));
        });
        group.bench_with_input(BenchmarkId::new("twitter", size), &size, |b, &n| {
            b.iter(|| black_box(TwitterLike::new(n, 7).generate()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
