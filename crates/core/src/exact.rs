//! Exact MCSS solver for tiny instances.
//!
//! MCSS is NP-hard (Theorem II.2), so this solver is exponential by
//! nature: it enumerates, per subscriber, every interest subset meeting
//! `τ_v`, and for each combined selection enumerates canonical set
//! partitions of the pairs into capacity-respecting VMs. It exists to
//! sandwich the heuristics in tests (`lower bound ≤ exact ≤ heuristic`)
//! and to decide the DCSS instances produced by the Partition reduction —
//! the paper has no optimal baseline at all, so even a tiny-instance
//! optimum strengthens the reproduction.

use crate::{McssError, McssInstance};
use cloud_cost::{CostModel, Money};
use pubsub_model::{Bandwidth, Rate, TopicId};

/// Work limits for the exact search.
#[derive(Clone, Copy, Debug)]
pub struct ExactSolver {
    /// Maximum number of pairs in any enumerated selection (set partitions
    /// grow as the Bell numbers: B(10) ≈ 1.2e5, B(12) ≈ 4.2e6).
    pub max_pairs: u64,
    /// Hard cap on explored search nodes across the whole solve.
    pub max_nodes: u64,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_pairs: 12,
            max_nodes: 50_000_000,
        }
    }
}

/// The optimum found by [`ExactSolver::solve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExactSolution {
    /// Minimum objective value `C1(|B|) + C2(Σ bw)`.
    pub cost: Money,
    /// VM count of the optimal solution found.
    pub vms: u64,
    /// Total bandwidth of the optimal solution found.
    pub volume: Bandwidth,
}

impl ExactSolver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        ExactSolver::default()
    }

    /// Finds the minimum-cost feasible solution.
    ///
    /// # Errors
    ///
    /// [`McssError::TooLargeForExact`] when the instance exceeds the pair
    /// or node limits, and [`McssError::InfeasibleTopic`] when a subscriber
    /// can only be satisfied by a topic that fits on no VM.
    pub fn solve(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<ExactSolution, McssError> {
        let workload = instance.workload();
        let total_pairs = workload.pair_count();
        if total_pairs > self.max_pairs {
            return Err(McssError::TooLargeForExact {
                pairs: total_pairs,
                limit: self.max_pairs,
            });
        }

        // Enumerate satisfying interest subsets per subscriber.
        let mut options: Vec<Vec<Vec<TopicId>>> = Vec::new();
        for v in workload.subscribers() {
            let interests = workload.interests(v);
            let tau_v = instance.tau_v(v);
            let mut subsets = Vec::new();
            let n = interests.len();
            for mask in 0u32..(1 << n) {
                let mut sum = Rate::ZERO;
                for (i, &t) in interests.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        sum += workload.rate(t);
                    }
                }
                if sum >= tau_v {
                    let subset: Vec<TopicId> = interests
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &t)| t)
                        .collect();
                    subsets.push(subset);
                }
            }
            options.push(subsets);
        }

        let mut best: Option<ExactSolution> = None;
        let mut nodes: u64 = 0;
        let mut pairs: Vec<TopicId> = Vec::new();
        self.pick_selection(
            instance, cost, &options, 0, &mut pairs, &mut best, &mut nodes,
        )?;
        // Every subscriber has at least the full-interest subset, so a
        // selection always exists; packing can still be infeasible only
        // through oversized topics, which pack_best reports.
        best.ok_or_else(|| {
            // Find the offending topic for a precise error.
            for t in workload.topics() {
                if workload.rate(t).pair_cost() > instance.capacity()
                    && !workload.subscribers_of(t).is_empty()
                {
                    return McssError::InfeasibleTopic {
                        topic: t,
                        required: workload.rate(t).pair_cost(),
                        capacity: instance.capacity(),
                    };
                }
            }
            McssError::TooLargeForExact {
                pairs: total_pairs,
                limit: self.max_pairs,
            }
        })
    }

    /// Decides DCSS: is there a solution of cost at most `budget`?
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExactSolver::solve`]; an infeasible instance
    /// decides to `false`.
    pub fn decide_dcss(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        budget: Money,
    ) -> Result<bool, McssError> {
        match self.solve(instance, cost) {
            Ok(solution) => Ok(solution.cost <= budget),
            Err(McssError::InfeasibleTopic { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Depth-first product over per-subscriber subset options.
    #[allow(clippy::too_many_arguments)]
    fn pick_selection(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        options: &[Vec<Vec<TopicId>>],
        v: usize,
        pairs: &mut Vec<TopicId>,
        best: &mut Option<ExactSolution>,
        nodes: &mut u64,
    ) -> Result<(), McssError> {
        if v == options.len() {
            self.pack_best(instance, cost, pairs, best, nodes)?;
            return Ok(());
        }
        for subset in &options[v] {
            pairs.extend_from_slice(subset);
            self.pick_selection(instance, cost, options, v + 1, pairs, best, nodes)?;
            pairs.truncate(pairs.len() - subset.len());
        }
        Ok(())
    }

    /// Optimal packing of a fixed pair multiset (by topic) via canonical
    /// set-partition enumeration with capacity pruning.
    fn pack_best(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        pairs: &[TopicId],
        best: &mut Option<ExactSolution>,
        nodes: &mut u64,
    ) -> Result<(), McssError> {
        let workload = instance.workload();
        let capacity = instance.capacity();
        // Per-VM state: (bandwidth, topics present).
        struct Vm {
            used: Bandwidth,
            topics: Vec<TopicId>,
        }
        // Everything invariant across the recursion, so the walk itself
        // only threads the mutable packing state.
        struct Search<'a> {
            pairs: &'a [TopicId],
            rate_of: &'a dyn Fn(TopicId) -> Rate,
            capacity: Bandwidth,
            cost: &'a dyn CostModel,
            max_nodes: u64,
        }
        impl Search<'_> {
            fn recurse(
                &self,
                idx: usize,
                vms: &mut Vec<Vm>,
                best: &mut Option<ExactSolution>,
                nodes: &mut u64,
            ) -> Result<(), McssError> {
                *nodes += 1;
                if *nodes > self.max_nodes {
                    return Err(McssError::TooLargeForExact {
                        pairs: self.pairs.len() as u64,
                        limit: self.max_nodes,
                    });
                }
                if idx == self.pairs.len() {
                    let volume: Bandwidth = vms.iter().map(|vm| vm.used).sum();
                    let total = self.cost.total_cost(vms.len(), volume);
                    if best.is_none_or(|b| total < b.cost) {
                        *best = Some(ExactSolution {
                            cost: total,
                            vms: vms.len() as u64,
                            volume,
                        });
                    }
                    return Ok(());
                }
                let t = self.pairs[idx];
                let rate = (self.rate_of)(t);
                for i in 0..vms.len() {
                    let delta = if vms[i].topics.contains(&t) {
                        rate.volume()
                    } else {
                        rate.pair_cost()
                    };
                    if vms[i].used + delta <= self.capacity {
                        let added_topic = !vms[i].topics.contains(&t);
                        vms[i].used += delta;
                        if added_topic {
                            vms[i].topics.push(t);
                        }
                        self.recurse(idx + 1, vms, best, nodes)?;
                        vms[i].used -= delta;
                        if added_topic {
                            vms[i].topics.pop();
                        }
                    }
                }
                // Canonical: a new VM may only be the next one.
                if rate.pair_cost() <= self.capacity {
                    vms.push(Vm {
                        used: rate.pair_cost(),
                        topics: vec![t],
                    });
                    self.recurse(idx + 1, vms, best, nodes)?;
                    vms.pop();
                }
                Ok(())
            }
        }
        let rate_of = |t: TopicId| workload.rate(t);
        let mut vms: Vec<Vm> = Vec::new();
        // Sort pairs by topic so same-topic pairs are adjacent — prunes
        // symmetric partitions early.
        let mut sorted: Vec<TopicId> = pairs.to_vec();
        sorted.sort_unstable();
        let search = Search {
            pairs: &sorted,
            rate_of: &rate_of,
            capacity,
            cost,
            max_nodes: self.max_nodes,
        };
        search.recurse(0, &mut vms, best, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{GreedySelectPairs, PairSelector};
    use crate::stage2::{Allocator, CbpConfig, CustomBinPacking};
    use crate::{lower_bound, McssInstance};
    use cloud_cost::LinearCostModel;
    use pubsub_model::Workload;

    fn instance(rates: &[u64], interests: &[&[u32]], tau: u64, cap: u64) -> McssInstance {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(cap)).unwrap()
    }

    fn dollars(d: i64) -> Money {
        Money::from_dollars(d)
    }

    #[test]
    fn trivial_single_pair() {
        let inst = instance(&[10], &[&[0]], 10, 100);
        let cost = LinearCostModel::vm_only(dollars(1));
        let sol = ExactSolver::new().solve(&inst, &cost).unwrap();
        assert_eq!(sol.vms, 1);
        assert_eq!(sol.volume, Bandwidth::new(20));
        assert_eq!(sol.cost, dollars(1));
    }

    #[test]
    fn prefers_fewer_vms_under_vm_only_cost() {
        // Two topics rate 10 each, one subscriber of both; capacity fits
        // everything on one VM.
        let inst = instance(&[10, 10], &[&[0, 1]], 20, 40);
        let cost = LinearCostModel::vm_only(dollars(1));
        let sol = ExactSolver::new().solve(&inst, &cost).unwrap();
        assert_eq!(sol.vms, 1);
    }

    #[test]
    fn skips_unneeded_pairs() {
        // τ = 10, topics {10, 90}: optimal selects only the 10.
        let inst = instance(&[10, 90], &[&[0, 1]], 10, 1000);
        let cost = LinearCostModel::new(dollars(0), Money::from_micros(1));
        let sol = ExactSolver::new().solve(&inst, &cost).unwrap();
        assert_eq!(sol.volume, Bandwidth::new(20));
    }

    #[test]
    fn splitting_versus_packing_tradeoff() {
        // One topic rate 10 with 3 subscribers, capacity 30: one VM holds
        // 2 pairs (30 = 3·10), so 2 VMs needed; bandwidth = 30 + 20 = 50.
        let inst = instance(&[10], &[&[0], &[0], &[0]], 10, 30);
        let cost = LinearCostModel::new(dollars(1), Money::from_micros(1));
        let sol = ExactSolver::new().solve(&inst, &cost).unwrap();
        assert_eq!(sol.vms, 2);
        assert_eq!(sol.volume, Bandwidth::new(50));
    }

    #[test]
    fn exact_within_lower_bound_and_heuristic_sandwich() {
        type Case = (Vec<u64>, Vec<&'static [u32]>, u64, u64);
        let cases: Vec<Case> = vec![
            (vec![9, 5, 3], vec![&[0, 1, 2], &[1, 2]], 8, 40),
            (vec![20, 10], vec![&[0, 1], &[0]], 15, 70),
            (vec![7, 7, 7], vec![&[0, 1], &[1, 2], &[0, 2]], 7, 30),
            (vec![12, 8, 4, 2], vec![&[0, 1, 2, 3]], 14, 60),
        ];
        let cost = LinearCostModel::new(dollars(2), Money::from_micros(7));
        for (rates, interests, tau, cap) in cases {
            let inst = instance(&rates, &interests, tau, cap);
            let exact = ExactSolver::new().solve(&inst, &cost).unwrap();
            let lb = lower_bound(inst.workload(), inst.tau(), inst.capacity());
            assert!(
                lb.cost(&cost) <= exact.cost,
                "lower bound above exact for rates {rates:?} τ={tau}"
            );
            let sel = GreedySelectPairs::new().select(&inst).unwrap();
            let heuristic = CustomBinPacking::new(CbpConfig::full())
                .allocate(inst.workload(), &sel, inst.capacity(), &cost)
                .unwrap();
            assert!(
                exact.cost <= heuristic.cost(&cost),
                "exact above heuristic for rates {rates:?} τ={tau}"
            );
        }
    }

    #[test]
    fn pair_limit_enforced() {
        let inst = instance(
            &[1; 5],
            &[&[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4]],
            5,
            100,
        );
        let cost = LinearCostModel::vm_only(dollars(1));
        let err = ExactSolver {
            max_pairs: 4,
            max_nodes: 1000,
        }
        .solve(&inst, &cost)
        .unwrap_err();
        assert!(matches!(err, McssError::TooLargeForExact { pairs: 15, .. }));
    }

    #[test]
    fn dcss_decision() {
        let inst = instance(&[10, 10], &[&[0], &[1]], 10, 40);
        let cost = LinearCostModel::vm_only(dollars(1));
        let solver = ExactSolver::new();
        assert!(solver.decide_dcss(&inst, &cost, dollars(1)).unwrap());
        assert!(!solver
            .decide_dcss(&inst, &cost, Money::from_cents(99))
            .unwrap());
    }

    #[test]
    fn infeasible_decides_false() {
        let inst = instance(&[100], &[&[0]], 100, 50);
        let cost = LinearCostModel::vm_only(dollars(1));
        assert!(!ExactSolver::new()
            .decide_dcss(&inst, &cost, dollars(100))
            .unwrap());
        assert!(matches!(
            ExactSolver::new().solve(&inst, &cost),
            Err(McssError::InfeasibleTopic { .. })
        ));
    }
}
