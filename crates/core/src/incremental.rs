//! Incremental re-allocation — the online algorithm the paper leaves as
//! future work (§VI), with an O(Δ) churn path.
//!
//! Re-running the full pipeline every epoch (see [`crate::dynamic`])
//! recomputes everything and may produce a completely different placement,
//! which in a real deployment means mass subscriber migration. The
//! [`IncrementalReallocator`] instead *repairs* the previous allocation,
//! and every phase of the repair scales with the epoch's churn rather
//! than the fleet:
//!
//! 1. Stage 1 re-runs `select_for_subscriber` only for *dirty*
//!    subscribers — those whose interest set changed or who follow a
//!    topic whose rate changed — and reuses the previous epoch's
//!    selection rows verbatim for everyone else. The result is
//!    bit-identical to a full re-selection (a clean subscriber's greedy
//!    choice depends only on its own interests, their rates, and `τ`);
//! 2. dirty rows are diffed old-vs-new in place ([`crate::SelectionDiff`];
//!    no clone, no sort): pairs that left the selection are removed from
//!    the [`FleetLedger`], which finds the hosting VM through its topic
//!    reverse index; pairs whose topics got louder may overflow a VM, in
//!    which case whole topic groups are evicted cheapest-first until the
//!    VM fits again;
//! 3. new and evicted pairs are placed topic-grouped — VMs already
//!    hosting the topic first (no extra incoming stream), then the
//!    most-free VM (a lazy heap), then fresh VMs;
//! 4. emptied VMs are released (their ledger slots are tombstoned and
//!    reused), and if overall utilization drops below a configurable
//!    floor the allocator falls back to a full CustomBinPacking re-solve
//!    (placement debt has accumulated).
//!
//! The outcome reports exactly how many pairs moved — and how many rows
//! dirty tracking skipped — so the operational cost of adaptation is
//! visible: the metric a re-provisioning interval would be tuned against.

use crate::dynamic::WorkloadDelta;
use crate::ledger::FleetLedger;
use crate::lower_bound::lower_bound;
use crate::shard::{partition_subscriber_set, run_shards, ShardedSolver, ShardingConfig};
use crate::stage1::{select_for_subscriber_into, GreedySelectPairs, PairSelector};
use crate::stage2::{
    improve, Allocator, CbpConfig, CustomBinPacking, ImproveReport, MixedFleetPacker, SearchBudget,
};
use crate::{
    Allocation, McssError, McssInstance, Selection, SelectionBuilder, SelectionDiff, SolverParams,
    TopicGroups,
};
use cloud_cost::{CostModel, FleetCostModel};
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload, WorkloadView};
use std::time::{Duration, Instant};

/// Configuration for [`IncrementalReallocator`].
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Utilization floor: when `Σ used / (|B| · BC)` falls below this
    /// after repair, a full re-solve replaces the repaired allocation.
    pub compaction_threshold: f64,
    /// When set with `shards ≥ 2`, full re-solves (the first epoch and
    /// compaction-triggered rebuilds) pack shard-parallel through
    /// [`ShardedSolver`] instead of one monolithic CustomBinPacking run.
    /// Repairs stay incremental either way — they touch only the pairs
    /// that moved.
    pub sharding: Option<ShardingConfig>,
    /// When true (the default), Stage 1 re-selects only dirty subscribers
    /// and reuses the previous rows for the rest. When false, every
    /// subscriber is re-selected each epoch — the pre-ledger behaviour,
    /// kept as the baseline the churn bench measures against.
    pub dirty_tracking: bool,
    /// When set, epoch repairs re-select the dirty subscriber set
    /// shard-parallel: the dirty set is split with the same partitioners
    /// as full sharded solves, each shard re-selects on a scoped worker
    /// thread, and the shard rows merge with the reused clean rows in a
    /// deterministic size → prefix-sum → scatter pass. Per-subscriber
    /// greedy selection reads nothing outside the subscriber's own rows,
    /// so the result is bit-identical to the sequential repair (asserted
    /// in debug builds). `None` repairs on the calling thread.
    pub repair: Option<ShardingConfig>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            compaction_threshold: 0.5,
            sharding: None,
            dirty_tracking: true,
            repair: None,
        }
    }
}

impl IncrementalConfig {
    /// Convenience for CLI-style thread counts: `threads > 1` turns on
    /// shard-parallel repair with one shard per thread; `threads <= 1`
    /// leaves repair on the calling thread.
    pub fn with_repair_threads(mut self, threads: usize) -> Self {
        self.repair = (threads > 1).then(|| ShardingConfig::new(threads));
        self
    }
}

/// One epoch's outcome.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The repaired (or re-solved) allocation.
    pub allocation: Allocation,
    /// The Stage-1 selection this epoch serves (useful with
    /// [`IncrementalReallocator::adopt`]).
    pub selection: Selection,
    /// Pairs newly placed this epoch (selection growth plus evictions).
    pub pairs_placed: u64,
    /// Pairs removed because they left the Stage-1 selection.
    pub pairs_removed: u64,
    /// Pairs evicted from overflowing VMs and re-placed elsewhere.
    pub pairs_evicted: u64,
    /// Pairs whose selection rows were reused verbatim because dirty
    /// tracking proved their subscriber untouched this epoch.
    pub pairs_reused: u64,
    /// Whether the utilization floor forced a full re-solve.
    pub full_resolve: bool,
}

/// Per-epoch repair budget for [`IncrementalReallocator::repair_failures`]
/// — the SLA knob: how much re-placement work one repair call may do
/// before it yields and carries the remainder over to the next epoch.
///
/// `None` in both fields (the [`SlaBudget::UNBOUNDED`] default) drains
/// the whole orphan queue in one call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlaBudget {
    /// Maximum topic-subscriber pairs re-placed per call.
    pub max_pairs: Option<u64>,
    /// Wall-clock deadline per call, checked between placement chunks.
    /// Non-deterministic by nature — replayable consumers (the serve
    /// daemon's event log) must use `max_pairs` instead.
    pub deadline: Option<Duration>,
}

impl SlaBudget {
    /// No limit: drain everything in one call.
    pub const UNBOUNDED: SlaBudget = SlaBudget {
        max_pairs: None,
        deadline: None,
    };

    /// Budget of at most `max` pairs re-placed per call.
    pub fn pairs(max: u64) -> Self {
        SlaBudget {
            max_pairs: Some(max),
            ..SlaBudget::UNBOUNDED
        }
    }

    /// Adds a wall-clock deadline to this budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Outcome of one [`IncrementalReallocator::repair_failures`] call:
/// the (possibly still degraded) allocation plus exact accounting of
/// what the failure orphaned, what this call restored, and who is still
/// waiting.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The fleet after this repair round — degraded (missing the
    /// deferred pairs) until [`RepairReport::drained`] is true.
    pub allocation: Allocation,
    /// Slots actually failed by this call (deduplicated).
    pub vms_failed: usize,
    /// Requested slot indices that were out of range or already dead.
    pub invalid_slots: Vec<usize>,
    /// Pairs newly orphaned by this call's failures.
    pub pairs_orphaned: u64,
    /// Pairs re-placed this call (from this call's orphans and any
    /// carry-over queue from earlier calls), `≤ budget.max_pairs`.
    pub pairs_replaced: u64,
    /// Pairs still waiting in the carry-over queue after this call.
    pub pairs_deferred: u64,
    /// Subscribers whose delivered rate is below their satisfaction
    /// target while pairs stay deferred (ascending id order).
    pub starved: Vec<SubscriberId>,
    /// Total event-rate shortfall across starved subscribers
    /// (Σ max(0, τ_v − delivered_v)).
    pub shortfall: u64,
    /// True when the carry-over queue is empty: the allocation serves
    /// the full selection again, bit-identical in satisfaction to a
    /// fresh solve.
    pub drained: bool,
    /// Wall-clock time this repair call spent.
    pub elapsed: Duration,
}

/// Epoch-to-epoch allocator that minimizes placement churn.
#[derive(Clone, Debug, Default)]
pub struct IncrementalReallocator {
    config: IncrementalConfig,
    /// When set, full re-solves pack onto a heterogeneous fleet through
    /// [`MixedFleetPacker`] and the ledger repairs per-slot (tier)
    /// capacities; instance capacities must equal
    /// [`FleetCostModel::max_capacity`].
    fleet: Option<FleetCostModel>,
    previous: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    selection: Selection,
    ledger: FleetLedger,
    capacity: Bandwidth,
    /// The workload and `τ` the selection was produced against — what
    /// dirty detection deltas the new epoch against. Absent after
    /// [`IncrementalReallocator::adopt`] (the adopted allocation carries
    /// no epoch context), in which case the next step treats every
    /// subscriber as dirty and resyncs the ledger's usage counters.
    basis: Option<EpochBasis>,
    /// Selected pairs orphaned by VM failures that an exhausted
    /// [`SlaBudget`] deferred — drained by later
    /// [`IncrementalReallocator::repair_failures`] calls, filtered by
    /// every step against the new selection (a pair whose subscriber
    /// dropped the topic no longer needs re-placing), cleared by full
    /// re-solves (which place the whole selection anyway).
    pending: Vec<(TopicId, SubscriberId)>,
}

#[derive(Clone, Debug)]
struct EpochBasis {
    /// The previous epoch's event rates — what the ledger's used counters
    /// are denominated in, needed to re-base them after rate changes.
    rates: Vec<Rate>,
    /// The previous epoch's subscriber count.
    num_subscribers: usize,
    tau: Rate,
    /// Full workload snapshot for scan-based dirty detection. Only kept
    /// when the previous epoch was advanced without a caller-provided
    /// delta: a delta names the changed subscribers itself, so interests
    /// are never compared and the O(pairs) snapshot would be dead weight.
    /// A scan-based [`IncrementalReallocator::step`] following a
    /// delta-fed epoch conservatively treats every subscriber as dirty.
    workload: Option<Workload>,
}

impl IncrementalReallocator {
    /// Creates a re-allocator with the given configuration.
    pub fn new(config: IncrementalConfig) -> Self {
        IncrementalReallocator {
            config,
            fleet: None,
            previous: None,
        }
    }

    /// Switches the re-allocator to a heterogeneous fleet: full re-solves
    /// pack through [`MixedFleetPacker`] (sharding is ignored in mixed
    /// mode), repairs respect each VM's own tier capacity, and fresh VMs
    /// pick the cheapest-density tier that holds their group. Epoch
    /// instances must use [`FleetCostModel::max_capacity`] as their
    /// capacity. Stage-1 selections are unaffected — they stay
    /// bit-identical to the homogeneous run at the same `τ`.
    pub fn with_fleet(mut self, fleet: FleetCostModel) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Repairs the previous allocation against the instance's current
    /// workload (first call performs a full solve). The epoch's delta is
    /// derived by scanning the new workload against the remembered one;
    /// drift sources that already know what changed should call
    /// [`IncrementalReallocator::step_with_delta`] instead.
    ///
    /// ```
    /// use cloud_cost::{LinearCostModel, Money};
    /// use mcss_core::incremental::IncrementalReallocator;
    /// use mcss_core::McssInstance;
    /// use pubsub_model::{Bandwidth, Rate, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = Workload::builder();
    /// let t = b.add_topic(Rate::new(10))?;
    /// b.add_subscriber([t])?;
    /// // Capacity 25 keeps utilization (20/25) above the compaction
    /// // floor, so the steady-state epoch really is a no-op repair.
    /// let inst = McssInstance::new(b.build(), Rate::new(10), Bandwidth::new(25))?;
    /// let cost = LinearCostModel::vm_only(Money::from_dollars(1));
    ///
    /// let mut inc = IncrementalReallocator::default();
    /// let first = inc.step(&inst, &cost)?;   // epoch 0: full solve
    /// assert!(first.full_resolve);
    /// let second = inc.step(&inst, &cost)?;  // unchanged epoch: nothing moves
    /// assert_eq!(second.pairs_placed + second.pairs_removed, 0);
    /// assert_eq!(second.pairs_reused, first.selection.pair_count());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`McssError::InfeasibleTopic`] if a selected topic no longer fits
    /// on any VM.
    pub fn step(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<IncrementalOutcome, McssError> {
        self.step_inner(instance, cost, None)
    }

    /// Like [`IncrementalReallocator::step`], but trusts the caller's
    /// [`WorkloadDelta`] instead of scanning for changes — the fully O(Δ)
    /// entry point for drift sources like
    /// [`DriftModel::evolve_tracked`](crate::dynamic::DriftModel::evolve_tracked).
    ///
    /// The delta may over-approximate but must not miss a change;
    /// a missed change produces a stale (though still capacity-feasible)
    /// selection row.
    ///
    /// # Errors
    ///
    /// [`McssError::InfeasibleTopic`] if a selected topic no longer fits
    /// on any VM.
    pub fn step_with_delta(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        delta: &WorkloadDelta,
    ) -> Result<IncrementalOutcome, McssError> {
        self.step_inner(instance, cost, Some(delta))
    }

    /// Fails VMs and re-places their orphaned pairs within `budget`.
    ///
    /// `failed_slots` are *ledger slot* indices (equal to allocation VM
    /// indices until slots have been tombstoned and reused); call with an
    /// empty slice to keep draining the carry-over queue an exhausted
    /// budget left behind. Failed slots are quarantined — they rejoin
    /// the reuse pool only through
    /// [`IncrementalReallocator::recover_slot`]. `instance` must describe
    /// the same workload, `τ`, and capacity as the last epoch step:
    /// repair re-places pairs, it does not absorb drift (that is what
    /// [`IncrementalReallocator::step`] is for, and steps interleave
    /// freely with repair rounds — deferred pairs survive them).
    ///
    /// Orphans are re-grouped by topic and placed in ascending topic
    /// order through the same host-first/most-free/fresh-VM machinery as
    /// epoch repair, so a fully drained repair is bit-identical in
    /// satisfaction to a fresh solve. When the budget runs out first,
    /// the returned [`RepairReport`] quantifies the degraded mode:
    /// deferred pairs, starved subscribers, and the satisfaction
    /// shortfall.
    ///
    /// # Panics
    ///
    /// If no epoch has been stepped yet — there is no fleet to repair.
    ///
    /// # Errors
    ///
    /// [`McssError::InfeasibleTopic`] if an orphaned topic fits on no VM
    /// (only possible when `instance` disagrees with the last step's).
    /// Nothing is placed in that case and the queue is preserved.
    pub fn repair_failures(
        &mut self,
        instance: &McssInstance,
        failed_slots: &[usize],
        budget: SlaBudget,
    ) -> Result<RepairReport, McssError> {
        let started = Instant::now();
        let workload = instance.workload();
        let prev = self
            .previous
            .as_mut()
            .expect("repair_failures requires a prior epoch: call step() first");
        let capacity = prev.capacity;

        let failed = prev.ledger.fail_slots(failed_slots);
        let vms_failed = failed.failed.len();
        let mut pairs_orphaned = 0u64;
        for (t, subs) in failed.orphans {
            pairs_orphaned += subs.len() as u64;
            prev.pending.extend(subs.into_iter().map(|v| (t, v)));
        }

        // Re-group the whole queue by topic (the counting-sort CSR
        // inversion yields ascending topic order, keeping the drain
        // deterministic) and pre-check feasibility so an error never
        // leaves the queue half-placed.
        let groups = TopicGroups::from_pairs(&prev.pending, workload.num_topics());
        for (topic, _) in groups.iter() {
            let rate = workload.rate(topic);
            if rate.pair_cost() > capacity {
                return Err(McssError::InfeasibleTopic {
                    topic,
                    required: rate.pair_cost(),
                    capacity,
                });
            }
        }

        let mut pairs_left = budget.max_pairs.unwrap_or(u64::MAX);
        let mut out_of_time = budget.deadline.is_some_and(|d| started.elapsed() >= d);
        let mut pairs_replaced = 0u64;
        let mut deferred: Vec<(TopicId, SubscriberId)> = Vec::new();
        for (topic, subs) in groups.iter() {
            let rate = workload.rate(topic);
            let mut rest = subs;
            while !rest.is_empty() {
                if pairs_left == 0 || out_of_time {
                    deferred.extend(rest.iter().map(|&v| (topic, v)));
                    break;
                }
                // Chunked so a wall-clock deadline is honoured at a
                // finer grain than whole topic groups.
                let chunk = (rest.len() as u64).min(pairs_left).min(1024) as usize;
                let (head, tail) = rest.split_at(chunk);
                prev.ledger.place_group(topic, rate, head, capacity);
                pairs_replaced += chunk as u64;
                pairs_left -= chunk as u64;
                rest = tail;
                if let Some(deadline) = budget.deadline {
                    out_of_time = started.elapsed() >= deadline;
                }
            }
        }
        prev.pending = deferred;

        // Degraded-mode accounting: a waiting subscriber's delivered
        // rate is its selection row minus whatever is still deferred.
        let mut missing: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for &(t, v) in &prev.pending {
            *missing.entry(v.index()).or_insert(0) += workload.rate(t).get();
        }
        let mut waiting: Vec<(usize, u64)> = missing.into_iter().collect();
        waiting.sort_unstable();
        let mut starved: Vec<SubscriberId> = Vec::new();
        let mut shortfall = 0u64;
        for (vi, miss) in waiting {
            let v = SubscriberId::new(vi as u32);
            let row_sum: u64 = prev
                .selection
                .selected(v)
                .iter()
                .map(|&t| workload.rate(t).get())
                .sum();
            let target = instance.tau_v(v).get();
            let delivered = row_sum.saturating_sub(miss);
            if delivered < target {
                starved.push(v);
                shortfall += target - delivered;
            }
        }

        let pairs_deferred = prev.pending.len() as u64;
        Ok(RepairReport {
            allocation: prev.ledger.to_allocation(capacity),
            vms_failed,
            invalid_slots: failed.rejected,
            pairs_orphaned,
            pairs_replaced,
            pairs_deferred,
            starved,
            shortfall,
            drained: pairs_deferred == 0,
            elapsed: started.elapsed(),
        })
    }

    /// Returns a recovered slot to the fresh-VM reuse pool — the inverse
    /// of a failure. `false` when no epoch has been stepped or the slot
    /// is not currently failed.
    pub fn recover_slot(&mut self, slot: usize) -> bool {
        self.previous
            .as_mut()
            .is_some_and(|s| s.ledger.recover_slot(slot))
    }

    /// Pairs waiting in the failure-repair carry-over queue.
    pub fn pending_repair_pairs(&self) -> u64 {
        self.previous.as_ref().map_or(0, |s| s.pending.len() as u64)
    }

    fn step_inner(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        delta: Option<&WorkloadDelta>,
    ) -> Result<IncrementalOutcome, McssError> {
        let workload = instance.workload();
        let capacity = instance.capacity();
        let tau = instance.tau();
        let n = workload.num_subscribers();

        let Some(mut prev) = self.previous.take() else {
            let selection = GreedySelectPairs::new().select(instance)?;
            let allocation = self.full_allocate(instance, &selection, cost)?;
            let placed = selection.pair_count();
            self.remember(
                selection.clone(),
                &allocation,
                workload,
                tau,
                capacity,
                delta.is_none(),
            );
            return Ok(IncrementalOutcome {
                allocation,
                selection,
                pairs_placed: placed,
                pairs_removed: 0,
                pairs_evicted: 0,
                pairs_reused: 0,
                full_resolve: true,
            });
        };
        let prev_n = prev.selection.num_subscribers();
        let mut pending = std::mem::take(&mut prev.pending);

        // --- Dirty detection -------------------------------------------
        // A subscriber's greedy row depends only on its interest set, the
        // rates of those topics, and τ; it must be re-selected iff any of
        // those changed. `changed_rates` additionally drives the ledger's
        // used-counter refresh.
        let mut dirty = vec![true; n];
        let mut changed_rates: Vec<(TopicId, Rate, Rate)> = Vec::new();
        if let Some(basis) = &prev.basis {
            let old_rates = basis.rates.as_slice();
            let new_rates = workload.rates();
            let common = old_rates.len().min(new_rates.len());
            match delta {
                Some(delta) => {
                    // Deduplicate: the delta contract allows repeats, but
                    // `refresh_rate` is a re-base, not idempotent — each
                    // topic must be applied exactly once.
                    let mut topics: Vec<TopicId> = delta
                        .changed_topics
                        .iter()
                        .copied()
                        .filter(|t| {
                            t.index() < common && old_rates[t.index()] != new_rates[t.index()]
                        })
                        .collect();
                    topics.sort_unstable();
                    topics.dedup();
                    for t in topics {
                        changed_rates.push((t, old_rates[t.index()], new_rates[t.index()]));
                    }
                }
                None => {
                    for ti in 0..common {
                        if old_rates[ti] != new_rates[ti] {
                            changed_rates.push((
                                TopicId::new(ti as u32),
                                old_rates[ti],
                                new_rates[ti],
                            ));
                        }
                    }
                }
            }
            // Scan-based detection needs the interest snapshot; without
            // one (the previous epoch was delta-fed) stay all-dirty.
            let can_track = self.config.dirty_tracking
                && basis.tau == tau
                && (delta.is_some() || basis.workload.is_some());
            if can_track {
                dirty = vec![false; n];
                // Followers of re-rated topics.
                for &(t, _, _) in &changed_rates {
                    for &v in workload.subscribers_of(t) {
                        if v.index() < n {
                            dirty[v.index()] = true;
                        }
                    }
                }
                // Changed interest sets, plus subscribers the old epoch
                // never saw.
                let basis_n = basis.num_subscribers;
                for flag in dirty.iter_mut().skip(basis_n.min(n)) {
                    *flag = true;
                }
                match delta {
                    Some(delta) => {
                        for &v in &delta.changed_subscribers {
                            if v.index() < n {
                                dirty[v.index()] = true;
                            }
                        }
                    }
                    None => {
                        let snapshot = basis.workload.as_ref().expect("checked by can_track");
                        for (vi, flag) in dirty.iter_mut().enumerate().take(basis_n.min(n)) {
                            if !*flag {
                                let v = SubscriberId::new(vi as u32);
                                if snapshot.interests(v) != workload.interests(v) {
                                    *flag = true;
                                }
                            }
                        }
                    }
                }
            }
        }

        // --- Ledger re-basing ------------------------------------------
        prev.ledger.ensure_topics(workload.num_topics());
        match &prev.basis {
            Some(basis) => {
                // Vanished topics lose their groups wholesale; the diff
                // below re-reports their pairs as removed (no-ops).
                for ti in workload.num_topics()..basis.rates.len() {
                    prev.ledger
                        .drop_topic(TopicId::new(ti as u32), basis.rates[ti]);
                }
                for &(t, old, new) in &changed_rates {
                    prev.ledger.refresh_rate(t, old, new);
                }
            }
            None => {
                // Adopted fleet: no previous rates to delta against.
                prev.ledger.drop_topics_at_or_above(workload.num_topics());
                prev.ledger.recompute_used(workload);
                prev.ledger.mark_all_for_overflow();
            }
        }
        if capacity != prev.capacity {
            // A typed ledger's capacities come from its tiers; untyped
            // slots are re-sized to the new shared BC.
            if !prev.ledger.is_typed() {
                prev.ledger.reset_capacity(capacity);
            }
            prev.ledger.mark_all_for_overflow();
        }

        // --- Stage 1: re-select dirty rows, reuse the rest -------------
        let mut pairs_reused = 0u64;
        let selection = match self.config.repair {
            Some(repair) => {
                let merged = reselect_dirty_sharded(workload, &prev.selection, &dirty, tau, repair);
                pairs_reused += merged.1;
                #[cfg(debug_assertions)]
                {
                    let mut seq_reused = 0u64;
                    let seq = reselect_dirty_sequential(
                        workload.view(),
                        &prev.selection,
                        &dirty,
                        tau,
                        &mut seq_reused,
                    );
                    assert_eq!(
                        seq, merged.0,
                        "sharded repair diverged from sequential repair"
                    );
                    assert_eq!(seq_reused, merged.1);
                }
                merged.0
            }
            None => reselect_dirty_sequential(
                workload.view(),
                &prev.selection,
                &dirty,
                tau,
                &mut pairs_reused,
            ),
        };

        // --- Diff dirty rows and repair the ledger ---------------------
        let mut removed: Vec<(TopicId, SubscriberId)> = Vec::new();
        let mut to_place: Vec<(TopicId, SubscriberId)> = Vec::new();
        let mut differ = SelectionDiff::new();
        for (vi, &is_dirty) in dirty.iter().enumerate() {
            if !is_dirty {
                continue;
            }
            let v = SubscriberId::new(vi as u32);
            let old_row: &[TopicId] = if vi < prev_n {
                prev.selection.selected(v)
            } else {
                &[]
            };
            differ.diff_rows(
                old_row,
                selection.selected(v),
                |t| removed.push((t, v)),
                |t| to_place.push((t, v)),
            );
        }
        // Subscribers that disappeared entirely (shrunk workload).
        for vi in n..prev_n {
            let v = SubscriberId::new(vi as u32);
            for &t in prev.selection.selected(v) {
                removed.push((t, v));
            }
        }
        let pairs_removed = removed.len() as u64;
        for &(t, v) in &removed {
            if t.index() < workload.num_topics() {
                prev.ledger.remove_pair(t, v, workload.rate(t));
            }
            // else: the topic vanished and its groups were dropped above.
        }

        // Evict from overflowing VMs, cheapest topic group first.
        let pairs_evicted = prev.ledger.evict_overflowing(workload, &mut to_place);
        let pairs_placed = to_place.len() as u64;

        // Group the work by topic (counting-sort CSR inversion, ascending
        // topic order) and place: host VMs first, then most-free, then
        // fresh VMs.
        let groups = TopicGroups::from_pairs(&to_place, workload.num_topics());
        for (topic, subs) in groups.iter() {
            let rate = workload.rate(topic);
            if rate.pair_cost() > capacity {
                return Err(McssError::InfeasibleTopic {
                    topic,
                    required: rate.pair_cost(),
                    capacity,
                });
            }
            prev.ledger.place_group(topic, rate, subs, capacity);
        }

        // Release empty VMs and check the compaction floor.
        prev.ledger.release_empty();
        if prev.ledger.utilization() < self.config.compaction_threshold {
            let allocation = self.full_allocate(instance, &selection, cost)?;
            let placed = selection.pair_count();
            self.remember(
                selection.clone(),
                &allocation,
                workload,
                tau,
                capacity,
                delta.is_none(),
            );
            return Ok(IncrementalOutcome {
                allocation,
                selection,
                pairs_placed: placed,
                pairs_removed,
                pairs_evicted,
                pairs_reused,
                full_resolve: true,
            });
        }

        let allocation = prev.ledger.to_allocation(capacity);
        // Carry deferred repair pairs forward, dropping any the new
        // selection no longer wants (rows are small, so a linear
        // `contains` beats assuming a sort order they don't have).
        pending.retain(|&(t, v)| {
            t.index() < workload.num_topics() && v.index() < n && selection.selected(v).contains(&t)
        });
        self.previous = Some(State {
            selection: selection.clone(),
            ledger: prev.ledger,
            capacity,
            pending,
            basis: Some(EpochBasis {
                rates: workload.rates().to_vec(),
                num_subscribers: n,
                tau,
                workload: if delta.is_some() {
                    None
                } else {
                    Some(workload.clone())
                },
            }),
        });
        Ok(IncrementalOutcome {
            allocation,
            selection,
            pairs_placed,
            pairs_removed,
            pairs_evicted,
            pairs_reused,
            full_resolve: false,
        })
    }

    /// Packs `selection` from scratch — mixed-fleet when a fleet is
    /// configured, shard-parallel when the configuration asks for it,
    /// monolithic CBP otherwise.
    fn full_allocate(
        &self,
        instance: &McssInstance,
        selection: &Selection,
        cost: &dyn CostModel,
    ) -> Result<Allocation, McssError> {
        if let Some(fleet) = &self.fleet {
            return MixedFleetPacker::new().allocate(instance.workload(), selection, fleet);
        }
        match self.config.sharding {
            Some(sharding) if sharding.shards > 1 => {
                let solver = ShardedSolver::new(SolverParams::default(), sharding);
                let (allocation, _) = solver.allocate(instance, selection, cost)?;
                Ok(allocation)
            }
            _ => CustomBinPacking::new(CbpConfig::full()).allocate(
                instance.workload(),
                selection,
                instance.capacity(),
                cost,
            ),
        }
    }

    /// The remembered epoch state — previous selection, fleet ledger and
    /// epoch capacity — exported for crash-consistent snapshots (see
    /// [`crate::serve`]). `None` before the first epoch.
    pub fn checkpoint(&self) -> Option<(&Selection, &FleetLedger, Bandwidth)> {
        self.previous
            .as_ref()
            .map(|s| (&s.selection, &s.ledger, s.capacity))
    }

    /// Replaces the remembered fleet with a budget-bounded local-search
    /// refinement of it ([`crate::stage2::improve`]) — the compaction
    /// half of the serve loop's epoch cycle. The Stage-1 selection, the
    /// epoch basis, and the carry-over repair queue are untouched: only
    /// the packing changes, so delivered rates are bit-identical before
    /// and after.
    ///
    /// Returns `None` without touching anything when there is nothing
    /// safe to compact: no remembered state yet, orphaned pairs still
    /// deferred by the repair budget, failed slots still down (their
    /// slot indices must stay stable for `VmRecover`), or a
    /// heterogeneous fleet (typed ledgers re-pack through
    /// [`MixedFleetPacker`] full re-solves instead).
    ///
    /// Compaction renumbers ledger slots (empty slots are dropped on
    /// export), so callers that address VMs by slot — `VmFail` events —
    /// must only do so against post-compaction state, which is exactly
    /// what deterministic epoch replay guarantees when the budget is a
    /// step budget. Wall-clock budgets are rejected by [`crate::serve`]
    /// for this reason; library callers get what they ask for.
    pub fn compact(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        budget: SearchBudget,
    ) -> Option<ImproveReport> {
        if self.fleet.is_some() {
            return None;
        }
        let state = self.previous.as_mut()?;
        if !state.pending.is_empty() || state.ledger.failed_slot_count() > 0 {
            return None;
        }
        let allocation = state.ledger.to_allocation(state.capacity);
        let certificate =
            lower_bound(instance.workload(), instance.tau(), state.capacity).cost(cost);
        let (refined, report) = improve(allocation, instance.workload(), cost, certificate, budget);
        if report.steps > 0 {
            let mut ledger = FleetLedger::from_allocation(&refined);
            ledger.ensure_topics(instance.workload().num_topics());
            state.ledger = ledger;
        }
        Some(report)
    }

    /// Rebuilds the remembered state from snapshot primaries — the
    /// restore half of [`IncrementalReallocator::checkpoint`]. `rates`
    /// and `tau` must describe the workload `selection` was produced
    /// against; the next step then deltas against them exactly as if the
    /// allocator had never stopped. The restored basis carries no
    /// workload snapshot, so follow-up epochs must be delta-fed
    /// ([`IncrementalReallocator::step_with_delta`]) for dirty tracking
    /// to stay active — a scan-based step conservatively re-selects
    /// everyone, exactly as after any other delta-fed epoch.
    pub fn restore(
        &mut self,
        selection: Selection,
        ledger: FleetLedger,
        capacity: Bandwidth,
        rates: Vec<Rate>,
        tau: Rate,
    ) {
        let num_subscribers = selection.num_subscribers();
        // Selected pairs the ledger does not host are repairs a crashed
        // process had deferred — rebuild the carry-over queue so
        // `repair_failures` resumes exactly where it stopped. Snapshots
        // need no pending list of their own for this.
        let mut pending = Vec::new();
        for (vi, row) in selection.rows().enumerate() {
            let v = SubscriberId::new(vi as u32);
            for &t in row {
                if !ledger.contains_pair(t, v) {
                    pending.push((t, v));
                }
            }
        }
        self.previous = Some(State {
            selection,
            ledger,
            capacity,
            pending,
            basis: Some(EpochBasis {
                rates,
                num_subscribers,
                tau,
                workload: None,
            }),
        });
    }

    /// Seeds the re-allocator's state from an externally produced
    /// allocation — e.g. a degraded fleet after broker failures, so the
    /// next [`IncrementalReallocator::step`] re-places exactly the lost
    /// pairs onto the surviving machines.
    ///
    /// `selection` must be the Stage-1 selection the allocation serves
    /// (possibly partially, after failures). The adopted state carries no
    /// epoch basis, so the next step treats every subscriber as dirty and
    /// resyncs the ledger before repairing.
    pub fn adopt(&mut self, selection: &Selection, allocation: &Allocation) {
        // Keep only the pairs that are actually placed: the next diff
        // then treats missing ones as "added" and re-places them.
        let placed_pairs: std::collections::HashSet<(TopicId, SubscriberId)> = allocation
            .vms()
            .iter()
            .flat_map(|vm| {
                vm.placements()
                    .iter()
                    .flat_map(|p| p.subscribers.iter().map(move |&v| (p.topic, v)))
            })
            .collect();
        let mut surviving =
            SelectionBuilder::with_capacity(selection.num_subscribers(), placed_pairs.len());
        for (vi, row) in selection.rows().enumerate() {
            let v = SubscriberId::new(vi as u32);
            surviving.push_row(
                row.iter()
                    .copied()
                    .filter(|&t| placed_pairs.contains(&(t, v))),
            );
        }
        self.previous = Some(State {
            selection: surviving.build(),
            ledger: FleetLedger::from_allocation(allocation),
            capacity: allocation.capacity(),
            pending: Vec::new(),
            basis: None,
        });
    }

    fn remember(
        &mut self,
        selection: Selection,
        allocation: &Allocation,
        workload: &Workload,
        tau: Rate,
        capacity: Bandwidth,
        keep_snapshot: bool,
    ) {
        self.previous = Some(State {
            selection,
            ledger: FleetLedger::from_allocation(allocation),
            capacity,
            pending: Vec::new(),
            basis: Some(EpochBasis {
                rates: workload.rates().to_vec(),
                num_subscribers: workload.num_subscribers(),
                tau,
                workload: keep_snapshot.then(|| workload.clone()),
            }),
        });
    }
}

/// The sequential dirty loop: re-select dirty rows, block-copy runs of
/// clean rows from the previous selection (a clean subscriber always has
/// a previous row — dirty tracking marks everyone past the old
/// subscriber count). Also the debug-build oracle the sharded repair is
/// asserted against.
fn reselect_dirty_sequential(
    view: WorkloadView<'_>,
    prev: &Selection,
    dirty: &[bool],
    tau: Rate,
    pairs_reused: &mut u64,
) -> Selection {
    let n = dirty.len();
    let mut builder = SelectionBuilder::with_capacity(n, prev.pair_count() as usize);
    let mut vi = 0usize;
    while vi < n {
        if dirty[vi] {
            let v = SubscriberId::new(vi as u32);
            builder.push_row_with(|row| select_for_subscriber_into(view, v, tau, row));
            vi += 1;
        } else {
            let run_end = dirty[vi..].iter().position(|&d| d).map_or(n, |p| vi + p);
            *pairs_reused += builder.push_rows_from(prev, vi..run_end);
            vi = run_end;
        }
    }
    builder.build()
}

/// Shard-parallel epoch repair (Stage 1): partition the dirty set, run
/// per-shard greedy re-selection on scoped worker threads, then merge
/// the shard rows with the reused clean rows into one selection.
///
/// The merge mirrors [`ShardedSolver`]'s: a size pass writes every row's
/// length at the slot its subscriber id dictates, a prefix sum turns
/// lengths into offsets, and a scatter pass copies each shard row (and
/// each clean run, as one block) into place. Every row lands at a
/// position determined only by subscriber id, so the merged selection is
/// bit-identical to the sequential repair no matter how the partitioner
/// split the dirty set. Returns the selection and the reused pair count.
fn reselect_dirty_sharded(
    workload: &Workload,
    prev: &Selection,
    dirty: &[bool],
    tau: Rate,
    repair: ShardingConfig,
) -> (Selection, u64) {
    let n = dirty.len();
    let view = workload.view();
    let dirty_subs: Vec<SubscriberId> = dirty
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d)
        .map(|(vi, _)| SubscriberId::new(vi as u32))
        .collect();
    let partition =
        partition_subscriber_set(workload, &dirty_subs, repair.shards, repair.partitioner);
    let shard_rows: Vec<Selection> = run_shards(&partition, repair.workers(), |members| {
        let mut local = SelectionBuilder::with_capacity(members.len(), 0);
        for &v in members {
            local.push_row_with(|row| select_for_subscriber_into(view, v, tau, row));
        }
        Ok(local.build())
    })
    .expect("per-shard re-selection is infallible");

    // Size pass: dirty rows from their shard, clean rows from `prev`.
    let mut offsets = vec![0usize; n + 1];
    for (members, rows) in partition.iter().zip(&shard_rows) {
        for (local, &v) in members.iter().enumerate() {
            offsets[v.index() + 1] = rows.selected(SubscriberId::new(local as u32)).len();
        }
    }
    let mut pairs_reused = 0u64;
    for (vi, &is_dirty) in dirty.iter().enumerate() {
        if !is_dirty {
            let len = prev.selected(SubscriberId::new(vi as u32)).len();
            offsets[vi + 1] = len;
            pairs_reused += len as u64;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    // Scatter pass: shard rows row-by-row, clean runs block-by-block.
    let mut topics = vec![TopicId::new(0); offsets[n]];
    for (members, rows) in partition.iter().zip(&shard_rows) {
        for (local, &v) in members.iter().enumerate() {
            let row = rows.selected(SubscriberId::new(local as u32));
            topics[offsets[v.index()]..offsets[v.index()] + row.len()].copy_from_slice(row);
        }
    }
    let mut vi = 0usize;
    while vi < n {
        if dirty[vi] {
            vi += 1;
            continue;
        }
        let run_end = dirty[vi..].iter().position(|&d| d).map_or(n, |p| vi + p);
        let block = prev.rows_block(vi..run_end);
        topics[offsets[vi]..offsets[vi] + block.len()].copy_from_slice(block);
        vi = run_end;
    }
    (Selection::from_csr(offsets, topics), pairs_reused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DriftModel;
    use cloud_cost::{LinearCostModel, Money};
    use pubsub_model::{Rate, Workload};

    fn cost() -> LinearCostModel {
        LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1))
    }

    fn base_workload() -> Workload {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [30u64, 18, 12, 9, 6, 4]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1], ts[2]]).unwrap();
        b.add_subscriber([ts[1], ts[3], ts[4]]).unwrap();
        b.add_subscriber([ts[2], ts[4], ts[5]]).unwrap();
        b.add_subscriber([ts[0], ts[5]]).unwrap();
        b.build()
    }

    fn instance(w: Workload) -> McssInstance {
        McssInstance::new(w, Rate::new(20), Bandwidth::new(120)).unwrap()
    }

    #[test]
    fn first_step_is_full_solve() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        let out = inc.step(&inst, &cost()).unwrap();
        assert!(out.full_resolve);
        assert_eq!(out.pairs_placed, out.allocation.pair_count());
        assert_eq!(out.pairs_reused, 0);
        out.allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn unchanged_workload_moves_nothing_and_reuses_every_row() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        let first = inc.step(&inst, &cost()).unwrap();
        let second = inc.step(&inst, &cost()).unwrap();
        assert!(!second.full_resolve);
        assert_eq!(second.pairs_placed, 0);
        assert_eq!(second.pairs_removed, 0);
        assert_eq!(second.pairs_evicted, 0);
        assert_eq!(second.pairs_reused, first.selection.pair_count());
        assert_eq!(second.selection, first.selection);
        assert_eq!(
            second.allocation.pair_count(),
            first.allocation.pair_count()
        );
        second
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn drifted_workload_stays_valid_across_epochs() {
        // Seed pinned so eight epochs of drift keep every topic feasible
        // for capacity 120 under the workspace RNG's stream.
        let drift = DriftModel {
            rate_sigma: 0.4,
            churn_prob: 0.5,
            seed: 7,
        };
        let mut inc = IncrementalReallocator::default();
        let mut w = base_workload();
        for epoch in 0..8 {
            let inst = instance(w.clone());
            let out = inc.step(&inst, &cost()).unwrap();
            out.allocation
                .validate(inst.workload(), inst.tau())
                .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
            w = drift.evolve(&w, epoch);
        }
    }

    #[test]
    fn sharded_repair_matches_sequential_across_epochs() {
        // Parallel epoch repair must be bit-identical to the sequential
        // dirty loop every epoch (the step itself also asserts this in
        // debug builds), for both partitioners and shard counts that
        // exceed the dirty set.
        for sharding in [
            crate::ShardingConfig::new(2),
            crate::ShardingConfig::new(7)
                .with_partitioner(crate::PartitionerKind::Hash { seed: 11 }),
        ] {
            let drift = DriftModel {
                rate_sigma: 0.0, // rate drift could outgrow the fixed capacity
                churn_prob: 0.5,
                seed: 29,
            };
            let mut seq = IncrementalReallocator::default();
            let mut par = IncrementalReallocator::new(IncrementalConfig {
                repair: Some(sharding),
                ..IncrementalConfig::default()
            });
            let mut w = base_workload();
            for epoch in 0..6 {
                let inst = instance(w.clone());
                let s = seq.step(&inst, &cost()).unwrap();
                let p = par.step(&inst, &cost()).unwrap();
                assert_eq!(p.selection, s.selection, "epoch {epoch} diverged");
                assert_eq!(p.pairs_reused, s.pairs_reused, "epoch {epoch}");
                assert_eq!(p.pairs_placed, s.pairs_placed, "epoch {epoch}");
                p.allocation.validate(inst.workload(), inst.tau()).unwrap();
                w = drift.evolve(&w, epoch);
            }
        }
    }

    #[test]
    fn with_repair_threads_maps_thread_counts_to_configs() {
        assert!(IncrementalConfig::default()
            .with_repair_threads(1)
            .repair
            .is_none());
        let cfg = IncrementalConfig::default().with_repair_threads(4);
        assert_eq!(cfg.repair.map(|r| r.shards), Some(4));
    }

    #[test]
    fn dirty_path_matches_full_reselect_bitwise() {
        // The headline O(Δ) guarantee: with dirty tracking on, the
        // selection each epoch must be bit-identical to re-running GSP
        // over everyone, whether the delta is scanned or caller-provided.
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.4,
            seed: 13,
        };
        let mut scanned = IncrementalReallocator::default();
        let mut delta_fed = IncrementalReallocator::default();
        let mut full = IncrementalReallocator::new(IncrementalConfig {
            dirty_tracking: false,
            ..IncrementalConfig::default()
        });
        let mut w = base_workload();
        let mut delta = WorkloadDelta::default();
        for epoch in 0..6 {
            let inst = instance(w.clone());
            let fresh = GreedySelectPairs::new().select(&inst).unwrap();
            let a = scanned.step(&inst, &cost()).unwrap();
            let b = delta_fed.step_with_delta(&inst, &cost(), &delta).unwrap();
            let c = full.step(&inst, &cost()).unwrap();
            assert_eq!(a.selection, fresh, "scanned diverged at epoch {epoch}");
            assert_eq!(b.selection, fresh, "delta-fed diverged at epoch {epoch}");
            assert_eq!(c.selection, fresh, "full diverged at epoch {epoch}");
            assert_eq!(c.pairs_reused, 0, "full re-select must reuse nothing");
            for out in [&a, &b, &c] {
                out.allocation
                    .validate(inst.workload(), inst.tau())
                    .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
            }
            (w, delta) = drift.evolve_tracked(&w, epoch);
        }
    }

    #[test]
    fn duplicate_delta_topics_rebase_counters_once() {
        // WorkloadDelta allows over-approximation and repeats; a repeated
        // topic must not re-base the ledger's used counters twice
        // (validate cross-checks recorded vs recomputed bandwidth).
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        inc.step(&inst, &cost()).unwrap();

        let mut rates: Vec<Rate> = inst.workload().rates().to_vec();
        rates[1] = Rate::new(5); // 18 → 5, a decrease
        let interests = inst
            .workload()
            .subscribers()
            .map(|v| inst.workload().interests(v).to_vec())
            .collect();
        let inst2 = instance(Workload::from_parts(rates, interests));
        let delta = WorkloadDelta {
            changed_topics: vec![TopicId::new(1), TopicId::new(1), TopicId::new(1)],
            changed_subscribers: vec![SubscriberId::new(0), SubscriberId::new(0)],
        };
        let out = inc.step_with_delta(&inst2, &cost(), &delta).unwrap();
        out.allocation
            .validate(inst2.workload(), inst2.tau())
            .unwrap();
    }

    #[test]
    fn rate_spike_triggers_eviction_not_violation() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        inc.step(&inst, &cost()).unwrap();

        // Same interests, but topic 0's rate triples: VMs hosting it may
        // overflow and must shed load.
        let mut rates: Vec<Rate> = inst.workload().rates().to_vec();
        rates[0] = Rate::new(55);
        let interests = inst
            .workload()
            .subscribers()
            .map(|v| inst.workload().interests(v).to_vec())
            .collect();
        let spiked = Workload::from_parts(rates, interests);
        let inst2 = instance(spiked);
        let out = inc.step(&inst2, &cost()).unwrap();
        out.allocation
            .validate(inst2.workload(), inst2.tau())
            .unwrap();
        for vm in out.allocation.vms() {
            assert!(vm.used() <= inst2.capacity());
        }
    }

    #[test]
    fn sharded_full_resolve_matches_invariants() {
        // With sharding configured, the first epoch and later repairs
        // must still produce valid allocations.
        let mut inc = IncrementalReallocator::new(IncrementalConfig {
            sharding: Some(crate::ShardingConfig::new(2)),
            ..IncrementalConfig::default()
        });
        let inst = instance(base_workload());
        let first = inc.step(&inst, &cost()).unwrap();
        assert!(first.full_resolve);
        first
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
        let second = inc.step(&inst, &cost()).unwrap();
        assert!(!second.full_resolve);
        assert_eq!(second.pairs_placed, 0);
        second
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn collapse_triggers_full_resolve() {
        // Epoch 1: rich workload. Epoch 2: almost everything unsubscribes
        // (interests shrink), utilization collapses, expect a re-solve.
        let mut inc = IncrementalReallocator::new(IncrementalConfig {
            compaction_threshold: 0.6,
            ..IncrementalConfig::default()
        });
        let inst = instance(base_workload());
        inc.step(&inst, &cost()).unwrap();

        let w = inst.workload();
        let rates: Vec<Rate> = w.rates().to_vec();
        let mut interests: Vec<Vec<TopicId>> =
            w.subscribers().map(|v| w.interests(v).to_vec()).collect();
        for tv in interests.iter_mut().skip(1) {
            tv.clear(); // only subscriber 0 remains interested
        }
        let shrunk = Workload::from_parts(rates, interests);
        let inst2 = instance(shrunk);
        let out = inc.step(&inst2, &cost()).unwrap();
        assert!(out.pairs_removed > 0);
        assert!(
            out.full_resolve,
            "utilization collapse should force a re-solve"
        );
        out.allocation
            .validate(inst2.workload(), inst2.tau())
            .unwrap();
    }

    #[test]
    fn workload_shrinking_below_previous_subscriber_count() {
        // The edge the diff loop indexes around: epoch 2's workload has
        // fewer subscribers than epoch 1's selection covers. The vanished
        // subscribers' pairs must be removed, the survivors repaired.
        let mut inc = IncrementalReallocator::default();
        let w = base_workload();
        let inst = instance(w.clone());
        let first = inc.step(&inst, &cost()).unwrap();

        let rates: Vec<Rate> = w.rates().to_vec();
        let interests: Vec<Vec<TopicId>> = w
            .subscribers()
            .take(2)
            .map(|v| w.interests(v).to_vec())
            .collect();
        let shrunk = Workload::from_parts(rates, interests);
        let inst2 = instance(shrunk);
        let out = inc.step(&inst2, &cost()).unwrap();
        assert_eq!(out.selection.num_subscribers(), 2);
        assert!(out.pairs_removed > 0);
        assert_eq!(
            out.selection.pair_count() + out.pairs_removed,
            first.selection.pair_count(),
            "removals must account exactly for the lost subscribers' rows"
        );
        out.allocation
            .validate(inst2.workload(), inst2.tau())
            .unwrap();

        // And a third epoch on the shrunk workload is steady-state.
        let third = inc.step(&inst2, &cost()).unwrap();
        assert_eq!(third.pairs_placed, 0);
        assert_eq!(third.pairs_removed, 0);
    }

    #[test]
    fn mass_unsubscribe_removes_ten_thousand_pairs() {
        // The pre-ledger removal path was O(|subs|·|gone|); this case —
        // 10k pairs leaving in one epoch — must both stay correct and
        // come back in sane time via the reverse-index removal.
        let topics = 50u32;
        let subscribers = 5_000u32;
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = (0..topics)
            .map(|i| b.add_topic(Rate::new(1 + (i as u64 % 7))).unwrap())
            .collect();
        for vi in 0..subscribers {
            let a = ts[(vi % topics) as usize];
            let bb = ts[((vi + 1) % topics) as usize];
            b.add_subscriber(if a < bb { [a, bb] } else { [bb, a] })
                .unwrap();
        }
        let w = b.build();
        let mk =
            |w: Workload| McssInstance::new(w, Rate::new(100), Bandwidth::new(10_000)).unwrap();
        let inst = mk(w.clone());
        let mut inc = IncrementalReallocator::default();
        let first = inc.step(&inst, &cost()).unwrap();
        assert_eq!(first.allocation.pair_count(), 2 * subscribers as u64);

        // Everyone but the first 100 subscribers drops both interests.
        let rates: Vec<Rate> = w.rates().to_vec();
        let interests: Vec<Vec<TopicId>> = w
            .subscribers()
            .map(|v| {
                if v.index() < 100 {
                    w.interests(v).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let shrunk = mk(Workload::from_parts(rates, interests));
        let out = inc.step(&shrunk, &cost()).unwrap();
        assert_eq!(out.pairs_removed, 2 * (subscribers as u64 - 100));
        assert!(out.pairs_removed >= 9_800);
        out.allocation
            .validate(shrunk.workload(), shrunk.tau())
            .unwrap();
        assert_eq!(out.allocation.pair_count(), 200);
    }

    #[test]
    fn incremental_cost_stays_close_to_full_resolve() {
        // After several drift epochs, the repaired allocation should not
        // cost wildly more than a from-scratch solve (placement debt is
        // bounded by the compaction rule).
        let drift = DriftModel {
            rate_sigma: 0.2,
            churn_prob: 0.2,
            seed: 5,
        };
        let mut inc = IncrementalReallocator::default();
        let mut w = base_workload();
        let mut last: Option<(Money, Money)> = None;
        for epoch in 0..6 {
            let inst = instance(w.clone());
            let out = inc.step(&inst, &cost()).unwrap();
            let fresh = crate::Solver::default().solve(&inst, &cost()).unwrap();
            last = Some((out.allocation.cost(&cost()), fresh.report.total_cost));
            w = drift.evolve(&w, epoch);
        }
        let (incremental, fresh) = last.expect("ran epochs");
        assert!(
            incremental.micros() <= fresh.micros() * 2,
            "incremental {incremental} vs fresh {fresh}"
        );
    }

    #[test]
    fn mixed_fleet_repair_keeps_selections_bit_identical_and_fleets_valid() {
        use cloud_cost::{Ec2CostModel, FleetCostModel, InstanceType};
        // The acceptance invariant for `mcss reprovision` on a mixed
        // fleet: Stage-1 selections are bit-identical to the homogeneous
        // run every epoch, and every repaired VM respects its own tier.
        let fleet = FleetCostModel::new(vec![
            Ec2CostModel::paper_default(InstanceType::new("tiny", 150_000, 64))
                .with_capacity_events(120),
            Ec2CostModel::paper_default(InstanceType::new("big", 290_000, 128))
                .with_capacity_events(240),
        ]);
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.4,
            seed: 13,
        };
        let mut mixed = IncrementalReallocator::default().with_fleet(fleet.clone());
        let mut homog = IncrementalReallocator::default();
        let mut w = base_workload();
        for epoch in 0..6 {
            let mixed_inst =
                McssInstance::new(w.clone(), Rate::new(20), fleet.max_capacity()).unwrap();
            let homog_inst =
                McssInstance::new(w.clone(), Rate::new(20), Bandwidth::new(120)).unwrap();
            let m = mixed.step(&mixed_inst, &cost()).unwrap();
            let h = homog.step(&homog_inst, &cost()).unwrap();
            assert_eq!(
                m.selection, h.selection,
                "mixed fleet changed the selection at epoch {epoch}"
            );
            m.allocation
                .validate(mixed_inst.workload(), mixed_inst.tau())
                .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
            let typing = m.allocation.typing().expect("mixed epochs stay typed");
            for (i, vm) in m.allocation.vms().iter().enumerate() {
                assert!(vm.used() <= typing.tier_of(i).1, "epoch {epoch}, vm {i}");
            }
            w = drift.evolve(&w, epoch);
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Snapshot after epoch k, restore into a fresh re-allocator, and
        // the next delta-fed epoch must match the uninterrupted run
        // exactly — selection and allocation both.
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.4,
            seed: 21,
        };
        let mut live = IncrementalReallocator::default();
        let mut w = base_workload();
        let mut delta = WorkloadDelta::default();
        for epoch in 0..3 {
            let inst = instance(w.clone());
            live.step_with_delta(&inst, &cost(), &delta).unwrap();
            if epoch < 2 {
                (w, delta) = drift.evolve_tracked(&w, epoch);
            }
        }

        // `w` is the workload the checkpoint was taken against, so its
        // rates are what the ledger's counters are denominated in.
        let mut restored = IncrementalReallocator::default();
        {
            let (selection, ledger, capacity) = live.checkpoint().expect("stepped");
            restored.restore(
                selection.clone(),
                crate::FleetLedger::from_slots(ledger.snapshot_slots()),
                capacity,
                w.rates().to_vec(),
                Rate::new(20),
            );
        }

        let (next, delta) = drift.evolve_tracked(&w, 2);
        let inst = instance(next);
        let a = live.step_with_delta(&inst, &cost(), &delta).unwrap();
        let b = restored.step_with_delta(&inst, &cost(), &delta).unwrap();
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.pairs_reused, b.pairs_reused);
    }

    #[test]
    fn adopt_replaces_exactly_the_missing_pairs() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        let deployed = inc.step(&inst, &cost()).unwrap();
        assert!(deployed.allocation.vm_count() >= 1);

        // Drop the first VM (simulated failure) and adopt the remains.
        let degraded = crate::Allocation::from_groups(
            deployed.allocation.vms()[1..]
                .iter()
                .map(|vm| {
                    vm.placements()
                        .iter()
                        .map(|p| (p.topic, p.subscribers.clone()))
                        .collect()
                })
                .collect(),
            inst.workload(),
            inst.capacity(),
        );
        let lost = deployed.allocation.pair_count() - degraded.pair_count();
        inc.adopt(&deployed.selection, &degraded);
        let repaired = inc.step(&inst, &cost()).unwrap();
        assert_eq!(
            repaired.pairs_placed, lost,
            "repair must re-place the lost pairs"
        );
        repaired
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn drained_failure_repair_matches_fresh_solve_satisfaction() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        let first = inc.step(&inst, &cost()).unwrap();
        let baseline = first.allocation.delivered_rates(inst.workload());

        let mut last = inc
            .repair_failures(&inst, &[0], SlaBudget::pairs(2))
            .unwrap();
        assert_eq!(last.vms_failed, 1);
        assert!(last.invalid_slots.is_empty());
        assert!(last.pairs_orphaned > 0);
        let mut rounds = 0;
        loop {
            assert!(last.pairs_replaced <= 2, "budget exceeded");
            if last.drained {
                break;
            }
            assert!(last.pairs_deferred > 0);
            last = inc
                .repair_failures(&inst, &[], SlaBudget::pairs(2))
                .unwrap();
            rounds += 1;
            assert!(rounds < 64, "repair failed to drain");
        }
        assert_eq!(inc.pending_repair_pairs(), 0);
        assert!(last.starved.is_empty());
        assert_eq!(last.shortfall, 0);
        assert_eq!(
            last.allocation.delivered_rates(inst.workload()),
            baseline,
            "drained repair must restore satisfaction bit-identically"
        );
        last.allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn exhausted_budget_defers_and_survives_epoch_steps() {
        // compaction_threshold 0 keeps the interleaved step incremental
        // even though the fleet loss tanks utilization.
        let mut inc = IncrementalReallocator::new(IncrementalConfig {
            compaction_threshold: 0.0,
            ..IncrementalConfig::default()
        });
        let inst = instance(base_workload());
        let first = inc.step(&inst, &cost()).unwrap();
        let baseline = first.allocation.delivered_rates(inst.workload());
        let vm_count = first.allocation.vm_count();

        // Kill the whole fleet; a one-pair budget must queue the rest
        // and report the degradation.
        let all: Vec<usize> = (0..vm_count).collect();
        let rep = inc
            .repair_failures(&inst, &all, SlaBudget::pairs(1))
            .unwrap();
        assert_eq!(rep.vms_failed, vm_count);
        assert_eq!(rep.pairs_replaced, 1);
        assert_eq!(rep.pairs_deferred, rep.pairs_orphaned - 1);
        assert!(!rep.drained);
        assert!(!rep.starved.is_empty());
        assert!(rep.shortfall > 0);

        // An ordinary epoch on the same workload neither loses nor
        // places the deferred pairs.
        let queued = inc.pending_repair_pairs();
        let mid = inc.step(&inst, &cost()).unwrap();
        assert!(!mid.full_resolve);
        assert_eq!(mid.pairs_placed, 0);
        assert_eq!(inc.pending_repair_pairs(), queued);

        let mut last = rep;
        while !last.drained {
            last = inc
                .repair_failures(&inst, &[], SlaBudget::pairs(1))
                .unwrap();
            assert!(last.pairs_replaced <= 1);
        }
        assert_eq!(last.allocation.delivered_rates(inst.workload()), baseline);
        last.allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
    }

    #[test]
    fn recover_slot_rejoins_the_reuse_pool_once() {
        let mut inc = IncrementalReallocator::default();
        let inst = instance(base_workload());
        inc.step(&inst, &cost()).unwrap();
        let rep = inc
            .repair_failures(&inst, &[0], SlaBudget::UNBOUNDED)
            .unwrap();
        assert!(rep.drained);
        assert!(inc.recover_slot(0));
        assert!(!inc.recover_slot(0), "recovery is one-shot");
        assert!(!inc.recover_slot(999));
    }

    #[test]
    fn restore_rebuilds_the_carry_over_queue() {
        // A crash between budgeted repair rounds must not lose the queue:
        // restore() re-derives it as selection-minus-ledger.
        let mut live = IncrementalReallocator::default();
        let inst = instance(base_workload());
        live.step(&inst, &cost()).unwrap();
        live.repair_failures(&inst, &[0], SlaBudget::pairs(1))
            .unwrap();
        let queued = live.pending_repair_pairs();
        assert!(queued > 0, "slot 0 should host more than one pair");

        let mut restored = IncrementalReallocator::default();
        {
            let (selection, ledger, capacity) = live.checkpoint().unwrap();
            restored.restore(
                selection.clone(),
                crate::FleetLedger::from_slots(ledger.snapshot_slots()),
                capacity,
                inst.workload().rates().to_vec(),
                Rate::new(20),
            );
        }
        assert_eq!(restored.pending_repair_pairs(), queued);
        let a = live
            .repair_failures(&inst, &[], SlaBudget::UNBOUNDED)
            .unwrap();
        let b = restored
            .repair_failures(&inst, &[], SlaBudget::UNBOUNDED)
            .unwrap();
        assert!(a.drained && b.drained);
        assert_eq!(a.allocation, b.allocation);
    }
}
