//! Capacity planning for a Spotify-like feed: which instance type and
//! threshold is cheapest for the workload?
//!
//! Mirrors the paper's §IV framing: generate a Spotify-shaped trace, sweep
//! τ ∈ {10, 100, 1000} over c3.large and c3.xlarge, and print the cost
//! table a deployment engineer would use. Scaled to paper magnitudes via
//! the volume-scale mechanism described in DESIGN.md §3.
//!
//! Run with: `cargo run --release --example spotify_capacity_planning`

use mcss::prelude::*;
use mcss::traces::SpotifyLike;

/// The paper's Spotify trace has 4.9 M subscribers; we generate a scaled
/// sample and let the cost model compensate.
const PAPER_SUBSCRIBERS: u64 = 4_900_000;
const SYNTH_SUBSCRIBERS: usize = 60_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating Spotify-like trace ({SYNTH_SUBSCRIBERS} subscribers)...");
    let workload = SpotifyLike::new(SYNTH_SUBSCRIBERS, 20140415).generate();
    println!("{}\n", workload.stats());

    println!(
        "{:<10} {:>6} {:>8} {:>14} {:>14} {:>14}",
        "instance", "tau", "VMs", "bandwidth GB", "total cost", "LB cost"
    );
    let mut best: Option<(String, u64, Money)> = None;
    for instance_type in [
        cloud_cost::instances::C3_LARGE,
        cloud_cost::instances::C3_XLARGE,
    ] {
        // `paper_effective` uses the per-VM event budget implied by the
        // paper's reported VM counts (see DESIGN.md §3), scaled to our
        // synthetic size so fleet sizes match the paper's figures.
        let cost = Ec2CostModel::paper_effective(instance_type)
            .with_volume_scale(SYNTH_SUBSCRIBERS as u64, PAPER_SUBSCRIBERS);
        for tau in [10u64, 100, 1000] {
            let inst = McssInstance::new(workload.clone(), Rate::new(tau), cost.capacity())?;
            let outcome = Solver::default().solve(&inst, &cost)?;
            outcome.allocation.validate(inst.workload(), inst.tau())?;
            println!(
                "{:<10} {:>6} {:>8} {:>14.1} {:>14} {:>14}",
                instance_type.name(),
                tau,
                outcome.report.vm_count,
                cost.volume_to_gb(outcome.report.total_bandwidth),
                outcome.report.total_cost.to_string(),
                outcome.report.lower_bound_cost.to_string(),
            );
            let key = (
                instance_type.name().to_string(),
                tau,
                outcome.report.total_cost,
            );
            if best.as_ref().is_none_or(|(_, _, c)| key.2 < *c) {
                best = Some(key);
            }
        }
    }
    let (name, tau, cost) = best.expect("sweep is non-empty");
    println!("\ncheapest configuration: {name} at τ={tau} → {cost} for the 10-day window");
    println!("(costs are extrapolated to the paper's 4.9M-subscriber scale)");
    Ok(())
}
