//! Cross-crate exercises for the §VI extensions: incremental repair over
//! drifting generated traces, failure injection on solved deployments,
//! and the IP export on real instances.

use mcss::prelude::*;
use mcss::sim::failure::{fail_vms, fragility_profile};
use mcss::solver::dynamic::DriftModel;
use mcss::solver::ilp::{export_lp, IlpOptions};
use mcss::solver::incremental::{IncrementalConfig, IncrementalReallocator};
use mcss_bench::scenario::Scenario;

#[test]
fn incremental_tracks_a_drifting_spotify_trace() {
    let s = Scenario::spotify(2_000, 41);
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    let drift = DriftModel {
        rate_sigma: 0.15,
        churn_prob: 0.1,
        seed: 8,
    };
    let mut inc = IncrementalReallocator::new(IncrementalConfig::default());

    let mut workload = (*s.workload).clone();
    let mut total_churn = 0u64;
    for epoch in 0..5 {
        let inst = McssInstance::new(workload.clone(), Rate::new(100), cost.capacity()).unwrap();
        let out = inc.step(&inst, &cost).unwrap();
        out.allocation
            .validate(inst.workload(), inst.tau())
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
        if epoch > 0 && !out.full_resolve {
            // Churn must stay a fraction of the full placement.
            assert!(
                out.pairs_placed < out.allocation.pair_count(),
                "epoch {epoch} re-placed everything"
            );
            total_churn += out.pairs_placed;
        }
        workload = drift.evolve(&workload, epoch);
    }
    // Mild drift should not force anywhere near full re-placement.
    assert!(total_churn > 0, "drift produced no churn at all");
}

#[test]
fn fragile_vms_exist_and_failures_account_exactly() {
    let s = Scenario::twitter(1_500, 42);
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    let inst = s.instance(50, cloud_cost::instances::C3_LARGE).unwrap();
    let alloc = Solver::default().solve(&inst, &cost).unwrap().allocation;
    assert!(alloc.vm_count() >= 2, "need a fleet to kill parts of");

    let profile = fragility_profile(&inst, &alloc);
    assert_eq!(profile.len(), alloc.vm_count());
    assert!(
        profile.iter().any(|&s| s > 0),
        "no VM failure starves anyone?"
    );

    let impact = fail_vms(&inst, &alloc, &[0, 1]);
    assert_eq!(
        impact.pairs_lost + impact.degraded.pair_count(),
        alloc.pair_count(),
        "pair accounting must be exact"
    );
    assert!(!impact.starved.is_empty());
    // Repair restores satisfaction.
    let repaired = Solver::default().solve(&inst, &cost).unwrap().allocation;
    assert!(repaired.validate(inst.workload(), inst.tau()).is_ok());
}

#[test]
fn ilp_export_scales_with_instance() {
    let s = Scenario::spotify(60, 43);
    let inst = s.instance(50, cloud_cost::instances::C3_LARGE).unwrap();
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    let heuristic_vms = Solver::default()
        .solve(&inst, &cost)
        .unwrap()
        .report
        .vm_count
        .max(1);
    let lp = export_lp(
        &inst,
        &cost,
        IlpOptions {
            max_vms: heuristic_vms,
        },
    );
    // One capacity row per candidate VM, one satisfaction row per
    // subscriber with τ_v > 0.
    assert_eq!(lp.matches("cap_").count(), heuristic_vms);
    let sat_rows = lp.matches(" sat_").count();
    assert!(sat_rows > 0 && sat_rows <= inst.workload().num_subscribers());
    assert!(lp.ends_with("End\n"));
}

#[test]
fn reserved_pricing_changes_the_vm_bandwidth_tradeoff() {
    use cloud_cost::ReservedCostModel;
    let s = Scenario::spotify(2_000, 44);
    let on_demand = s.cost_model(cloud_cost::instances::C3_LARGE);
    let reserved = ReservedCostModel::new(on_demand.clone(), Money::from_dollars(5), 0.5);
    let inst = s.instance(100, cloud_cost::instances::C3_LARGE).unwrap();
    let od = Solver::default().solve(&inst, &on_demand).unwrap();
    let rs = Solver::default().solve(&inst, &reserved).unwrap();
    // Same capacity, so the packing constraints are identical; costs and
    // potentially decisions differ.
    od.allocation.validate(inst.workload(), inst.tau()).unwrap();
    rs.allocation.validate(inst.workload(), inst.tau()).unwrap();
    // With a 50% rental discount the reserved bill per VM is lower here
    // ($5 + $18 < $36), so the reserved total must come in below.
    assert!(rs.report.total_cost < od.report.total_cost);
}
