//! Per-subscriber optimal pair selection via covering-knapsack DP.
//!
//! §III-A notes that each subscriber's sub-problem "is basically a variant
//! of the knapsack problem that can be solved optimally using dynamic
//! programming", which the paper rejects at scale in favour of the greedy.
//! This module implements that optimum — selecting a subset of `T_v` whose
//! total rate reaches `τ_v` with minimum total rate (equivalently minimum
//! Stage-1 cost, which is `2×` the total) — so tests can sandwich the
//! greedy between the lower bound and the true Stage-1 optimum.

use super::PairSelector;
use crate::{McssError, Selection, SelectionBuilder};
use pubsub_model::{Rate, SubscriberId, TopicId, WorkloadView};

/// Exact Stage-1 selector (per-subscriber covering knapsack).
///
/// The DP table holds `τ_v` cells per subscriber; instances whose total
/// cell count exceeds [`OptimalSelectPairs::budget`] are rejected rather
/// than silently thrashing memory.
#[derive(Clone, Copy, Debug)]
pub struct OptimalSelectPairs {
    budget: u64,
}

impl OptimalSelectPairs {
    /// Default budget: 50 million DP cells (hundreds of MB at the worst).
    pub fn new() -> Self {
        OptimalSelectPairs { budget: 50_000_000 }
    }

    /// Sets an explicit DP cell budget.
    pub fn with_budget(budget: u64) -> Self {
        OptimalSelectPairs { budget }
    }

    /// The configured DP cell budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl Default for OptimalSelectPairs {
    fn default() -> Self {
        OptimalSelectPairs::new()
    }
}

impl PairSelector for OptimalSelectPairs {
    fn name(&self) -> &'static str {
        "OPT1"
    }

    fn select_view(&self, view: WorkloadView<'_>, tau: Rate) -> Result<Selection, McssError> {
        // Pre-flight the budget across all subscribers.
        let mut cells: u64 = 0;
        for v in view.subscribers() {
            let tau_v = view.tau_v(v, tau);
            cells = cells.saturating_add(tau_v.get());
            if cells > self.budget {
                return Err(McssError::TooLargeForOptimalSelection {
                    cells,
                    budget: self.budget,
                });
            }
        }
        let mut builder = SelectionBuilder::with_capacity(view.num_subscribers(), 0);
        for v in view.subscribers() {
            builder.push_row(optimal_for_subscriber(view, v, tau));
        }
        Ok(builder.build())
    }
}

/// Covering knapsack for one subscriber: minimize the selected total rate
/// subject to `total ≥ τ_v`.
fn optimal_for_subscriber(view: WorkloadView<'_>, v: SubscriberId, tau: Rate) -> Vec<TopicId> {
    let interests = view.interests(v);
    if interests.is_empty() {
        return Vec::new();
    }
    let tau_v = view.tau_v(v, tau).get();
    let total = view.subscriber_total_rate(v).get();
    if total <= tau_v {
        return interests.to_vec();
    }
    let target = tau_v as usize;
    if target == 0 {
        return Vec::new();
    }

    // filler[s] = index into `interests` of the topic that last reached
    // partial sum s (< τ_v); usize::MAX = unreachable. Sum 0 is the seed.
    const UNREACHED: u32 = u32::MAX;
    let mut filler: Vec<u32> = vec![UNREACHED; target];
    let mut reachable: Vec<bool> = vec![false; target];
    reachable[0] = true;

    // Best completion: smallest total ≥ τ_v, as (total, topic idx, prev sum).
    let mut best: Option<(u64, usize, usize)> = None;

    for (i, &t) in interests.iter().enumerate() {
        let ev = view.rate(t).get();
        // Descending sums: classic 0/1 knapsack order.
        for s in (0..target).rev() {
            if !reachable[s] {
                continue;
            }
            let ns = s as u64 + ev;
            if ns >= tau_v {
                if best.is_none_or(|(b, _, _)| ns < b) {
                    best = Some((ns, i, s));
                }
            } else {
                let ns = ns as usize;
                if !reachable[ns] {
                    reachable[ns] = true;
                    filler[ns] = i as u32;
                }
            }
        }
    }

    let (_, last_topic, mut s) = best.expect("total > tau_v > 0 guarantees some completion exists");
    let mut chosen = vec![interests[last_topic]];
    while s > 0 {
        let i = filler[s] as usize;
        chosen.push(interests[i]);
        s -= view.rate(interests[i]).get() as usize;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::GreedySelectPairs;
    use crate::McssInstance;
    use pubsub_model::{Bandwidth, Workload};

    fn instance(rates: &[u64], interests: &[&[u32]], tau: u64) -> McssInstance {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(1 << 40)).unwrap()
    }

    #[test]
    fn finds_exact_cover_when_one_exists() {
        // τ = 12 from {9, 7, 5, 3}: optimum is {9, 3} or {7, 5} (total 12).
        let inst = instance(&[9, 7, 5, 3], &[&[0, 1, 2, 3]], 12);
        let s = OptimalSelectPairs::new().select(&inst).unwrap();
        assert_eq!(
            s.delivered_rate(inst.workload(), SubscriberId::new(0)),
            Rate::new(12)
        );
    }

    #[test]
    fn beats_greedy_where_greedy_overshoots() {
        // τ = 10 from {6, 5, 5}: greedy picks 6 then 5 (total 11);
        // optimum is {5, 5} (total 10).
        let inst = instance(&[6, 5, 5], &[&[0, 1, 2]], 10);
        let opt = OptimalSelectPairs::new().select(&inst).unwrap();
        let gsp = GreedySelectPairs::new().select(&inst).unwrap();
        let w = inst.workload();
        let v = SubscriberId::new(0);
        assert_eq!(opt.delivered_rate(w, v), Rate::new(10));
        assert_eq!(gsp.delivered_rate(w, v), Rate::new(11));
        assert!(opt.stage1_cost(w) < gsp.stage1_cost(w));
    }

    #[test]
    fn never_worse_than_greedy_exhaustively() {
        let alphabet = [2u64, 3, 5, 7, 11];
        for a in alphabet {
            for b in alphabet {
                for c in alphabet {
                    for tau in [1u64, 5, 9, 14, 20] {
                        let inst = instance(&[a, b, c], &[&[0, 1, 2]], tau);
                        let opt = OptimalSelectPairs::new().select(&inst).unwrap();
                        let gsp = GreedySelectPairs::new().select(&inst).unwrap();
                        let w = inst.workload();
                        assert!(opt.satisfies(w, inst.tau()), "({a},{b},{c}) τ={tau}");
                        assert!(
                            opt.stage1_cost(w) <= gsp.stage1_cost(w),
                            "opt worse than greedy on ({a},{b},{c}) τ={tau}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn selects_all_when_tau_dominates() {
        let inst = instance(&[4, 4], &[&[0, 1]], 100);
        let s = OptimalSelectPairs::new().select(&inst).unwrap();
        assert_eq!(s.selected(SubscriberId::new(0)).len(), 2);
    }

    #[test]
    fn budget_is_enforced() {
        let inst = instance(&[1_000_000], &[&[0]], 999_999);
        let err = OptimalSelectPairs::with_budget(10)
            .select(&inst)
            .unwrap_err();
        assert!(matches!(err, McssError::TooLargeForOptimalSelection { .. }));
        assert!(OptimalSelectPairs::new().budget() > 10);
    }

    #[test]
    fn empty_interest_subscribers_ok() {
        let mut b = pubsub_model::Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let inst = McssInstance::new(b.build(), Rate::new(3), Bandwidth::new(100)).unwrap();
        let s = OptimalSelectPairs::new().select(&inst).unwrap();
        assert_eq!(s.pair_count(), 0);
    }
}
