//! Mutable workload mirror: folds raw subscribe/unsubscribe/re-rate
//! operations into per-epoch [`Workload`]s plus exact change lists.
//!
//! The solver side of the repository consumes *immutable* workloads —
//! CSR arenas built once per epoch — while an event-sourced daemon
//! receives a stream of individual operations. [`WorkloadEdit`] bridges
//! the two: it keeps a cheap mutable mirror (a rate table plus sorted
//! per-subscriber interest rows), applies operations one at a time, and
//! on [`WorkloadEdit::commit`] emits the epoch's workload together with
//! the exact sets of changed topics and subscribers. Committing against
//! the previous epoch's workload goes through
//! [`Workload::from_parts_evolved`], so rows untouched this epoch copy
//! verbatim (ranked arenas included) and the build cost scales with the
//! epoch's churn, not the workload.

use crate::ids::{SubscriberId, TopicId};
use crate::units::{Rate, MAX_RATE};
use crate::workload::{Workload, WorkloadError};

/// Mutable mirror of a workload under an operation stream (module docs).
///
/// Operations validate eagerly — a rejected operation leaves the mirror
/// untouched — and changed topics/subscribers are tracked exactly: an
/// operation that turns out to be a no-op (re-rating a topic to its
/// current rate, subscribing twice) marks nothing.
///
/// ```
/// use pubsub_model::{Rate, SubscriberId, TopicId, WorkloadEdit};
///
/// # fn main() -> Result<(), pubsub_model::WorkloadError> {
/// let mut edit = WorkloadEdit::new();
/// edit.rerate(TopicId::new(0), Rate::new(20))?; // introduces topic 0
/// edit.subscribe(SubscriberId::new(0), TopicId::new(0))?;
/// let (w, topics, subs) = edit.commit(None);
/// assert_eq!(w.pair_count(), 1);
/// assert_eq!(topics, vec![TopicId::new(0)]);
/// assert_eq!(subs, vec![SubscriberId::new(0)]);
///
/// // The next epoch evolves from the last: clean rows copy verbatim.
/// edit.subscribe(SubscriberId::new(1), TopicId::new(0))?;
/// let (w2, _, subs) = edit.commit(Some(&w));
/// assert_eq!(w2.pair_count(), 2);
/// assert_eq!(subs, vec![SubscriberId::new(1)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkloadEdit {
    rates: Vec<Rate>,
    interests: Vec<Vec<TopicId>>,
    changed_topics: Vec<TopicId>,
    changed_subscribers: Vec<SubscriberId>,
}

impl WorkloadEdit {
    /// An empty mirror: no topics, no subscribers, nothing pending.
    pub fn new() -> WorkloadEdit {
        WorkloadEdit::default()
    }

    /// A mirror of an existing workload with no pending changes — the
    /// starting point when resuming from a snapshot.
    pub fn from_workload(workload: &Workload) -> WorkloadEdit {
        WorkloadEdit {
            rates: workload.rates().to_vec(),
            interests: workload
                .subscribers()
                .map(|v| workload.interests(v).to_vec())
                .collect(),
            changed_topics: Vec::new(),
            changed_subscribers: Vec::new(),
        }
    }

    /// Number of topics the mirror currently knows.
    pub fn num_topics(&self) -> usize {
        self.rates.len()
    }

    /// Number of subscribers the mirror currently knows.
    pub fn num_subscribers(&self) -> usize {
        self.interests.len()
    }

    /// Sets topic `t`'s event rate, introducing the topic when `t` is
    /// the next unused id. Re-rating to the current rate is a no-op and
    /// marks nothing.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::UnknownTopic`] if `t` would leave an id gap,
    /// [`WorkloadError::ZeroEventRate`] / [`WorkloadError::RateTooLarge`]
    /// for rates outside `1..=MAX_RATE` (§II-B assumes `ev_t > 0`).
    pub fn rerate(&mut self, t: TopicId, rate: Rate) -> Result<(), WorkloadError> {
        if rate.is_zero() {
            return Err(WorkloadError::ZeroEventRate);
        }
        if rate.get() > MAX_RATE {
            return Err(WorkloadError::RateTooLarge { rate });
        }
        let ti = t.index();
        if ti > self.rates.len() {
            // Topics are dense: the next topic must take the next id.
            return Err(WorkloadError::UnknownTopic {
                topic: t,
                num_topics: self.rates.len(),
            });
        }
        if ti == self.rates.len() {
            self.rates.push(rate);
            self.changed_topics.push(t);
        } else if self.rates[ti] != rate {
            self.rates[ti] = rate;
            self.changed_topics.push(t);
        }
        Ok(())
    }

    /// Adds the pair `(t, v)`, growing the subscriber table as needed
    /// (subscribers between the current count and `v` come into being
    /// with empty interest sets). Subscribing twice is a no-op.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::UnknownTopic`] if `t` has no rate yet — a topic
    /// is introduced by its first [`WorkloadEdit::rerate`].
    pub fn subscribe(&mut self, v: SubscriberId, t: TopicId) -> Result<(), WorkloadError> {
        if t.index() >= self.rates.len() {
            return Err(WorkloadError::UnknownTopic {
                topic: t,
                num_topics: self.rates.len(),
            });
        }
        if v.index() >= self.interests.len() {
            self.interests.resize_with(v.index() + 1, Vec::new);
        }
        let row = &mut self.interests[v.index()];
        if let Err(at) = row.binary_search(&t) {
            row.insert(at, t);
            self.changed_subscribers.push(v);
        }
        Ok(())
    }

    /// Removes the pair `(t, v)`. Unsubscribing from a topic the
    /// subscriber does not follow (or an unknown subscriber) is a no-op.
    pub fn unsubscribe(&mut self, v: SubscriberId, t: TopicId) {
        let Some(row) = self.interests.get_mut(v.index()) else {
            return;
        };
        if let Ok(at) = row.binary_search(&t) {
            row.remove(at);
            self.changed_subscribers.push(v);
        }
    }

    /// Number of topic/subscriber changes recorded since the last commit
    /// (`(changed topics, changed subscribers)`, before deduplication).
    pub fn pending_changes(&self) -> (usize, usize) {
        (self.changed_topics.len(), self.changed_subscribers.len())
    }

    /// Builds the epoch's workload and returns it with the deduplicated,
    /// ascending lists of changed topics and subscribers, clearing the
    /// pending-change state (the mirror itself is retained). With
    /// `prev = Some`, construction goes through
    /// [`Workload::from_parts_evolved`] so clean rows copy verbatim;
    /// either path yields bit-identical arenas for identical contents.
    pub fn commit(
        &mut self,
        prev: Option<&Workload>,
    ) -> (Workload, Vec<TopicId>, Vec<SubscriberId>) {
        let mut topics = std::mem::take(&mut self.changed_topics);
        topics.sort_unstable();
        topics.dedup();
        let mut subs = std::mem::take(&mut self.changed_subscribers);
        subs.sort_unstable();
        subs.dedup();
        let workload = match prev {
            Some(prev) => Workload::from_parts_evolved(
                prev,
                self.rates.clone(),
                self.interests.clone(),
                &subs,
            ),
            None => Workload::from_parts(self.rates.clone(), self.interests.clone()),
        };
        (workload, topics, subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TopicId {
        TopicId::new(i)
    }
    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    #[test]
    fn operations_fold_into_a_workload_with_exact_change_lists() {
        let mut edit = WorkloadEdit::new();
        edit.rerate(t(0), Rate::new(10)).unwrap();
        edit.rerate(t(1), Rate::new(5)).unwrap();
        edit.subscribe(v(0), t(0)).unwrap();
        edit.subscribe(v(0), t(1)).unwrap();
        edit.subscribe(v(1), t(1)).unwrap();
        let (w, topics, subs) = edit.commit(None);
        assert_eq!(w.num_topics(), 2);
        assert_eq!(w.pair_count(), 3);
        assert_eq!(topics, vec![t(0), t(1)]);
        assert_eq!(subs, vec![v(0), v(1)]);

        // No-ops mark nothing.
        edit.rerate(t(0), Rate::new(10)).unwrap();
        edit.subscribe(v(0), t(0)).unwrap();
        edit.unsubscribe(v(1), t(0));
        assert_eq!(edit.pending_changes(), (0, 0));

        edit.unsubscribe(v(0), t(1));
        edit.rerate(t(1), Rate::new(7)).unwrap();
        let (w2, topics, subs) = edit.commit(Some(&w));
        assert_eq!(w2.pair_count(), 2);
        assert_eq!(w2.rate(t(1)), Rate::new(7));
        assert_eq!(w2.interests(v(0)), &[t(0)]);
        assert_eq!(topics, vec![t(1)]);
        assert_eq!(subs, vec![v(0)]);
    }

    #[test]
    fn evolved_commit_matches_from_scratch_commit() {
        let mut a = WorkloadEdit::new();
        for i in 0..6u32 {
            a.rerate(t(i), Rate::new(3 + u64::from(i))).unwrap();
        }
        for vi in 0..10u32 {
            a.subscribe(v(vi), t(vi % 6)).unwrap();
            a.subscribe(v(vi), t((vi + 2) % 6)).unwrap();
        }
        let (w0, _, _) = a.commit(None);

        a.rerate(t(2), Rate::new(40)).unwrap();
        a.unsubscribe(v(3), t(3));
        a.subscribe(v(3), t(5)).unwrap();
        let mut b = a.clone();
        let (evolved, _, _) = a.commit(Some(&w0));
        let (scratch, _, _) = b.commit(None);
        assert_eq!(evolved.rates(), scratch.rates());
        for vi in evolved.subscribers() {
            assert_eq!(evolved.interests(vi), scratch.interests(vi));
            assert_eq!(evolved.ranked_interests(vi), scratch.ranked_interests(vi));
        }
    }

    #[test]
    fn rejected_operations_leave_the_mirror_untouched() {
        let mut edit = WorkloadEdit::new();
        assert!(matches!(
            edit.subscribe(v(0), t(0)),
            Err(WorkloadError::UnknownTopic { .. })
        ));
        assert!(matches!(
            edit.rerate(t(3), Rate::new(5)),
            Err(WorkloadError::UnknownTopic { .. })
        ));
        assert!(matches!(
            edit.rerate(t(0), Rate::ZERO),
            Err(WorkloadError::ZeroEventRate)
        ));
        assert!(matches!(
            edit.rerate(t(0), Rate::new(MAX_RATE + 1)),
            Err(WorkloadError::RateTooLarge { .. })
        ));
        assert_eq!(edit.num_topics(), 0);
        assert_eq!(edit.pending_changes(), (0, 0));
    }

    #[test]
    fn subscriber_gaps_come_into_being_empty() {
        let mut edit = WorkloadEdit::new();
        edit.rerate(t(0), Rate::new(8)).unwrap();
        edit.subscribe(v(4), t(0)).unwrap();
        let (w, _, subs) = edit.commit(None);
        assert_eq!(w.num_subscribers(), 5);
        assert_eq!(w.interests(v(0)), &[]);
        assert_eq!(w.interests(v(4)), &[t(0)]);
        assert_eq!(subs, vec![v(4)]);
    }

    #[test]
    fn from_workload_round_trips() {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(12)).unwrap();
        let t1 = b.add_topic(Rate::new(4)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t1]).unwrap();
        let w = b.build();

        let mut edit = WorkloadEdit::from_workload(&w);
        assert_eq!(edit.pending_changes(), (0, 0));
        let (rebuilt, topics, subs) = edit.commit(None);
        assert!(topics.is_empty() && subs.is_empty());
        assert_eq!(rebuilt.rates(), w.rates());
        for vi in w.subscribers() {
            assert_eq!(rebuilt.interests(vi), w.interests(vi));
        }
    }
}
