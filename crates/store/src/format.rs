//! The `MCSSTOR1` container: a single file holding named, checksummed,
//! page-aligned byte sections. Field-by-field layout in `docs/STORE.md`.
//!
//! The format is deliberately dumb: a 4096-byte header page (magic,
//! version, section table) followed by each section's raw payload at a
//! 4096-byte-aligned offset. Payloads are the in-memory arenas written
//! little-endian, so loading is one `read` plus a CRC sweep plus a
//! bounds-checked widening pass — no parsing, no per-row work.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// File magic: the first eight bytes of every store.
pub const MAGIC: &[u8; 8] = b"MCSSTOR1";

/// Current (and only) container version.
pub const VERSION: u32 = 1;

/// Section payloads start at offsets aligned to this many bytes; the
/// header occupies exactly one such page.
pub const PAGE: usize = 4096;

/// Bytes of the header page reserved before the section table.
const TABLE_START: usize = 32;

/// Bytes per section-table entry.
const ENTRY_BYTES: usize = 32;

/// Maximum sections a store can hold (the table must fit the header
/// page): `(4096 - 32) / 32 = 127`.
pub const MAX_SECTIONS: usize = (PAGE - TABLE_START) / ENTRY_BYTES;

/// Well-known section ids. Unknown ids are preserved and readable, so
/// future writers can add sections without breaking old readers.
pub mod section {
    /// Workload shape: `[num_topics, num_subscribers]` as u64s.
    pub const WORKLOAD_META: u32 = 0x01;
    /// Per-topic event rates `ev_t` (u64 each).
    pub const RATES: u32 = 0x02;
    /// Interest CSR offsets, `|V| + 1` u32s (shared with the ranked arena).
    pub const INTEREST_OFFSETS: u32 = 0x03;
    /// Flat interest arena `T_v` (u32 topic ids).
    pub const INTEREST_TOPICS: u32 = 0x04;
    /// Flat rate-ranked interest arena (u32 topic ids).
    pub const RANKED_TOPICS: u32 = 0x05;
    /// Follower CSR offsets, `|T| + 1` u32s.
    pub const FOLLOWER_OFFSETS: u32 = 0x06;
    /// Flat derived follower arena `V_t` (u32 subscriber ids).
    pub const FOLLOWER_IDS: u32 = 0x07;
    /// Stage-1 selection CSR offsets, `|V| + 1` u32s.
    pub const SELECTION_OFFSETS: u32 = 0x10;
    /// Flat selection arena (u32 topic ids).
    pub const SELECTION_TOPICS: u32 = 0x11;
    /// Fleet ledger slot table: `[cap, used, state, row_count]` per slot.
    pub const LEDGER_SLOTS: u32 = 0x20;
    /// One u32 topic id per ledger row, slots concatenated in order.
    pub const LEDGER_ROW_TOPICS: u32 = 0x21;
    /// Row offsets into the ledger subscriber arena, `rows + 1` u32s.
    pub const LEDGER_ROW_OFFSETS: u32 = 0x22;
    /// Flat ledger subscriber arena (u32 subscriber ids).
    pub const LEDGER_SUBSCRIBERS: u32 = 0x23;
    /// Serve-daemon snapshot metadata: `[last_seq, epochs_applied, tau,
    /// capacity]` as u64s.
    pub const SERVE_META: u32 = 0x30;
}

/// Human-readable name for a section id, used in diagnostics and the
/// `mcss analyze --store` breakdown. Unknown ids report as `"unknown"`.
pub fn section_name(id: u32) -> &'static str {
    match id {
        section::WORKLOAD_META => "workload-meta",
        section::RATES => "rates",
        section::INTEREST_OFFSETS => "interest-offsets",
        section::INTEREST_TOPICS => "interest-topics",
        section::RANKED_TOPICS => "ranked-topics",
        section::FOLLOWER_OFFSETS => "follower-offsets",
        section::FOLLOWER_IDS => "follower-ids",
        section::SELECTION_OFFSETS => "selection-offsets",
        section::SELECTION_TOPICS => "selection-topics",
        section::LEDGER_SLOTS => "ledger-slots",
        section::LEDGER_ROW_TOPICS => "ledger-row-topics",
        section::LEDGER_ROW_OFFSETS => "ledger-row-offsets",
        section::LEDGER_SUBSCRIBERS => "ledger-subscribers",
        section::SERVE_META => "serve-meta",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

/// Sixteen derived tables for slicing-by-16: `CRC_TABLES[k][b]` is the
/// CRC of byte `b` followed by `k` zero bytes, so sixteen independent
/// lookups fold sixteen input bytes per iteration. `CRC_TABLES[0]` is
/// the classic byte-at-a-time table.
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut c = tables[0][i];
        let mut k = 1;
        while k < 16 {
            c = tables[0][(c & 0xFF) as usize] ^ (c >> 8);
            tables[k][i] = c;
            k += 1;
        }
        i += 1;
    }
    tables
};

/// One slicing-by-16 step: folds sixteen bytes of `chunk` into `c`.
#[inline(always)]
fn crc_step16(c: u32, chunk: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let a = u64::from_le_bytes(chunk[0..8].try_into().unwrap()) ^ u64::from(c);
    let b = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
    t[15][(a & 0xFF) as usize]
        ^ t[14][((a >> 8) & 0xFF) as usize]
        ^ t[13][((a >> 16) & 0xFF) as usize]
        ^ t[12][((a >> 24) & 0xFF) as usize]
        ^ t[11][((a >> 32) & 0xFF) as usize]
        ^ t[10][((a >> 40) & 0xFF) as usize]
        ^ t[9][((a >> 48) & 0xFF) as usize]
        ^ t[8][(a >> 56) as usize]
        ^ t[7][(b & 0xFF) as usize]
        ^ t[6][((b >> 8) & 0xFF) as usize]
        ^ t[5][((b >> 16) & 0xFF) as usize]
        ^ t[4][((b >> 24) & 0xFF) as usize]
        ^ t[3][((b >> 32) & 0xFF) as usize]
        ^ t[2][((b >> 40) & 0xFF) as usize]
        ^ t[1][((b >> 48) & 0xFF) as usize]
        ^ t[0][(b >> 56) as usize]
}

/// Raw (no pre/post inversion) single-chain CRC update over `bytes`.
fn crc32_update(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        c = crc_step16(c, chunk);
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// CRC32 is a linear code over GF(2): the CRC of `A || B` equals the CRC
// of `A` advanced over `len(B)` zero bytes, XOR the raw CRC of `B`.
// Advancing is multiplication by a 32×32 GF(2) matrix, so independent
// chunk CRCs can be stitched together exactly — which lets the hot loop
// run four independent lookup chains (the table walk is latency-bound,
// not bandwidth-bound) and lets the streaming section loader checksum
// bounded chunks without holding a whole section in memory.

/// Matrix advancing a CRC over one zero *byte*, built by squaring the
/// one-zero-bit operator three times (1 → 2 → 4 → 8 bits).
const CRC_BYTE_OP: [u32; 32] = {
    const fn times(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut sum = 0u32;
        let mut i = 0;
        while vec != 0 {
            if vec & 1 != 0 {
                sum ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        sum
    }
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    let mut i = 1;
    while i < 32 {
        odd[i] = 1 << (i - 1);
        i += 1;
    }
    let mut k = 0;
    while k < 3 {
        let mut sq = [0u32; 32];
        let mut j = 0;
        while j < 32 {
            sq[j] = times(&odd, odd[j]);
            j += 1;
        }
        odd = sq;
        k += 1;
    }
    odd
};

fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// The GF(2) matrix advancing a CRC over `len` zero bytes
/// ([`CRC_BYTE_OP`] raised to the `len`-th power by square-and-multiply).
fn crc32_shift_op(len: u64) -> [u32; 32] {
    let mut result = [0u32; 32];
    for (i, r) in result.iter_mut().enumerate() {
        *r = 1 << i; // identity
    }
    let mut base = CRC_BYTE_OP;
    let mut n = len;
    while n != 0 {
        if n & 1 != 0 {
            let mut next = [0u32; 32];
            for (i, x) in next.iter_mut().enumerate() {
                *x = gf2_times(&base, result[i]);
            }
            result = next;
        }
        n >>= 1;
        if n != 0 {
            let mut sq = [0u32; 32];
            for (i, x) in sq.iter_mut().enumerate() {
                *x = gf2_times(&base, base[i]);
            }
            base = sq;
        }
    }
    result
}

/// Raw CRC update running four independent slicing-by-16 chains over
/// quarters of `bytes`, stitched with the GF(2) shift operator. The
/// single-chain loop is latency-bound on its table lookups; four chains
/// overlap those latencies for ~2x throughput on the same tables.
fn crc32_update_wide(init: u32, bytes: &[u8]) -> u32 {
    let q = (bytes.len() / 4) & !15;
    if q < 256 {
        return crc32_update(init, bytes);
    }
    let (p0, rest) = bytes.split_at(q);
    let (p1, rest) = rest.split_at(q);
    let (p2, rest) = rest.split_at(q);
    let (p3, tail) = rest.split_at(q);
    let (mut c0, mut c1, mut c2, mut c3) = (init, 0u32, 0u32, 0u32);
    for i in 0..q / 16 {
        let o = i * 16;
        c0 = crc_step16(c0, &p0[o..o + 16]);
        c1 = crc_step16(c1, &p1[o..o + 16]);
        c2 = crc_step16(c2, &p2[o..o + 16]);
        c3 = crc_step16(c3, &p3[o..o + 16]);
    }
    let shift_q = crc32_shift_op(q as u64);
    let mut c = gf2_times(&shift_q, c0) ^ c1;
    c = gf2_times(&shift_q, c) ^ c2;
    c = gf2_times(&shift_q, c) ^ c3;
    crc32_update(c, tail)
}

/// CRC32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`. Runs four
/// interleaved lookup chains (`crc32_update_wide`), sustaining
/// multiple GB/s — the load-path CRC sweep over a store stays a small
/// fraction of the one-read cold start even at a million subscribers.
/// Identical values to the classic one-lookup-per-byte loop.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update_wide(!0, bytes)
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Errors raised while writing or reading a store. Every corruption
/// variant that concerns a specific section *names* that section — the
/// fail-closed contract the corruption sweeps assert.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a store at all.
    BadMagic,
    /// The header declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// The header page or section table is inconsistent (bad checksum,
    /// out-of-bounds entry, truncated file).
    HeaderCorrupt(String),
    /// A section the caller requires is absent from the table.
    MissingSection {
        /// Name of the absent section.
        section: String,
    },
    /// A section's payload failed its CRC32 check.
    SectionCrc {
        /// Name of the corrupted section.
        section: String,
    },
    /// A section passed its checksum but its contents are inconsistent
    /// (wrong element width, impossible lengths, out-of-range ids).
    SectionMalformed {
        /// Name of the inconsistent section.
        section: String,
        /// What exactly is wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not an MCSSTOR1 store (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(
                f,
                "unsupported store version {v} (this build reads up to {VERSION})"
            ),
            StoreError::HeaderCorrupt(detail) => write!(f, "corrupted store header: {detail}"),
            StoreError::MissingSection { section } => {
                write!(f, "store is missing required section `{section}`")
            }
            StoreError::SectionCrc { section } => {
                write!(f, "store section `{section}` failed its CRC32 check")
            }
            StoreError::SectionMalformed { section, detail } => {
                write!(f, "store section `{section}` is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Assembles a store: accumulate sections, then serialize with
/// [`StoreBuilder::to_bytes`] or write atomically with
/// [`StoreBuilder::write`]. Sections land in the file in insertion
/// order, each at the next 4096-byte boundary.
#[derive(Debug, Default)]
pub struct StoreBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl StoreBuilder {
    /// An empty store.
    pub fn new() -> StoreBuilder {
        StoreBuilder::default()
    }

    /// Adds a raw byte section.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate section id or when the table would exceed
    /// [`MAX_SECTIONS`] — both are writer bugs, not runtime conditions.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) -> &mut StoreBuilder {
        assert!(
            self.sections.iter().all(|&(other, _)| other != id),
            "duplicate store section id {id:#x} ({})",
            section_name(id)
        );
        assert!(
            self.sections.len() < MAX_SECTIONS,
            "store exceeds {MAX_SECTIONS} sections"
        );
        self.sections.push((id, bytes));
        self
    }

    /// Adds a section of little-endian u32s.
    pub fn u32s(&mut self, id: u32, values: &[u32]) -> &mut StoreBuilder {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for &v in values {
            put_u32(&mut bytes, v);
        }
        self.section(id, bytes)
    }

    /// Adds a section of little-endian u64s.
    pub fn u64s(&mut self, id: u32, values: &[u64]) -> &mut StoreBuilder {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for &v in values {
            put_u64(&mut bytes, v);
        }
        self.section(id, bytes)
    }

    /// Serializes the container: header page, then each payload at the
    /// next page boundary. Inter-section gaps are zero padding (not
    /// covered by any checksum — never read back); the file ends exactly
    /// at the last payload byte, and the header records that length.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload_at = Vec::with_capacity(self.sections.len());
        let mut cursor = PAGE;
        for (_, bytes) in &self.sections {
            cursor = cursor.next_multiple_of(PAGE);
            payload_at.push(cursor);
            cursor += bytes.len();
        }
        let file_len = cursor;

        let mut out = vec![0u8; PAGE];
        out.reserve(file_len - PAGE);
        out[..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out[16..24].copy_from_slice(&(file_len as u64).to_le_bytes());
        // out[24..28] is the header CRC, patched below; out[28..32] reserved.
        for (i, ((id, bytes), &offset)) in self.sections.iter().zip(&payload_at).enumerate() {
            let e = TABLE_START + i * ENTRY_BYTES;
            out[e..e + 4].copy_from_slice(&id.to_le_bytes());
            out[e + 8..e + 16].copy_from_slice(&(offset as u64).to_le_bytes());
            out[e + 16..e + 24].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
            out[e + 24..e + 28].copy_from_slice(&crc32(bytes).to_le_bytes());
        }
        let header_crc = crc32(&out[..PAGE]);
        out[24..28].copy_from_slice(&header_crc.to_le_bytes());

        for ((_, bytes), &offset) in self.sections.iter().zip(&payload_at) {
            out.resize(offset, 0);
            out.extend_from_slice(bytes);
        }
        debug_assert_eq!(out.len(), file_len);
        out
    }

    /// Writes the store atomically: bytes go to `<path>.tmp`, which is
    /// fsynced and renamed over `path`, so a crash mid-write leaves any
    /// previous store intact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from writing, syncing, or renaming.
    pub fn write(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("mcss.tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// One validated entry of a store's section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id (see [`section`]).
    pub id: u32,
    /// Human-readable name ([`section_name`]).
    pub name: &'static str,
    /// Absolute payload offset; always a multiple of [`PAGE`].
    pub offset: u64,
    /// Exact payload length in bytes.
    pub len: u64,
    /// Expected CRC32 of the payload.
    pub crc: u32,
}

/// Validates a store header page against the file's actual byte count
/// and returns the section table: magic, version, header checksum, and
/// every table entry's bounds and alignment. `bytes` may be the whole
/// file or just its first page — only `bytes[..PAGE]` is inspected.
fn validate_header(bytes: &[u8], actual_len: u64) -> Result<Vec<SectionInfo>, StoreError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < PAGE || actual_len < PAGE as u64 {
        return Err(StoreError::HeaderCorrupt(
            "file shorter than the header page".into(),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut header = bytes[..PAGE].to_vec();
    let stored_crc = u32::from_le_bytes(header[24..28].try_into().unwrap());
    header[24..28].copy_from_slice(&[0; 4]);
    if crc32(&header) != stored_crc {
        return Err(StoreError::HeaderCorrupt("header checksum mismatch".into()));
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    if count > MAX_SECTIONS {
        return Err(StoreError::HeaderCorrupt(format!(
            "section count {count} exceeds the table capacity {MAX_SECTIONS}"
        )));
    }
    let file_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if file_len != actual_len {
        return Err(StoreError::HeaderCorrupt(format!(
            "header records {file_len} bytes but the file holds {actual_len} (truncated?)"
        )));
    }
    let mut sections: Vec<SectionInfo> = Vec::with_capacity(count);
    for i in 0..count {
        let e = TABLE_START + i * ENTRY_BYTES;
        let id = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[e + 24..e + 28].try_into().unwrap());
        let name = section_name(id);
        if offset % PAGE as u64 != 0 || offset < PAGE as u64 {
            return Err(StoreError::HeaderCorrupt(format!(
                "section `{name}` offset {offset} is not page-aligned past the header"
            )));
        }
        if offset.checked_add(len).is_none_or(|end| end > file_len) {
            return Err(StoreError::HeaderCorrupt(format!(
                "section `{name}` ({offset}+{len} bytes) overruns the {file_len}-byte file"
            )));
        }
        if sections.iter().any(|s| s.id == id) {
            return Err(StoreError::HeaderCorrupt(format!(
                "section `{name}` (id {id:#x}) appears twice in the table"
            )));
        }
        sections.push(SectionInfo {
            id,
            name,
            offset,
            len,
            crc,
        });
    }
    Ok(sections)
}

/// A loaded store: the whole file in memory plus its validated section
/// table. Opening performs header validation only; each section's
/// payload CRC is checked on first access, so corruption is always
/// attributed to a named section.
#[derive(Debug)]
pub struct StoreReader {
    bytes: Vec<u8>,
    sections: Vec<SectionInfo>,
}

impl StoreReader {
    /// Reads and validates a store file — one `read` syscall for the
    /// whole file, then pure in-memory checks.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, otherwise any header
    /// validation error from [`StoreReader::from_bytes`].
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        StoreReader::from_bytes(fs::read(path)?)
    }

    /// Validates an in-memory store image: magic, version, header
    /// checksum, and every table entry's bounds and alignment.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`], or
    /// [`StoreError::HeaderCorrupt`] naming what is inconsistent.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<StoreReader, StoreError> {
        let sections = validate_header(&bytes, bytes.len() as u64)?;
        Ok(StoreReader { bytes, sections })
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The validated section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Whether the table lists section `id`.
    pub fn has(&self, id: u32) -> bool {
        self.sections.iter().any(|s| s.id == id)
    }

    /// A section's raw payload, CRC-verified.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when the table lacks `id`;
    /// [`StoreError::SectionCrc`] naming the section when its payload
    /// fails the checksum.
    pub fn bytes(&self, id: u32) -> Result<&[u8], StoreError> {
        let info = self.sections.iter().find(|s| s.id == id).ok_or_else(|| {
            StoreError::MissingSection {
                section: section_name(id).to_string(),
            }
        })?;
        let payload = &self.bytes[info.offset as usize..(info.offset + info.len) as usize];
        if crc32(payload) != info.crc {
            return Err(StoreError::SectionCrc {
                section: info.name.to_string(),
            });
        }
        Ok(payload)
    }

    /// A section decoded as little-endian u32s.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::bytes`], plus [`StoreError::SectionMalformed`]
    /// when the payload length is not a multiple of 4.
    pub fn u32s(&self, id: u32) -> Result<Vec<u32>, StoreError> {
        let payload = self.bytes(id)?;
        if payload.len() % 4 != 0 {
            return Err(StoreError::SectionMalformed {
                section: section_name(id).to_string(),
                detail: format!("{} bytes is not a whole number of u32s", payload.len()),
            });
        }
        Ok(payload
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A section decoded as little-endian u64s.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::bytes`], plus [`StoreError::SectionMalformed`]
    /// when the payload length is not a multiple of 8.
    pub fn u64s(&self, id: u32) -> Result<Vec<u64>, StoreError> {
        let payload = self.bytes(id)?;
        if payload.len() % 8 != 0 {
            return Err(StoreError::SectionMalformed {
                section: section_name(id).to_string(),
                detail: format!("{} bytes is not a whole number of u64s", payload.len()),
            });
        }
        Ok(payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Bytes streamed per `read` by [`StoreFile`] — large enough to
/// amortize syscalls, small enough to stay cache-resident so the fused
/// checksum-and-widen pass reads the kernel's copy out of L2 instead of
/// sweeping the whole section through DRAM a second time.
const STREAM_CHUNK: usize = 512 * 1024;

/// A store opened for streaming section loads. Where [`StoreReader`]
/// buffers the entire file, `StoreFile` reads the header page, then
/// pulls each requested section through a fixed cache-sized scratch
/// buffer, fusing the CRC sweep and the little-endian widening into one
/// pass over warm bytes. On a memory-bandwidth-bound cold start this
/// skips a whole-file DRAM round trip; per-chunk CRCs are stitched with
/// the GF(2) shift operator so the verified value is identical to a
/// single sweep. Sections still fail closed: a payload whose checksum
/// mismatches is reported by name and its data is never returned.
#[derive(Debug)]
pub struct StoreFile {
    file: File,
    sections: Vec<SectionInfo>,
    scratch: Vec<u8>,
    /// [`CRC_BYTE_OP`]^`STREAM_CHUNK`, precomputed once: every full
    /// chunk advances the running CRC by the same operator.
    chunk_op: [u32; 32],
}

impl StoreFile {
    /// Opens a store and validates its header page against the file's
    /// on-disk length. No section payload is read yet.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, otherwise any header
    /// validation error from [`StoreReader::from_bytes`].
    pub fn open(path: &Path) -> Result<StoreFile, StoreError> {
        let mut file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        let mut header = vec![0u8; PAGE.min(actual_len as usize)];
        io::Read::read_exact(&mut file, &mut header)?;
        let sections = validate_header(&header, actual_len)?;
        Ok(StoreFile {
            file,
            sections,
            scratch: vec![0u8; STREAM_CHUNK],
            chunk_op: crc32_shift_op(STREAM_CHUNK as u64),
        })
    }

    /// The validated section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Whether the table lists section `id`.
    pub fn has(&self, id: u32) -> bool {
        self.sections.iter().any(|s| s.id == id)
    }

    /// Streams section `id` through the scratch buffer, feeding each
    /// chunk to `sink` while accumulating the payload CRC. `sink` output
    /// must be discarded by the caller if this returns an error — the
    /// checksum verdict only lands after the final chunk.
    fn stream_section(&mut self, id: u32, mut sink: impl FnMut(&[u8])) -> Result<(), StoreError> {
        let info = *self.sections.iter().find(|s| s.id == id).ok_or_else(|| {
            StoreError::MissingSection {
                section: section_name(id).to_string(),
            }
        })?;
        io::Seek::seek(&mut self.file, io::SeekFrom::Start(info.offset))?;
        let mut remaining = info.len as usize;
        let mut acc = !0u32;
        while remaining > 0 {
            let n = remaining.min(STREAM_CHUNK);
            let chunk = &mut self.scratch[..n];
            io::Read::read_exact(&mut self.file, chunk)?;
            acc = if n == STREAM_CHUNK {
                gf2_times(&self.chunk_op, acc)
            } else {
                gf2_times(&crc32_shift_op(n as u64), acc)
            } ^ crc32_update_wide(0, chunk);
            sink(chunk);
            remaining -= n;
        }
        if !acc != info.crc {
            return Err(StoreError::SectionCrc {
                section: info.name.to_string(),
            });
        }
        Ok(())
    }

    /// A section decoded as little-endian u32s, checksum-verified.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::u32s`]: missing section, CRC mismatch, or a
    /// payload length that is not a multiple of 4.
    pub fn read_u32s(&mut self, id: u32) -> Result<Vec<u32>, StoreError> {
        let len = self.payload_len_checked(id, 4)?;
        let mut out = Vec::with_capacity(len / 4);
        // STREAM_CHUNK is a multiple of 4, so no u32 straddles chunks.
        self.stream_section(id, |chunk| {
            out.extend(
                chunk
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
            );
        })?;
        Ok(out)
    }

    /// A section decoded as little-endian u64s, checksum-verified.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::u64s`]: missing section, CRC mismatch, or a
    /// payload length that is not a multiple of 8.
    pub fn read_u64s(&mut self, id: u32) -> Result<Vec<u64>, StoreError> {
        let len = self.payload_len_checked(id, 8)?;
        let mut out = Vec::with_capacity(len / 8);
        self.stream_section(id, |chunk| {
            out.extend(
                chunk
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
            );
        })?;
        Ok(out)
    }

    fn payload_len_checked(&self, id: u32, width: usize) -> Result<usize, StoreError> {
        let info = self.sections.iter().find(|s| s.id == id).ok_or_else(|| {
            StoreError::MissingSection {
                section: section_name(id).to_string(),
            }
        })?;
        if !(info.len as usize).is_multiple_of(width) {
            return Err(StoreError::SectionMalformed {
                section: info.name.to_string(),
                detail: format!(
                    "{} bytes is not a whole number of u{}s",
                    info.len,
                    width * 8
                ),
            });
        }
        Ok(info.len as usize)
    }
}

/// Checksum-verified, decoded section access — implemented by both the
/// buffered [`StoreReader`] and the streaming [`StoreFile`], so codecs
/// like `read_workload_sections` work against either. Methods take
/// `&mut self` because the streaming reader advances a file cursor.
pub trait ReadSections {
    /// A section decoded as little-endian u32s, checksum-verified.
    ///
    /// # Errors
    ///
    /// Missing section, CRC mismatch (naming the section), or a payload
    /// length that is not a multiple of 4.
    fn read_u32s(&mut self, id: u32) -> Result<Vec<u32>, StoreError>;

    /// A section decoded as little-endian u64s, checksum-verified.
    ///
    /// # Errors
    ///
    /// Missing section, CRC mismatch (naming the section), or a payload
    /// length that is not a multiple of 8.
    fn read_u64s(&mut self, id: u32) -> Result<Vec<u64>, StoreError>;
}

impl ReadSections for StoreReader {
    fn read_u32s(&mut self, id: u32) -> Result<Vec<u32>, StoreError> {
        self.u32s(id)
    }

    fn read_u64s(&mut self, id: u32) -> Result<Vec<u64>, StoreError> {
        self.u64s(id)
    }
}

impl ReadSections for StoreFile {
    fn read_u32s(&mut self, id: u32) -> Result<Vec<u32>, StoreError> {
        StoreFile::read_u32s(self, id)
    }

    fn read_u64s(&mut self, id: u32) -> Result<Vec<u64>, StoreError> {
        StoreFile::read_u64s(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic one-lookup-per-byte loop, kept as the reference the
    /// sliced implementation must agree with.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut c = !0u32;
        for &b in bytes {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_crc32_matches_byte_at_a_time_at_every_length() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "sliced CRC diverged at length {len}"
            );
        }
    }
}
