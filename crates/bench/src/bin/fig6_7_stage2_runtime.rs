//! E-FIG6/7: Stage-2 runtime (fully-optimized CBP vs FFBP) for
//! Spotify-like and Twitter-like traces on c3.large.
//!
//! Run with: `cargo run --release -p mcss_bench --bin fig6_7_stage2_runtime`
//! Size overrides: `MCSS_SPOTIFY_SUBS`, `MCSS_TWITTER_USERS`.

use cloud_cost::instances;
use mcss_bench::experiments::fig_stage2_runtime;
use mcss_bench::scenario::{env_size, Scenario};

fn main() {
    let spotify = Scenario::spotify(env_size("MCSS_SPOTIFY_SUBS", 100_000), 20140113);
    println!("== Fig. 6 (Spotify, c3.large) ==");
    print!("{}", fig_stage2_runtime(&spotify, instances::C3_LARGE, 3));

    let twitter = Scenario::twitter(env_size("MCSS_TWITTER_USERS", 20_000), 20131030);
    println!("\n== Fig. 7 (Twitter, c3.large) ==");
    print!("{}", fig_stage2_runtime(&twitter, instances::C3_LARGE, 2));
}
