//! Scenario builders: generated traces with paper-scale compensation.

use cloud_cost::{Ec2CostModel, InstanceType};
use mcss_core::{McssError, McssInstance};
use pubsub_model::{Rate, Workload};
use pubsub_traces::{SpotifyLike, TwitterLike};
use std::sync::Arc;

/// Subscribers in the paper's Spotify trace (§IV-B).
pub const PAPER_SPOTIFY_SUBSCRIBERS: u64 = 4_900_000;
/// Subscribers in the paper's Twitter trace (§IV-B).
pub const PAPER_TWITTER_SUBSCRIBERS: u64 = 30_000_000;

/// A generated workload plus the paper-scale context needed to price it.
///
/// Capacity calibration: experiments use
/// [`Ec2CostModel::paper_effective`], the per-VM event budget implied by
/// the paper's reported VM counts, scaled by the synthetic/paper
/// subscriber ratio. Because rates stay at natural scale while capacity
/// shrinks, a handful of extreme-tail topics (bots, celebrities) could
/// individually exceed a scaled VM; those rates are clamped to a quarter
/// of the smallest capacity in play and the count is recorded in
/// [`Scenario::clamped_topics`] (a scale artifact — at full scale every
/// topic fits comfortably).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name ("spotify" / "twitter").
    pub name: &'static str,
    /// The generated workload (rates possibly tail-clamped, see above).
    pub workload: Arc<Workload>,
    /// The subscriber count of the paper trace this stands in for.
    pub paper_subscribers: u64,
    /// Number of topics whose rate was clamped to keep the scaled
    /// instance feasible.
    pub clamped_topics: usize,
}

impl Scenario {
    /// Spotify-like scenario at the given synthetic subscriber count.
    pub fn spotify(subscribers: usize, seed: u64) -> Scenario {
        Scenario::assemble(
            "spotify",
            SpotifyLike::new(subscribers, seed).generate(),
            PAPER_SPOTIFY_SUBSCRIBERS,
        )
    }

    /// Twitter-like scenario at the given synthetic universe size.
    pub fn twitter(users: usize, seed: u64) -> Scenario {
        Scenario::assemble(
            "twitter",
            TwitterLike::new(users, seed).generate(),
            PAPER_TWITTER_SUBSCRIBERS,
        )
    }

    fn assemble(name: &'static str, workload: Workload, paper_subscribers: u64) -> Scenario {
        // The binding capacity across the experiments is the smallest
        // instance type (c3.large) at this scenario's scale.
        let smallest = Ec2CostModel::paper_effective(cloud_cost::instances::C3_LARGE)
            .with_volume_scale(workload.num_subscribers().max(1) as u64, paper_subscribers)
            .capacity();
        let max_rate = Rate::new((smallest.get() / 4).max(1));
        let mut clamped = 0usize;
        let rates: Vec<Rate> = workload
            .rates()
            .iter()
            .map(|&r| {
                if r > max_rate {
                    clamped += 1;
                    max_rate
                } else {
                    r
                }
            })
            .collect();
        let workload = if clamped > 0 {
            let interests = workload
                .subscribers()
                .map(|v| workload.interests(v).to_vec())
                .collect();
            Workload::from_parts(rates, interests)
        } else {
            workload
        };
        Scenario {
            name,
            workload: Arc::new(workload),
            paper_subscribers,
            clamped_topics: clamped,
        }
    }

    /// The paper's cost model for an instance type, scale-compensated for
    /// this scenario's synthetic size and using the effective capacity
    /// calibration.
    pub fn cost_model(&self, instance: InstanceType) -> Ec2CostModel {
        Ec2CostModel::paper_effective(instance).with_volume_scale(
            self.workload.num_subscribers() as u64,
            self.paper_subscribers,
        )
    }

    /// An MCSS instance over this scenario at threshold `τ` with the
    /// instance type's (scaled, effective) capacity.
    ///
    /// # Errors
    ///
    /// Propagates [`McssError::ZeroCapacity`] (cannot occur for the
    /// catalogued instance types).
    pub fn instance(&self, tau: u64, instance: InstanceType) -> Result<McssInstance, McssError> {
        let cost = self.cost_model(instance);
        McssInstance::new(Arc::clone(&self.workload), Rate::new(tau), cost.capacity())
    }
}

/// Reads a `NAME=value` override from the environment, for sizing
/// experiments without recompiling (e.g. `MCSS_SPOTIFY_SUBS=250000`).
pub fn env_size(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::instances;

    #[test]
    fn scenarios_build_and_scale() {
        let s = Scenario::spotify(500, 1);
        assert_eq!(s.name, "spotify");
        let cost = s.cost_model(instances::C3_LARGE);
        // Effective scaled capacity: 5e7 × (subs / 4.9M).
        let expected = 50_000_000u64 * s.workload.num_subscribers() as u64 / 4_900_000;
        assert_eq!(cost.capacity().get(), expected.max(1));
        let inst = s.instance(10, instances::C3_LARGE).unwrap();
        assert_eq!(inst.tau(), Rate::new(10));
    }

    #[test]
    fn every_topic_fits_after_clamping() {
        for s in [Scenario::spotify(2_000, 3), Scenario::twitter(2_000, 3)] {
            let inst = s.instance(10, instances::C3_LARGE).unwrap();
            inst.check_all_topics_fit()
                .unwrap_or_else(|e| panic!("{} scenario infeasible: {e}", s.name));
        }
    }

    #[test]
    fn twitter_tail_requires_clamping_at_small_scale() {
        // Bot rates reach 1e5; a 2k-user scenario has capacity ≈ 3.3k,
        // so clamping must have engaged.
        let s = Scenario::twitter(2_000, 5);
        assert!(s.clamped_topics > 0);
    }

    #[test]
    fn env_size_falls_back() {
        assert_eq!(env_size("MCSS_DEFINITELY_UNSET_VAR", 42), 42);
    }
}
