//! `MCSSTOR1` — the durable single-file store for MCSS arenas.
//!
//! Every other persistence path in the repo (TSV traces, the serve
//! daemon's legacy snapshots) stores *primary* data and rebuilds derived
//! state on load: transposing the interest CSR into the follower CSR and
//! ranking every interest row by rate. At a million subscribers that
//! rebuild dominates cold start. This crate stores the arenas
//! *themselves* — primaries and derived tables alike — as raw
//! little-endian sections in one page-aligned, checksummed file, so a
//! load is one `read`, a CRC sweep, and a bounds-checked widening pass:
//! zero per-row work.
//!
//! Layout (field-by-field spec in `docs/STORE.md`):
//!
//! * a 4096-byte header page: magic `MCSSTOR1`, version, header CRC32,
//!   and a section table of `{id, offset, len, crc32}` entries;
//! * each section's payload at a 4096-byte-aligned offset.
//!
//! Corruption fails closed with the *section named* in the error — see
//! [`StoreError`]. Unknown section ids pass through readers untouched,
//! so the format is forward-extensible without a version bump.
//!
//! The container ([`StoreBuilder`] / [`StoreReader`]) is generic; this
//! crate also ships the workload codec ([`WorkloadStoreExt`]). The
//! solver-side sections (Stage-1 selection, fleet ledger, serve
//! metadata) are encoded by `mcss_core::store` on top of the same
//! container.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format;
mod workload;

pub use format::{
    crc32, section, section_name, ReadSections, SectionInfo, StoreBuilder, StoreError, StoreFile,
    StoreReader, MAGIC, MAX_SECTIONS, PAGE, VERSION,
};
pub use workload::{read_workload_sections, write_workload_sections, WorkloadStoreExt};
