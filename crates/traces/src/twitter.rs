//! Synthetic Twitter-like trace generator.
//!
//! Reproduces the published shape of the paper's Twitter trace (§IV-B and
//! Appendix D): users are both topics (when followed and active) and
//! subscribers (when following someone); follower counts follow a power
//! law; following counts follow a power law with the documented anomaly
//! spikes at exactly 20 and 2000 (old Twitter defaults/limits, visible in
//! Fig. 8); per-user tweet rates grow roughly linearly with follower count
//! until a celebrity threshold past which they are damped (Fig. 10), with a
//! bot-like heavy tail (Fig. 9); only users that tweeted during the window
//! ("active users") become topics.

use crate::dist::{AliasTable, LogNormal};
use pubsub_model::{Rate, TopicId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Twitter-like generator.
///
/// The defaults target the statistics the paper reports at its 1%-sample
/// scale, proportionally: mean following ≈ 20–25, mean event rate ≈ tens of
/// tweets per 10-day window, max rates around 10⁵ (bots), celebrities with
/// large follower counts but modest tweet rates.
///
/// ```
/// use pubsub_traces::TwitterLike;
///
/// let w = TwitterLike::new(2_000, 42).generate();
/// assert!(w.num_topics() > 0);
/// assert!(w.num_subscribers() > 0);
/// let stats = w.stats();
/// assert!(stats.mean_interests > 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct TwitterLike {
    /// Size of the user universe (before activity filtering).
    pub users: usize,
    /// RNG seed; identical seeds produce identical workloads.
    pub seed: u64,
    /// Zipf exponent of the popularity weights that drive follow-target
    /// choice (smaller ⇒ heavier celebrity head).
    pub popularity_exponent: f64,
    /// Log-mean of the following-count distribution. Fig. 8's followings
    /// CCDF bends like a log-normal (median ≈ 12–20, mean ≈ 22.8) rather
    /// than a straight power law.
    pub following_log_mean: f64,
    /// Log-std of the following-count distribution.
    pub following_log_sigma: f64,
    /// Cap on the following count of a single user.
    pub max_following: usize,
    /// Probability mass forced onto exactly 20 followings (the Fig. 8
    /// anomaly at the historical default).
    pub spike_20_prob: f64,
    /// Probability mass forced onto exactly 2000 followings (the Fig. 8
    /// anomaly at the historical follow limit).
    pub spike_2000_prob: f64,
    /// Probability that a user published nothing in the window and is
    /// dropped from the topic set (the paper keeps only "active" users).
    pub inactive_prob: f64,
    /// Probability that a user is a bot/news aggregator with a rate drawn
    /// log-uniformly from `bot_rate_range` regardless of followers.
    pub bot_prob: f64,
    /// Bot rate range (min, max), events per window.
    pub bot_rate_range: (u64, u64),
    /// Base tweet rate added for every active user.
    pub base_rate: f64,
    /// Linear growth of mean tweet rate per follower (Fig. 10's linear
    /// regime).
    pub rate_per_follower: f64,
    /// Follower count past which the linear growth is damped — the paper
    /// observes celebrities (≥10⁵ followers at 8 M-user scale) tweet less
    /// than the linear trend; scaled proportionally by default.
    pub celebrity_threshold: usize,
    /// Multiplier applied to the linear trend past the threshold.
    pub celebrity_damping: f64,
    /// Log-std of the multiplicative log-normal noise on rates.
    pub rate_noise_sigma: f64,
}

impl TwitterLike {
    /// A generator for `users` users with paper-shaped defaults.
    pub fn new(users: usize, seed: u64) -> Self {
        // The paper's celebrity knee sits at 1e5 followers among 8e6 users;
        // keep the same fraction of the universe.
        let celebrity_threshold = (users as f64 * (1e5 / 8e6)).max(50.0) as usize;
        TwitterLike {
            users,
            seed,
            popularity_exponent: 0.9,
            following_log_mean: 2.5,
            following_log_sigma: 1.2,
            max_following: (users / 4).max(8),
            spike_20_prob: 0.05,
            spike_2000_prob: 0.004,
            inactive_prob: 0.35,
            bot_prob: 0.005,
            bot_rate_range: (1_000, 100_000),
            base_rate: 2.0,
            rate_per_follower: 0.5,
            celebrity_threshold,
            celebrity_damping: 0.1,
            rate_noise_sigma: 1.0,
        }
    }

    /// Generates just the workload (see [`TwitterLike::generate_trace`]).
    pub fn generate(&self) -> Workload {
        self.generate_trace().workload
    }

    /// Generates the full trace: the pub/sub workload plus the raw social
    /// graph degrees.
    ///
    /// Users with at least one follower and a positive tweet rate become
    /// topics; users following at least one topic become subscribers. The
    /// raw per-user degrees are reported unfiltered — Fig. 8 plots the
    /// crawled graph, where the anomaly spikes at exactly 20 and 2000
    /// followings live, while the workload's interest lists only keep
    /// edges to active topics (which smears those spikes downwards).
    ///
    /// # Panics
    ///
    /// Panics if `users < 2` (a follow graph needs at least two users) or
    /// if any probability parameter lies outside `[0, 1]`.
    pub fn generate_trace(&self) -> TwitterTrace {
        assert!(
            self.users >= 2,
            "need at least two users to form a follow graph"
        );
        for p in [
            self.spike_20_prob,
            self.spike_2000_prob,
            self.inactive_prob,
            self.bot_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0, 1]");
        }
        let n = self.users;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Popularity weights: who gets followed. Shuffled rank assignment so
        // user index carries no meaning.
        let mut ranks: Vec<u32> = (0..n as u32).collect();
        shuffle(&mut ranks, &mut rng);
        let weights: Vec<f64> = ranks
            .iter()
            .map(|&r| (f64::from(r) + 1.0).powf(-self.popularity_exponent))
            .collect();
        let targets = AliasTable::new(&weights);

        // Following counts with the documented spikes.
        let following_dist = LogNormal::new(self.following_log_mean, self.following_log_sigma);
        let mut followings: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut followers: Vec<u32> = vec![0; n];
        for u in 0..n {
            let spin: f64 = rng.gen();
            let k = if spin < self.spike_20_prob {
                20
            } else if spin < self.spike_20_prob + self.spike_2000_prob {
                2000
            } else {
                (following_dist.sample(&mut rng).round() as usize)
                    .clamp(1, self.max_following.max(1))
            };
            let k = k.min(n - 1);
            let mut chosen = Vec::with_capacity(k);
            let mut attempts = 0usize;
            let max_attempts = k.saturating_mul(20) + 32;
            while chosen.len() < k && attempts < max_attempts {
                attempts += 1;
                let t = targets.sample(&mut rng) as u32;
                if t as usize != u && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            // Heavy-head collisions can exhaust attempts for very large k;
            // accepting fewer followings keeps the tail realistic.
            chosen.sort_unstable();
            for &t in &chosen {
                followers[t as usize] += 1;
            }
            followings.push(chosen);
        }

        // Tweet rates: linear-in-followers with celebrity damping, noise,
        // bots, and activity filtering.
        let noise = LogNormal::new(
            -self.rate_noise_sigma * self.rate_noise_sigma / 2.0, // mean-1 noise
            self.rate_noise_sigma,
        );
        let mut rates: Vec<u64> = vec![0; n];
        for u in 0..n {
            if rng.gen::<f64>() < self.inactive_prob {
                continue; // inactive: tweeted nothing in the window
            }
            if rng.gen::<f64>() < self.bot_prob {
                rates[u] = log_uniform(self.bot_rate_range, &mut rng);
                continue;
            }
            let f = f64::from(followers[u]);
            let mut trend = self.base_rate + self.rate_per_follower * f;
            if followers[u] as usize > self.celebrity_threshold {
                let knee =
                    self.base_rate + self.rate_per_follower * self.celebrity_threshold as f64;
                trend = knee + (trend - knee) * self.celebrity_damping;
            }
            rates[u] = (trend * noise.sample(&mut rng)).round().max(1.0) as u64;
        }

        // Assemble the workload: active, followed users become topics.
        let mut topic_of_user: Vec<Option<TopicId>> = vec![None; n];
        let mut builder = Workload::builder();
        for u in 0..n {
            if rates[u] > 0 && followers[u] > 0 {
                let id = builder
                    .add_topic(Rate::new(rates[u]))
                    .expect("generated rate is positive and bounded");
                topic_of_user[u] = Some(id);
            }
        }
        for tv in &followings {
            let interests: Vec<TopicId> = tv
                .iter()
                .filter_map(|&t| topic_of_user[t as usize])
                .collect();
            if !interests.is_empty() {
                builder
                    .add_subscriber(interests)
                    .expect("interests reference added topics");
            }
        }
        TwitterTrace {
            workload: builder.build(),
            raw_followings: followings.iter().map(|tv| tv.len() as u64).collect(),
            raw_followers: followers.iter().map(|&f| u64::from(f)).collect(),
        }
    }
}

/// A generated Twitter-like trace: the filtered pub/sub workload plus the
/// raw social-graph degrees (what Appendix D's Fig. 8 plots).
#[derive(Clone, Debug)]
pub struct TwitterTrace {
    /// The pub/sub workload (active, followed users as topics).
    pub workload: Workload,
    /// Following count per user in the raw graph (unfiltered).
    pub raw_followings: Vec<u64>,
    /// Follower count per user in the raw graph (unfiltered).
    pub raw_followers: Vec<u64>,
}

/// Fisher-Yates shuffle (kept local to avoid enabling rand's `alloc`
/// shuffle API differences across versions).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Draws from `[lo, hi]` log-uniformly.
fn log_uniform((lo, hi): (u64, u64), rng: &mut impl Rng) -> u64 {
    assert!(lo >= 1 && hi >= lo, "invalid log-uniform range");
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    (llo + rng.gen::<f64>() * (lhi - llo))
        .exp()
        .round()
        .clamp(lo as f64, hi as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        TwitterLike::new(5_000, 1234).generate()
    }

    #[test]
    fn generates_nonempty_workload() {
        let w = workload();
        assert!(w.num_topics() > 500, "topics: {}", w.num_topics());
        assert!(
            w.num_subscribers() > 1_000,
            "subscribers: {}",
            w.num_subscribers()
        );
        assert!(w.pair_count() > 5_000, "pairs: {}", w.pair_count());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TwitterLike::new(1_000, 7).generate();
        let b = TwitterLike::new(1_000, 7).generate();
        assert_eq!(a.pair_count(), b.pair_count());
        assert_eq!(a.rates(), b.rates());
        let c = TwitterLike::new(1_000, 8).generate();
        assert!(a.pair_count() != c.pair_count() || a.rates() != c.rates());
    }

    #[test]
    fn every_topic_has_followers_and_positive_rate() {
        let w = workload();
        for t in w.topics() {
            assert!(!w.rate(t).is_zero());
        }
        // No structural issues: every topic subscribed, every subscriber
        // has interests (construction filters both).
        assert!(w.validate().is_empty());
    }

    #[test]
    fn mean_following_in_paper_ballpark() {
        let w = workload();
        let mean = w.stats().mean_interests;
        // Paper: 683.5M pairs / 30M subscribers ≈ 22.8. Activity filtering
        // trims interests, so accept a broad band around it.
        assert!((5.0..60.0).contains(&mean), "mean following {mean}");
    }

    #[test]
    fn following_spike_at_20_visible_in_raw_graph() {
        let trace = TwitterLike::new(20_000, 99).generate_trace();
        let s = crate::analysis::spike_strength(&trace.raw_followings, 20, 5)
            .expect("neighbourhood populated");
        assert!(s > 3.0, "raw spike at 20 too weak: {s:.2}x");
        // The spike also leaves a visible surplus band in the filtered
        // workload, just smeared below 20.
        let degrees = trace.workload.interest_degrees();
        let at = |k: u64| degrees.iter().filter(|&&d| d == k).count() as f64;
        let band_spike: f64 = (12..=20).map(&at).sum();
        let band_after: f64 = (21..=29).map(&at).sum();
        assert!(
            band_spike > band_after,
            "no smeared spike: band 12..=20 {band_spike} vs 21..=29 {band_after}"
        );
    }

    #[test]
    fn raw_trace_degrees_are_consistent() {
        let trace = TwitterLike::new(3_000, 12).generate_trace();
        assert_eq!(trace.raw_followings.len(), 3_000);
        assert_eq!(trace.raw_followers.len(), 3_000);
        // Every follow edge appears exactly once on each side.
        let total_out: u64 = trace.raw_followings.iter().sum();
        let total_in: u64 = trace.raw_followers.iter().sum();
        assert_eq!(total_out, total_in);
        // The filtered workload can only lose edges.
        assert!(trace.workload.pair_count() <= total_out);
    }

    #[test]
    fn rate_tail_is_heavy() {
        let w = workload();
        let s = w.stats();
        // Bots push the max far beyond the mean (Fig. 9's tail).
        assert!(
            s.max_rate as f64 > 20.0 * s.mean_rate,
            "max {} mean {}",
            s.max_rate,
            s.mean_rate
        );
        assert!(s.max_rate >= 1_000);
    }

    #[test]
    fn celebrity_damping_bends_trend() {
        let gen = TwitterLike::new(20_000, 5);
        let w = gen.generate();
        // Mean rate of mid-popularity topics should exceed what the raw
        // linear trend would predict for celebrities after damping.
        let mut celeb_rates = Vec::new();
        let mut mid_rates = Vec::new();
        for t in w.topics() {
            let f = w.subscribers_of(t).len();
            if f > gen.celebrity_threshold {
                celeb_rates.push(w.rate(t).get() as f64 / f as f64);
            } else if f >= 5 {
                mid_rates.push(w.rate(t).get() as f64 / f as f64);
            }
        }
        if !celeb_rates.is_empty() && !mid_rates.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            // Rate-per-follower drops for celebrities.
            assert!(
                mean(&celeb_rates) < mean(&mid_rates),
                "celebrity {} vs mid {}",
                mean(&celeb_rates),
                mean(&mid_rates)
            );
        }
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = log_uniform((10, 1_000), &mut rng);
            assert!((10..=1_000).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "at least two users")]
    fn rejects_tiny_universe() {
        let _ = TwitterLike::new(1, 0).generate();
    }
}
