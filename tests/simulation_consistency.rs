//! The analytic model (paper Eq. 2) versus the discrete-event simulator:
//! under a deterministic publication schedule the two must agree exactly,
//! per VM and in total, on generated traces.

use mcss::prelude::*;
use mcss::sim::ScheduleKind;
use mcss_bench::scenario::Scenario;

fn check_exact(inst: &McssInstance, cost: &Ec2CostModel) {
    let outcome = Solver::default().solve(inst, cost).unwrap();
    outcome
        .allocation
        .validate(inst.workload(), inst.tau())
        .unwrap();
    let report = Simulation::new(SimConfig::default()).run(inst.workload(), &outcome.allocation);
    assert_eq!(
        report.total_bandwidth_events(),
        outcome.allocation.total_bandwidth().get(),
        "total simulated traffic diverged from the analytic model"
    );
    for (i, (meter, vm)) in report.vms.iter().zip(outcome.allocation.vms()).enumerate() {
        assert_eq!(
            meter.total_events(),
            vm.used().get(),
            "vm{i} traffic diverged"
        );
        assert_eq!(
            meter.ingress_events,
            vm.incoming_volume(inst.workload()).get(),
            "vm{i} ingress diverged"
        );
        assert_eq!(
            meter.egress_events,
            vm.outgoing_volume(inst.workload()).get(),
            "vm{i} egress diverged"
        );
    }
    assert!(report.all_satisfied(inst.workload(), inst.tau()));
}

#[test]
fn spotify_trace_simulates_exactly() {
    let s = Scenario::spotify(1_500, 31);
    let inst = s.instance(50, cloud_cost::instances::C3_LARGE).unwrap();
    check_exact(&inst, &s.cost_model(cloud_cost::instances::C3_LARGE));
}

#[test]
fn twitter_trace_simulates_exactly() {
    let s = Scenario::twitter(1_200, 32);
    let inst = s.instance(30, cloud_cost::instances::C3_LARGE).unwrap();
    check_exact(&inst, &s.cost_model(cloud_cost::instances::C3_LARGE));
}

#[test]
fn poisson_schedule_stays_satisfied_with_headroom() {
    // With τ far below the selected rates, Poisson count noise cannot
    // starve anyone.
    let s = Scenario::spotify(800, 33);
    let inst = s.instance(5, cloud_cost::instances::C3_LARGE).unwrap();
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    let outcome = Solver::default().solve(&inst, &cost).unwrap();
    let report = Simulation::new(SimConfig {
        schedule: ScheduleKind::Poisson { seed: 77 },
        ..SimConfig::default()
    })
    .run(inst.workload(), &outcome.allocation);
    // Published counts are random but close to the model in aggregate.
    let expected = outcome.selection.outgoing_volume(inst.workload()).get();
    let measured: u64 = report.vms.iter().map(|m| m.egress_events).sum();
    let ratio = measured as f64 / expected as f64;
    assert!((0.8..1.2).contains(&ratio), "egress ratio {ratio}");
}

/// A merged shard-parallel allocation must route exactly like a
/// monolithic one: the discrete-event replay agrees with the analytic
/// model per VM and leaves nobody starved.
#[test]
fn sharded_allocation_routes_exactly_in_simulation() {
    let s = Scenario::spotify(1_500, 31);
    let inst = s.instance(50, cloud_cost::instances::C3_LARGE).unwrap();
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    for partitioner in [
        PartitionerKind::TopicLocality,
        PartitionerKind::Hash { seed: 7 },
    ] {
        let params = SolverParams::default()
            .with_sharding(ShardingConfig::new(4).with_partitioner(partitioner));
        let outcome = Solver::new(params).solve(&inst, &cost).unwrap();
        assert_eq!(outcome.report.shards, 4);
        outcome
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
        let report =
            Simulation::new(SimConfig::default()).run(inst.workload(), &outcome.allocation);
        assert_eq!(
            report.total_bandwidth_events(),
            outcome.allocation.total_bandwidth().get(),
            "simulated traffic diverged from the merged allocation ({partitioner:?})"
        );
        for (i, (meter, vm)) in report.vms.iter().zip(outcome.allocation.vms()).enumerate() {
            assert_eq!(
                meter.total_events(),
                vm.used().get(),
                "vm{i} traffic diverged ({partitioner:?})"
            );
        }
        assert_eq!(
            report.unsatisfied_count(inst.workload(), inst.tau()),
            0,
            "{partitioner:?}"
        );
    }
}

#[test]
fn naive_and_paper_pipelines_both_satisfy_operationally() {
    let s = Scenario::twitter(800, 34);
    let inst = s.instance(20, cloud_cost::instances::C3_LARGE).unwrap();
    let cost = s.cost_model(cloud_cost::instances::C3_LARGE);
    for params in [
        SolverParams {
            selector: SelectorKind::Random { seed: 3 },
            allocator: AllocatorKind::FirstFit,
            ..SolverParams::default()
        },
        SolverParams::default(),
    ] {
        let outcome = Solver::new(params).solve(&inst, &cost).unwrap();
        let report =
            Simulation::new(SimConfig::default()).run(inst.workload(), &outcome.allocation);
        assert_eq!(
            report.unsatisfied_count(inst.workload(), inst.tau()),
            0,
            "{params:?}"
        );
    }
}
