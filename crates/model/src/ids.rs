//! Identifier newtypes for topics, subscribers, and topic-subscriber pairs.
//!
//! Identifiers are dense indices (`u32`) assigned by [`WorkloadBuilder`] in
//! insertion order, which keeps per-topic and per-subscriber lookup tables as
//! flat vectors and halves memory versus `usize` at the multi-million scale
//! the paper evaluates.
//!
//! [`WorkloadBuilder`]: crate::WorkloadBuilder

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a topic `t ∈ T` (paper §II-B).
///
/// In the social pub/sub systems the paper targets (Spotify, Twitter), a
/// topic is a user being followed; its publications are that user's events.
///
/// ```
/// use pubsub_model::TopicId;
/// let t = TopicId::new(7);
/// assert_eq!(t.index(), 7);
/// assert_eq!(format!("{t}"), "t7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TopicId(u32);

impl TopicId {
    /// Creates a topic id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        TopicId(index)
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a subscriber `v ∈ V` (paper §II-B).
///
/// ```
/// use pubsub_model::SubscriberId;
/// let v = SubscriberId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SubscriberId(u32);

impl SubscriberId {
    /// Creates a subscriber id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        SubscriberId(index)
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A topic-subscriber pair `(t, v)` — the unit of allocation in MCSS.
///
/// The paper chooses workload subsets *at the granularity of pairs*
/// (§II-A): a subscriber may receive a topic from one VM while another
/// subscriber of the same topic is served from a different VM.
///
/// ```
/// use pubsub_model::{Pair, SubscriberId, TopicId};
/// let p = Pair::new(TopicId::new(1), SubscriberId::new(2));
/// assert_eq!(format!("{p}"), "(t1, v2)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Pair {
    /// The topic being delivered.
    pub topic: TopicId,
    /// The subscriber receiving it.
    pub subscriber: SubscriberId,
}

impl Pair {
    /// Creates a pair from its components.
    #[inline]
    pub const fn new(topic: TopicId, subscriber: SubscriberId) -> Self {
        Pair { topic, subscriber }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.topic, self.subscriber)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_id_roundtrip() {
        let t = TopicId::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t.raw(), 42);
        assert_eq!(t, TopicId::new(42));
        assert!(TopicId::new(1) < TopicId::new(2));
    }

    #[test]
    fn subscriber_id_roundtrip() {
        let v = SubscriberId::new(7);
        assert_eq!(v.index(), 7);
        assert!(SubscriberId::new(0) < v);
    }

    #[test]
    fn pair_ordering_is_topic_major() {
        let a = Pair::new(TopicId::new(1), SubscriberId::new(9));
        let b = Pair::new(TopicId::new(2), SubscriberId::new(0));
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TopicId::new(3).to_string(), "t3");
        assert_eq!(SubscriberId::new(4).to_string(), "v4");
        assert_eq!(
            Pair::new(TopicId::new(3), SubscriberId::new(4)).to_string(),
            "(t3, v4)"
        );
    }

    #[test]
    fn ids_are_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TopicId::new(1));
        s.insert(TopicId::new(1));
        assert_eq!(s.len(), 1);
    }
}
