//! Publication schedules: when each topic's events fire within the window.

use pubsub_model::{Rate, TopicId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How publication instants are drawn for a topic of rate `ev` over the
/// simulated window.
#[derive(Clone, Copy, Debug, Default)]
pub enum ScheduleKind {
    /// Exactly `ev` events, evenly spaced. Event *counts* match the
    /// analytic model exactly, making bandwidth comparisons exact.
    #[default]
    Deterministic,
    /// A Poisson process with intensity `ev / window`: exponential gaps,
    /// random count with mean `ev`. Matches the analytic model in
    /// expectation.
    Poisson {
        /// RNG seed; topic `t` derives an independent stream from it.
        seed: u64,
    },
}

/// The publication instants of one topic, in window ticks.
///
/// Ticks are abstract: the window spans `[0, window_ticks)` and rates are
/// interpreted as events-per-window, mirroring the solver's units.
#[derive(Clone, Debug)]
pub struct PublicationSchedule {
    topic: TopicId,
    instants: Vec<u64>,
}

impl PublicationSchedule {
    /// Builds the schedule of `topic` with rate `rate` over
    /// `window_ticks` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window_ticks` is zero.
    pub fn generate(topic: TopicId, rate: Rate, window_ticks: u64, kind: ScheduleKind) -> Self {
        assert!(window_ticks > 0, "window must have at least one tick");
        let instants = match kind {
            ScheduleKind::Deterministic => {
                let n = rate.get();
                // Even spacing: event i at ⌊i·window/n⌋.
                (0..n).map(|i| i * window_ticks / n.max(1)).collect()
            }
            ScheduleKind::Poisson { seed } => {
                // Independent per-topic stream: mix the topic id into the
                // seed (splitmix-style) so schedules do not correlate.
                let mixed = seed.wrapping_add(
                    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(topic.raw()) + 1),
                );
                let mut rng = StdRng::seed_from_u64(mixed);
                let lambda = rate.get() as f64 / window_ticks as f64;
                let mut t = 0.0f64;
                let mut instants = Vec::with_capacity(rate.get() as usize);
                loop {
                    // Exponential gap: -ln(U)/λ.
                    let u: f64 = 1.0 - rng.gen::<f64>();
                    t += -u.ln() / lambda;
                    if t >= window_ticks as f64 {
                        break;
                    }
                    instants.push(t as u64);
                }
                instants
            }
        };
        PublicationSchedule { topic, instants }
    }

    /// The topic this schedule publishes.
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// Publication instants in non-decreasing tick order.
    pub fn instants(&self) -> &[u64] {
        &self.instants
    }

    /// Number of events in the window.
    pub fn event_count(&self) -> u64 {
        self.instants.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_count_equals_rate() {
        let s = PublicationSchedule::generate(
            TopicId::new(0),
            Rate::new(37),
            1_000,
            ScheduleKind::Deterministic,
        );
        assert_eq!(s.event_count(), 37);
        assert!(s.instants().windows(2).all(|w| w[0] <= w[1]));
        assert!(s.instants().iter().all(|&t| t < 1_000));
    }

    #[test]
    fn deterministic_zero_rate_is_silent() {
        let s = PublicationSchedule::generate(
            TopicId::new(0),
            Rate::ZERO,
            100,
            ScheduleKind::Deterministic,
        );
        assert_eq!(s.event_count(), 0);
    }

    #[test]
    fn poisson_mean_approaches_rate() {
        let mut total = 0u64;
        let runs = 200;
        for seed in 0..runs {
            let s = PublicationSchedule::generate(
                TopicId::new(1),
                Rate::new(50),
                10_000,
                ScheduleKind::Poisson { seed },
            );
            total += s.event_count();
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 50.0).abs() < 3.0, "poisson mean {mean}");
    }

    #[test]
    fn poisson_instants_sorted_and_in_window() {
        let s = PublicationSchedule::generate(
            TopicId::new(2),
            Rate::new(100),
            5_000,
            ScheduleKind::Poisson { seed: 3 },
        );
        assert!(s.instants().windows(2).all(|w| w[0] <= w[1]));
        assert!(s.instants().iter().all(|&t| t < 5_000));
    }

    #[test]
    fn poisson_streams_are_topic_independent() {
        let a = PublicationSchedule::generate(
            TopicId::new(0),
            Rate::new(40),
            1_000,
            ScheduleKind::Poisson { seed: 9 },
        );
        let b = PublicationSchedule::generate(
            TopicId::new(1),
            Rate::new(40),
            1_000,
            ScheduleKind::Poisson { seed: 9 },
        );
        assert_ne!(a.instants(), b.instants());
    }

    #[test]
    fn deterministic_is_reproducible() {
        let make = || {
            PublicationSchedule::generate(
                TopicId::new(5),
                Rate::new(13),
                997,
                ScheduleKind::Deterministic,
            )
        };
        assert_eq!(make().instants(), make().instants());
    }
}
