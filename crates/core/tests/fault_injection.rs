//! Disk-fault property tests for the event-sourced serve daemon.
//!
//! The contract under test (ISSUE: "never a panic, never silent
//! corruption"): inject disk faults — short writes from a dying device,
//! transient fsync failures, at-rest bit flips — at arbitrary points in
//! a serve run, across snapshot cadences. Recovery must either
//! reconstruct state **bit-identically** to an uninterrupted run (after
//! replaying whatever the durable prefix lost) or fail closed with a
//! clean [`ServeError`] diagnostic. A panic or a silently-wrong
//! recovered state is a bug.

use cloud_cost::{CostModel, LinearCostModel, Money};
use mcss_core::dynamic::DriftModel;
use mcss_core::serve::{
    Daemon, Driver, Event, FaultInjector, IoFault, ServeConfig, LOG_FILE, SNAPSHOT_FILE,
};
use mcss_core::{Allocation, Selection};
use proptest::prelude::*;
use pubsub_model::{Bandwidth, Rate, Workload};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcss-fault-inject-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cost() -> Box<dyn CostModel> {
    Box::new(LinearCostModel::new(
        Money::from_dollars(1),
        Money::from_micros(3),
    ))
}

fn base_workload() -> Workload {
    let mut b = Workload::builder();
    let ts: Vec<_> = [30u64, 18, 12, 9, 6, 4]
        .iter()
        .map(|&r| b.add_topic(Rate::new(r)).unwrap())
        .collect();
    b.add_subscriber([ts[0], ts[1], ts[4]]).unwrap();
    b.add_subscriber([ts[1], ts[2]]).unwrap();
    b.add_subscriber([ts[2], ts[3], ts[5]]).unwrap();
    b.add_subscriber([ts[0], ts[5]]).unwrap();
    b.build()
}

fn script(seed: u64, batches: usize) -> Vec<Event> {
    let drift = DriftModel {
        rate_sigma: 0.3,
        churn_prob: 0.4,
        seed,
    };
    let mut driver = Driver::new(base_workload(), drift);
    let mut events = driver.initial_events();
    for _ in 0..batches {
        events.extend(driver.next_epoch_events());
    }
    events
}

/// Everything that must come back bit-identical after recovery.
fn fingerprint(d: &Daemon) -> (u64, Option<Selection>, Option<Allocation>) {
    (d.epochs_applied(), d.selection().cloned(), d.allocation())
}

/// The uninterrupted reference run every faulted run is judged against.
fn run_clean(events: &[Event], config: ServeConfig, dir: &Path) -> Daemon {
    let mut d = Daemon::create(dir, config, cost()).unwrap();
    for &e in events {
        d.submit(e).unwrap();
    }
    d.tick().unwrap();
    d
}

proptest! {
    // Real files and real fsyncs per case; the case count stays CI-sized
    // while the sweep still covers fault point x fault kind x snapshot
    // cadence (including 0 = pure log replay).
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Write-path faults: a dying disk (short write, then every later
    /// write fails) or a transient fsync failure, armed at an arbitrary
    /// event index. If the daemon survives (retries absorbed the fault)
    /// its state must equal the reference; if it errors out, resume on
    /// the durable prefix plus a replay of the lost tail must equal the
    /// reference.
    #[test]
    fn write_faults_never_panic_or_corrupt_recovery(
        seed in 0u64..1_000,
        kind in 0usize..2,
        keep in 0usize..32,
        times in 1u32..4,
        arm_at_raw in 0usize..100_000,
        watermark in 2u64..7,
        snap_every in 0u64..3,
    ) {
        let events = script(seed, 3);
        let config = ServeConfig::new(Rate::new(15), Bandwidth::new(2_000))
            .with_epoch_events(watermark)
            .with_snapshot_every(snap_every)
            .with_sync_retries(1, 0);
        let dir_ref = scratch("write-ref");
        let reference = run_clean(&events, config, &dir_ref);

        let injector = FaultInjector::new();
        let dir = scratch("write-fault");
        let mut daemon =
            Daemon::create_with_faults(&dir, config, cost(), Some(injector.clone())).unwrap();
        let arm_at = arm_at_raw % events.len();
        let mut crashed = false;
        for (i, &e) in events.iter().enumerate() {
            if i == arm_at {
                match kind {
                    0 => injector.arm(IoFault::ShortWrite { keep }),
                    _ => injector.arm(IoFault::SyncFail { times }),
                }
            }
            if let Err(err) = daemon.submit(e) {
                prop_assert!(!err.to_string().is_empty(), "diagnostic must name the fault");
                crashed = true;
                break;
            }
        }
        if !crashed {
            if let Err(err) = daemon.tick() {
                prop_assert!(!err.to_string().is_empty());
                crashed = true;
            }
        }

        if crashed {
            // kill -9 the poisoned daemon, revive the "device", recover.
            std::mem::forget(daemon);
            injector.disarm();
            let mut recovered = Daemon::resume(&dir, config, cost()).unwrap();
            let absorbed = ((recovered.epochs_applied() * watermark
                + recovered.pending_events()) as usize)
                .min(events.len());
            for &e in &events[absorbed..] {
                recovered.submit(e).unwrap();
            }
            recovered.tick().unwrap();
            prop_assert_eq!(fingerprint(&reference), fingerprint(&recovered));
        } else {
            // The fault was absorbed (fsync retry) or never fired; state
            // must be exactly the reference's either way.
            prop_assert_eq!(fingerprint(&reference), fingerprint(&daemon));
        }

        std::fs::remove_dir_all(&dir_ref).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// At-rest corruption: flip one byte somewhere in the log or the
    /// snapshot of a completed run. Resume must either recover a valid
    /// prefix (finishing the stream then matches the reference exactly)
    /// or refuse with a clean diagnostic — never panic, never come back
    /// with silently-wrong state.
    #[test]
    fn bit_flips_recover_a_valid_prefix_or_fail_closed(
        seed in 0u64..1_000,
        watermark in 2u64..7,
        snap_every in 0u64..3,
        hit_snapshot_raw in 0usize..2,
        flip_raw in 0usize..100_000,
    ) {
        let events = script(seed, 3);
        let config = ServeConfig::new(Rate::new(15), Bandwidth::new(2_000))
            .with_epoch_events(watermark)
            .with_snapshot_every(snap_every);
        let dir_ref = scratch("flip-ref");
        let reference = run_clean(&events, config, &dir_ref);
        let dir = scratch("flip");
        drop(run_clean(&events, config, &dir));

        let snap_path = dir.join(SNAPSHOT_FILE);
        let hit_snapshot = hit_snapshot_raw == 1;
        let path = if hit_snapshot && snap_path.exists() {
            snap_path
        } else {
            dir.join(LOG_FILE)
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let at = flip_raw % bytes.len();
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        match Daemon::resume(&dir, config, cost()) {
            Ok(mut recovered) => {
                // Valid-prefix recovery: the flip truncated the log at
                // the damaged record (or landed in slack the decoder
                // never trusts). Finishing the stream must converge on
                // the reference state exactly.
                let absorbed = ((recovered.epochs_applied() * watermark
                    + recovered.pending_events()) as usize)
                    .min(events.len());
                for &e in &events[absorbed..] {
                    recovered.submit(e).unwrap();
                }
                recovered.tick().unwrap();
                prop_assert_eq!(fingerprint(&reference), fingerprint(&recovered));
            }
            Err(err) => {
                // Fail closed: a clean, printable diagnostic.
                prop_assert!(!err.to_string().is_empty());
            }
        }

        std::fs::remove_dir_all(&dir_ref).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A failed snapshot write must not clobber the previous snapshot: the
/// write goes to a temp file and renames only on success, so resume
/// falls back to old-snapshot + log replay and lands bit-identically.
#[test]
fn snapshot_write_faults_keep_the_old_snapshot_usable() {
    let events = script(7, 3);
    let config = ServeConfig::new(Rate::new(15), Bandwidth::new(2_000))
        .with_epoch_events(5)
        .with_snapshot_every(0);
    let dir_ref = scratch("snapfault-ref");
    let reference = run_clean(&events, config, &dir_ref);

    let injector = FaultInjector::new();
    let dir = scratch("snapfault");
    let mut daemon =
        Daemon::create_with_faults(&dir, config, cost(), Some(injector.clone())).unwrap();
    let half = events.len() / 2;
    for &e in &events[..half] {
        daemon.submit(e).unwrap();
    }
    daemon.tick().unwrap();
    daemon.snapshot_now().unwrap();
    let good_snapshot = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();

    for &e in &events[half..] {
        daemon.submit(e).unwrap();
    }
    daemon.tick().unwrap();
    injector.arm(IoFault::ShortWrite { keep: 5 });
    let err = daemon.snapshot_now().unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "unexpected error: {err}"
    );
    assert_eq!(
        std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap(),
        good_snapshot,
        "failed snapshot write must not touch the published snapshot"
    );

    // The "device" died mid-snapshot; crash, revive, recover from the
    // old snapshot plus the (fully synced) log tail.
    std::mem::forget(daemon);
    injector.disarm();
    let mut recovered = Daemon::resume(&dir, config, cost()).unwrap();
    let absorbed =
        ((recovered.epochs_applied() * 5 + recovered.pending_events()) as usize).min(events.len());
    for &e in &events[absorbed..] {
        recovered.submit(e).unwrap();
    }
    recovered.tick().unwrap();
    assert_eq!(fingerprint(&reference), fingerprint(&recovered));

    std::fs::remove_dir_all(&dir_ref).ok();
    std::fs::remove_dir_all(&dir).ok();
}
