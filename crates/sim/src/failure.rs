//! VM failure injection and repair.
//!
//! A deployment sized by MCSS runs on rented VMs that *fail*. This module
//! quantifies the blast radius of losing brokers mid-window — which
//! subscribers drop below `τ_v`, how much delivery volume disappears — and
//! exercises the natural repair path: re-solving the instance for the
//! surviving regime. This goes beyond the paper (which models a static
//! window) but directly supports its §VI "dynamic on-demand provisioning"
//! agenda, and gives the test suite a failure-injection axis.

use mcss_core::{Allocation, McssInstance};
use pubsub_model::{Rate, SubscriberId, TopicId};
use std::collections::HashMap;

/// The effect of removing a set of VMs from an allocation.
#[derive(Clone, Debug)]
pub struct FailureImpact {
    /// The surviving allocation (failed VMs dropped, ids re-packed).
    pub degraded: Allocation,
    /// Rate still delivered to each subscriber (unique pairs only).
    pub delivered: Vec<Rate>,
    /// Subscribers whose delivered rate fell below `τ_v`.
    pub starved: Vec<SubscriberId>,
    /// Pairs lost with the failed VMs.
    pub pairs_lost: u64,
    /// Bandwidth capacity lost with the failed VMs (their `bw_b`).
    pub volume_lost: u64,
    /// Distinct in-range VMs that actually failed.
    pub vms_failed: usize,
    /// Out-of-range indices from the kill list, deduped and sorted —
    /// reported so a typo'd drill spec doesn't silently kill nothing.
    pub invalid: Vec<usize>,
}

/// Simulates the loss of the given VM indices.
///
/// Duplicate indices collapse to a single failure (the loss accounting
/// never double-counts); out-of-range indices are reported in
/// [`FailureImpact::invalid`] rather than silently ignored.
pub fn fail_vms(
    instance: &McssInstance,
    allocation: &Allocation,
    failed: &[usize],
) -> FailureImpact {
    let workload = instance.workload();
    let mut wanted: Vec<usize> = failed.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let mut keep = vec![true; allocation.vm_count()];
    let mut vms_failed = 0usize;
    let mut invalid = Vec::new();
    for &i in &wanted {
        if i < keep.len() {
            keep[i] = false;
            vms_failed += 1;
        } else {
            invalid.push(i);
        }
    }
    let mut tables: Vec<HashMap<TopicId, Vec<SubscriberId>>> = Vec::new();
    let mut pairs_lost = 0;
    let mut volume_lost = 0;
    for (vm, &kept) in allocation.vms().iter().zip(&keep) {
        if kept {
            tables.push(
                vm.placements()
                    .iter()
                    .map(|p| (p.topic, p.subscribers.clone()))
                    .collect(),
            );
        } else {
            pairs_lost += vm.pair_count();
            volume_lost += vm.used().get();
        }
    }
    let degraded = Allocation::from_tables(tables, workload, allocation.capacity());
    let delivered = degraded.delivered_rates(workload);
    let starved = workload
        .subscribers()
        .filter(|&v| delivered[v.index()] < instance.tau_v(v))
        .collect();
    FailureImpact {
        degraded,
        delivered,
        starved,
        pairs_lost,
        volume_lost,
        vms_failed,
        invalid,
    }
}

/// Convenience: how many subscribers a single VM's failure would starve,
/// for every VM — a fragility profile of the allocation.
pub fn fragility_profile(instance: &McssInstance, allocation: &Allocation) -> Vec<usize> {
    (0..allocation.vm_count())
        .map(|i| fail_vms(instance, allocation, &[i]).starved.len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::{LinearCostModel, Money};
    use mcss_core::Solver;
    use pubsub_model::{Bandwidth, Workload};

    fn solved() -> (McssInstance, Allocation) {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [20u64, 12, 8, 5]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1]]).unwrap();
        b.add_subscriber([ts[1], ts[2], ts[3]]).unwrap();
        b.add_subscriber([ts[0], ts[3]]).unwrap();
        let inst = McssInstance::new(b.build(), Rate::new(15), Bandwidth::new(70)).unwrap();
        let cost = LinearCostModel::vm_only(Money::from_dollars(1));
        let alloc = Solver::default().solve(&inst, &cost).unwrap().allocation;
        (inst, alloc)
    }

    #[test]
    fn no_failures_no_impact() {
        let (inst, alloc) = solved();
        let impact = fail_vms(&inst, &alloc, &[]);
        assert_eq!(impact.pairs_lost, 0);
        assert_eq!(impact.volume_lost, 0);
        assert!(impact.starved.is_empty());
        assert_eq!(impact.degraded.pair_count(), alloc.pair_count());
    }

    #[test]
    fn losing_everything_starves_everyone_with_interests() {
        let (inst, alloc) = solved();
        let all: Vec<usize> = (0..alloc.vm_count()).collect();
        let impact = fail_vms(&inst, &alloc, &all);
        assert_eq!(impact.degraded.vm_count(), 0);
        assert_eq!(impact.pairs_lost, alloc.pair_count());
        assert_eq!(impact.starved.len(), inst.workload().num_subscribers());
    }

    #[test]
    fn partial_failure_accounts_exactly() {
        let (inst, alloc) = solved();
        if alloc.vm_count() < 2 {
            return; // packing landed on one VM; nothing partial to test
        }
        let impact = fail_vms(&inst, &alloc, &[0]);
        assert_eq!(
            impact.pairs_lost + impact.degraded.pair_count(),
            alloc.pair_count(),
            "lost + surviving pairs must cover the original"
        );
        assert_eq!(impact.volume_lost, alloc.vms()[0].used().get());
    }

    #[test]
    fn out_of_range_and_duplicate_indices_are_safe() {
        let (inst, alloc) = solved();
        let impact = fail_vms(&inst, &alloc, &[999, 999, 1_000]);
        assert_eq!(impact.pairs_lost, 0);
        assert_eq!(impact.vms_failed, 0);
        assert_eq!(impact.invalid, vec![999, 1_000], "typos reported, deduped");
        let impact2 = fail_vms(&inst, &alloc, &[0, 0, 0]);
        assert_eq!(impact2.vms_failed, 1, "duplicates collapse to one failure");
        assert_eq!(impact2.volume_lost, alloc.vms()[0].used().get());
        assert!(impact2.invalid.is_empty());
        // Duplicates must not double-count the loss: one kill of VM 0
        // and three kills of VM 0 are the same event.
        let once = fail_vms(&inst, &alloc, &[0]);
        assert_eq!(impact2.pairs_lost, once.pairs_lost);
        assert_eq!(impact2.volume_lost, once.volume_lost);
    }

    #[test]
    fn repair_by_resolve_restores_satisfaction() {
        let (inst, alloc) = solved();
        let all: Vec<usize> = (0..alloc.vm_count()).collect();
        let impact = fail_vms(&inst, &alloc, &all);
        assert!(!impact.starved.is_empty());
        // Repair: re-solve the same instance (fresh fleet).
        let cost = LinearCostModel::vm_only(Money::from_dollars(1));
        let repaired = Solver::default().solve(&inst, &cost).unwrap().allocation;
        assert!(repaired.validate(inst.workload(), inst.tau()).is_ok());
    }

    #[test]
    fn fragility_profile_has_one_entry_per_vm() {
        let (inst, alloc) = solved();
        let profile = fragility_profile(&inst, &alloc);
        assert_eq!(profile.len(), alloc.vm_count());
        // Starving more subscribers than exist is impossible.
        for &s in &profile {
            assert!(s <= inst.workload().num_subscribers());
        }
    }
}
