//! Incrementally-maintained fleet state for the churn path.
//!
//! The epoch-repair loop of [`crate::incremental`] used to keep the fleet
//! as `Vec<HashMap<TopicId, Vec<SubscriberId>>>` and pay full-fleet scans
//! every epoch: usage recomputes per VM, `retain`-based pair removal, and
//! linear sweeps to find eviction victims and placement targets. The
//! [`FleetLedger`] replaces that with flat state whose maintenance cost
//! scales with the *migration delta*:
//!
//! * per-VM `(topic, subscribers)` rows sorted by topic id (binary-search
//!   host lookup) with subscriber lists kept sorted (binary-search pair
//!   removal);
//! * per-VM used-bandwidth counters, adjusted pair-by-pair and re-based
//!   only for topics whose rate actually changed;
//! * a topic → hosting-VMs reverse index, so rate refreshes, removals and
//!   co-host placement touch only the VMs that host the topic;
//! * a lazy max-heap over VM headroom for "most-free VM" placement (stale
//!   entries are discarded on pop, fresh ones pushed on every change);
//! * tombstoned VM slots: released VMs keep their index (the reverse
//!   index and heap stay valid) and are reused lowest-first by new VMs.
//!
//! The ledger is deliberately policy-free: eviction order and the
//! three-pass placement (co-host → most-free → fresh VM) mirror the
//! repair policy documented on
//! [`IncrementalReallocator`](crate::incremental::IncrementalReallocator).

use crate::Allocation;
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One VM's placement rows: `(topic, subscribers)` sorted by topic id,
/// subscribers sorted by id.
type VmRows = Vec<(TopicId, Vec<SubscriberId>)>;

/// Flat, incrementally-maintained fleet state (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct FleetLedger {
    /// Placement rows per VM slot; empty rows mean the slot is empty
    /// (mid-epoch) or tombstoned (after release).
    rows: Vec<VmRows>,
    /// Recorded bandwidth per VM slot (Eq. 2 under current rates).
    used: Vec<Bandwidth>,
    /// Tombstoned slots: released, invisible to placement until reused.
    tombstone: Vec<bool>,
    /// Topic index → VM slots hosting the topic, ascending.
    hosts: Vec<Vec<u32>>,
    /// Lazy "most-free VM" heap: `(Reverse(used at push time), slot)`.
    /// An entry is valid iff the slot is live and its used value still
    /// matches; everything else is discarded on pop.
    free_heap: BinaryHeap<(Reverse<Bandwidth>, usize)>,
    /// Tombstoned slots available for reuse, lowest index first.
    free_slots: BinaryHeap<Reverse<usize>>,
    /// Slots that may have become empty since the last release sweep.
    maybe_empty: Vec<usize>,
    /// Slots whose usage may have grown past capacity this epoch.
    overflow_candidates: Vec<usize>,
    /// `Σ used` over live slots.
    total_used: u128,
    /// Number of live (non-tombstone, non-empty) VMs.
    live: usize,
}

impl FleetLedger {
    /// Builds a ledger mirroring an existing allocation (used after full
    /// re-solves and [`adopt`](crate::incremental::IncrementalReallocator::adopt)).
    pub fn from_allocation(allocation: &Allocation) -> FleetLedger {
        let mut ledger = FleetLedger::default();
        for vm in allocation.vms() {
            let slot = ledger.rows.len();
            let rows: VmRows = vm
                .placements()
                .iter()
                .map(|p| (p.topic, p.subscribers.clone()))
                .collect();
            for &(t, _) in &rows {
                ledger.ensure_topics(t.index() + 1);
                ledger.hosts[t.index()].push(slot as u32);
            }
            ledger.rows.push(rows);
            ledger.used.push(vm.used());
            ledger.tombstone.push(false);
            ledger.total_used += u128::from(vm.used().get());
            ledger.free_heap.push((Reverse(vm.used()), slot));
            if !ledger.rows[slot].is_empty() {
                ledger.live += 1;
            } else {
                ledger.maybe_empty.push(slot);
            }
        }
        ledger
    }

    /// Number of live (non-empty) VMs.
    pub fn vm_count(&self) -> usize {
        self.live
    }

    /// `Σ used / (|B| · BC)` over live VMs (1.0 for an empty fleet).
    pub fn utilization(&self, capacity: Bandwidth) -> f64 {
        let fleet_capacity = (self.live as u128).saturating_mul(u128::from(capacity.get()));
        if fleet_capacity == 0 {
            1.0
        } else {
            self.total_used as f64 / fleet_capacity as f64
        }
    }

    /// Snapshots the live VMs as an [`Allocation`], in slot order. The
    /// ledger's rows are already sorted and its used counters exact, so
    /// the export is a plain clone — no re-sort, no bandwidth recompute.
    pub fn to_allocation(&self, capacity: Bandwidth) -> Allocation {
        let vms = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(slot, rows)| {
                let placements = rows
                    .iter()
                    .map(|(topic, subscribers)| crate::TopicPlacement {
                        topic: *topic,
                        subscribers: subscribers.clone(),
                    })
                    .collect();
                crate::VmAllocation::from_sorted_parts(placements, self.used[slot])
            })
            .collect();
        Allocation::from_vm_allocations(vms, capacity)
    }

    /// Grows the reverse index to cover `num_topics` topics.
    pub fn ensure_topics(&mut self, num_topics: usize) {
        if self.hosts.len() < num_topics {
            self.hosts.resize_with(num_topics, Vec::new);
        }
    }

    /// Re-bases every hosting VM's used counter after topic `t`'s rate
    /// changed from `old_rate` to `new_rate` — `O(hosts of t)`.
    pub fn refresh_rate(&mut self, t: TopicId, old_rate: Rate, new_rate: Rate) {
        if old_rate == new_rate || t.index() >= self.hosts.len() {
            return;
        }
        for &slot in &self.hosts[t.index()] {
            let slot = slot as usize;
            let pairs = match self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                Ok(pos) => self.rows[slot][pos].1.len() as u64,
                Err(_) => continue, // stale index entry
            };
            let old_contrib = old_rate * (pairs + 1);
            let new_contrib = new_rate * (pairs + 1);
            let before = self.used[slot];
            let after = before.saturating_sub(old_contrib) + new_contrib;
            self.used[slot] = after;
            self.total_used =
                self.total_used - u128::from(old_contrib.get()) + u128::from(new_contrib.get());
            self.free_heap.push((Reverse(after), slot));
            if new_rate > old_rate {
                self.overflow_candidates.push(slot);
            }
        }
    }

    /// Drops every group of topic `t` (the topic left the workload),
    /// charging usage at `old_rate`. Later [`FleetLedger::remove_pair`]
    /// calls for its pairs become no-ops.
    pub fn drop_topic(&mut self, t: TopicId, old_rate: Rate) {
        if t.index() >= self.hosts.len() {
            return;
        }
        for &slot in &self.hosts[t.index()] {
            let slot = slot as usize;
            if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                let (_, subs) = self.rows[slot].remove(pos);
                let contrib = old_rate * (subs.len() as u64 + 1);
                self.used[slot] = self.used[slot].saturating_sub(contrib);
                self.total_used -= u128::from(contrib.get());
                self.free_heap.push((Reverse(self.used[slot]), slot));
                if self.rows[slot].is_empty() {
                    self.live -= 1;
                    self.maybe_empty.push(slot);
                }
            }
        }
        self.hosts[t.index()].clear();
    }

    /// Removes the pair `(t, v)` if the ledger holds it, updating usage at
    /// the topic's current `rate`. `O(hosts of t · log)` — the reverse
    /// index names the candidate VMs, binary search finds the subscriber.
    pub fn remove_pair(&mut self, t: TopicId, v: SubscriberId, rate: Rate) -> bool {
        if t.index() >= self.hosts.len() {
            return false;
        }
        let mut found: Option<(usize, usize)> = None;
        for &slot in &self.hosts[t.index()] {
            let slot = slot as usize;
            if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                if self.rows[slot][pos].1.binary_search(&v).is_ok() {
                    found = Some((slot, pos));
                    break;
                }
            }
        }
        let Some((slot, pos)) = found else {
            return false;
        };
        let subs = &mut self.rows[slot][pos].1;
        let at = subs.binary_search(&v).expect("membership just checked");
        subs.remove(at);
        let mut freed = rate.volume(); // the outgoing stream
        if subs.is_empty() {
            // Last pair: the incoming stream goes too.
            self.rows[slot].remove(pos);
            self.hosts[t.index()].retain(|&s| s as usize != slot);
            freed += rate.volume();
            if self.rows[slot].is_empty() {
                self.live -= 1;
                self.maybe_empty.push(slot);
            }
        }
        self.used[slot] = self.used[slot].saturating_sub(freed);
        self.total_used -= u128::from(freed.get());
        self.free_heap.push((Reverse(self.used[slot]), slot));
        true
    }

    /// Queues every live VM for the next overflow check (used when the
    /// capacity constraint itself changed between epochs).
    pub fn mark_all_for_overflow(&mut self) {
        for slot in 0..self.rows.len() {
            if !self.tombstone[slot] && !self.rows[slot].is_empty() {
                self.overflow_candidates.push(slot);
            }
        }
    }

    /// Sheds load from every queued VM whose usage exceeds `capacity`:
    /// whole topic groups are evicted cheapest-first (cost
    /// `ev_t · (|group| + 1)`, ties to the lowest topic id) and appended
    /// to `spill` for re-placement. Returns the number of evicted pairs.
    pub fn evict_overflowing(
        &mut self,
        workload: &Workload,
        capacity: Bandwidth,
        spill: &mut Vec<(TopicId, SubscriberId)>,
    ) -> u64 {
        let mut evicted = 0u64;
        let candidates = std::mem::take(&mut self.overflow_candidates);
        for slot in candidates {
            if self.tombstone[slot] || self.used[slot] <= capacity {
                continue;
            }
            // Group costs do not change while evicting siblings, so one
            // ascending sort stands in for the eviction min-heap.
            let mut order: Vec<(Bandwidth, TopicId)> = self.rows[slot]
                .iter()
                .map(|(t, subs)| (workload.rate(*t) * (subs.len() as u64 + 1), *t))
                .collect();
            order.sort_unstable();
            for (cost, t) in order {
                if self.used[slot] <= capacity {
                    break;
                }
                let pos = self.rows[slot]
                    .binary_search_by_key(&t, |&(tt, _)| tt)
                    .expect("group present while over capacity");
                let (_, subs) = self.rows[slot].remove(pos);
                self.hosts[t.index()].retain(|&s| s as usize != slot);
                self.used[slot] = self.used[slot].saturating_sub(cost);
                self.total_used -= u128::from(cost.get());
                evicted += subs.len() as u64;
                spill.extend(subs.into_iter().map(|v| (t, v)));
            }
            self.free_heap.push((Reverse(self.used[slot]), slot));
            if self.rows[slot].is_empty() {
                self.live -= 1;
                self.maybe_empty.push(slot);
            }
        }
        evicted
    }

    /// Places one topic group, draining `subs`: VMs already hosting the
    /// topic first (marginal cost `ev` per pair), then most-free VMs via
    /// the lazy heap (`(k+1)·ev`), then fresh VMs (tombstoned slots are
    /// reused lowest-first). The caller must have checked
    /// `rate.pair_cost() <= capacity`.
    pub fn place_group(
        &mut self,
        t: TopicId,
        rate: Rate,
        subs: &mut Vec<SubscriberId>,
        capacity: Bandwidth,
    ) {
        debug_assert!(
            rate.pair_cost() <= capacity,
            "caller must reject infeasible topics"
        );
        self.ensure_topics(t.index() + 1);

        // Pass 1: co-hosts in ascending slot order.
        for hi in 0..self.hosts[t.index()].len() {
            if subs.is_empty() {
                break;
            }
            let slot = self.hosts[t.index()][hi] as usize;
            let free = capacity.saturating_sub(self.used[slot]);
            let take = (free.div_rate(rate) as usize).min(subs.len());
            if take == 0 {
                continue;
            }
            let pos = self.rows[slot]
                .binary_search_by_key(&t, |&(tt, _)| tt)
                .expect("reverse index names a host");
            let row = &mut self.rows[slot][pos].1;
            for v in subs.drain(..take) {
                let at = row.binary_search(&v).unwrap_or_else(|at| at);
                row.insert(at, v);
            }
            let added = rate * take as u64;
            self.used[slot] += added;
            self.total_used += u128::from(added.get());
            self.free_heap.push((Reverse(self.used[slot]), slot));
        }

        // Pass 2: most-free live VM, lazily validated.
        while !subs.is_empty() {
            let slot = loop {
                let Some(&(Reverse(used), slot)) = self.free_heap.peek() else {
                    break None;
                };
                if self.tombstone[slot] || self.used[slot] != used {
                    self.free_heap.pop(); // stale
                    continue;
                }
                break Some(slot);
            };
            let Some(slot) = slot else {
                break;
            };
            let free = capacity.saturating_sub(self.used[slot]);
            if free < rate.pair_cost() {
                break; // no existing VM can take a first pair
            }
            let take = ((free.div_rate(rate) - 1) as usize).min(subs.len());
            let (pos, hosted) = match self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                Ok(pos) => (pos, true),
                Err(pos) => (pos, false),
            };
            if !hosted {
                self.rows[slot].insert(pos, (t, Vec::new()));
                let hat = self.hosts[t.index()]
                    .binary_search(&(slot as u32))
                    .unwrap_or_else(|at| at);
                self.hosts[t.index()].insert(hat, slot as u32);
            }
            let was_empty = self.rows[slot].len() == 1 && self.rows[slot][0].1.is_empty();
            let row = &mut self.rows[slot][pos].1;
            for v in subs.drain(..take) {
                let at = row.binary_search(&v).unwrap_or_else(|at| at);
                row.insert(at, v);
            }
            if was_empty {
                self.live += 1;
            }
            let added = rate * (take as u64 + if hosted { 0 } else { 1 });
            self.used[slot] += added;
            self.total_used += u128::from(added.get());
            self.free_heap.push((Reverse(self.used[slot]), slot));
        }

        // Pass 3: fresh VMs.
        while !subs.is_empty() {
            let take = ((capacity.div_rate(rate) - 1) as usize).min(subs.len());
            let mut moved: Vec<SubscriberId> = subs.drain(..take).collect();
            moved.sort_unstable();
            let used = rate * (take as u64 + 1);
            let slot = match self.free_slots.pop() {
                Some(Reverse(slot)) => {
                    self.tombstone[slot] = false;
                    self.rows[slot] = vec![(t, moved)];
                    self.used[slot] = used;
                    slot
                }
                None => {
                    self.rows.push(vec![(t, moved)]);
                    self.used.push(used);
                    self.tombstone.push(false);
                    self.rows.len() - 1
                }
            };
            let hat = self.hosts[t.index()]
                .binary_search(&(slot as u32))
                .unwrap_or_else(|at| at);
            self.hosts[t.index()].insert(hat, slot as u32);
            self.total_used += u128::from(used.get());
            self.free_heap.push((Reverse(used), slot));
            self.live += 1;
        }
    }

    /// Tombstones every VM emptied since the last sweep (their slots are
    /// reused by future fresh VMs). Returns how many were released.
    pub fn release_empty(&mut self) -> usize {
        let mut released = 0usize;
        let pending = std::mem::take(&mut self.maybe_empty);
        for slot in pending {
            if !self.tombstone[slot] && self.rows[slot].is_empty() {
                self.tombstone[slot] = true;
                self.free_slots.push(Reverse(slot));
                released += 1;
            }
        }
        released
    }

    /// Recomputes every live VM's used counter from its rows under the
    /// current rates — the `O(fleet)` fallback for resyncing after
    /// [`adopt`](crate::incremental::IncrementalReallocator::adopt), where
    /// no previous-epoch rates exist to delta against. Topics at or above
    /// the workload's topic count must have been dropped first.
    pub fn recompute_used(&mut self, workload: &Workload) {
        self.total_used = 0;
        for slot in 0..self.rows.len() {
            if self.tombstone[slot] {
                continue;
            }
            let mut used = Bandwidth::ZERO;
            for (t, subs) in &self.rows[slot] {
                used += workload.rate(*t) * (subs.len() as u64 + 1);
            }
            self.used[slot] = used;
            self.total_used += u128::from(used.get());
            self.free_heap.push((Reverse(used), slot));
        }
    }

    /// Drops every group whose topic index is `>= num_topics` (the
    /// workload shrank), charging usage at the rates recorded in `used` —
    /// callers pass the previous epoch's rate via
    /// [`FleetLedger::drop_topic`]; this sweep exists for the adopt path
    /// where [`FleetLedger::recompute_used`] follows anyway.
    pub fn drop_topics_at_or_above(&mut self, num_topics: usize) {
        for ti in num_topics..self.hosts.len() {
            let t = TopicId::new(ti as u32);
            for hi in 0..self.hosts[ti].len() {
                let slot = self.hosts[ti][hi] as usize;
                if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                    self.rows[slot].remove(pos);
                    if self.rows[slot].is_empty() {
                        self.live -= 1;
                        self.maybe_empty.push(slot);
                    }
                }
            }
            self.hosts[ti].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_model::Workload;

    fn t(i: u32) -> TopicId {
        TopicId::new(i)
    }
    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    fn workload(rates: &[u64]) -> Workload {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = rates
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        // Everyone follows everything so any pair is legal.
        for _ in 0..16 {
            b.add_subscriber(ts.iter().copied()).unwrap();
        }
        b.build()
    }

    fn ledger_with(groups: Vec<VmRows>, w: &Workload, capacity: Bandwidth) -> FleetLedger {
        FleetLedger::from_allocation(&Allocation::from_groups(groups, w, capacity))
    }

    #[test]
    fn from_allocation_round_trips() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let groups = vec![
            vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])],
            vec![(t(1), vec![v(0)])],
        ];
        let ledger = ledger_with(groups.clone(), &w, cap);
        assert_eq!(ledger.vm_count(), 2);
        assert_eq!(
            ledger.to_allocation(cap),
            Allocation::from_groups(groups, &w, cap)
        );
    }

    #[test]
    fn remove_pair_updates_usage_and_releases_empties() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(vec![vec![(t(0), vec![v(0), v(1)])]], &w, cap);
        assert!(ledger.remove_pair(t(0), v(0), Rate::new(10)));
        // 2 pairs + incoming = 30 → one pair + incoming = 20.
        assert_eq!(ledger.to_allocation(cap).total_bandwidth().get(), 20);
        assert!(ledger.remove_pair(t(0), v(1), Rate::new(10)));
        assert!(
            !ledger.remove_pair(t(0), v(1), Rate::new(10)),
            "no-op twice"
        );
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 0);
        assert_eq!(ledger.to_allocation(cap).vm_count(), 0);
    }

    #[test]
    fn refresh_rate_flags_overflow_and_eviction_sheds_cheapest_group() {
        let w = workload(&[30, 4]);
        let cap = Bandwidth::new(100);
        // used = 30·(2+1) + 4·(1+1) = 98.
        let mut ledger = ledger_with(
            vec![vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])]],
            &w,
            cap,
        );
        ledger.refresh_rate(t(0), Rate::new(30), Rate::new(31));
        let mut spill = Vec::new();
        let evicted = ledger.evict_overflowing(&w, cap, &mut spill);
        // New usage 101 > 100: the cheap t1 group (cost 8) goes first.
        assert_eq!(evicted, 1);
        assert_eq!(spill, vec![(t(1), v(2))]);
    }

    #[test]
    fn place_group_prefers_cohost_then_most_free_then_fresh() {
        let w = workload(&[10, 2]);
        let cap = Bandwidth::new(64);
        // VM0 hosts t0 with room for 1 more pair; VM1 is nearly full.
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0), v(1), v(2)])], // used 40, free 24
                vec![(t(1), vec![v(0), v(1)])],       // used 6, free 58
            ],
            &w,
            cap,
        );
        let mut subs = vec![v(3), v(4), v(5), v(6), v(7), v(8), v(9), v(10)];
        ledger.place_group(t(0), Rate::new(10), &mut subs, cap);
        assert!(subs.is_empty());
        let a = ledger.to_allocation(cap);
        // Co-host takes 2 (24/10), most-free VM1 takes 4 (58/10 − 1),
        // fresh VM takes the remaining 2.
        assert_eq!(a.vm_count(), 3);
        assert_eq!(a.vms()[0].pair_count(), 5);
        assert_eq!(a.vms()[1].pair_count(), 2 + 4);
        assert_eq!(a.vms()[2].pair_count(), 2);
        for vm in a.vms() {
            assert!(vm.used() <= cap);
        }
    }

    #[test]
    fn tombstoned_slots_are_reused_lowest_first() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)])],
                vec![(t(0), vec![v(1), v(2), v(3), v(4)])],
            ],
            &w,
            cap,
        );
        ledger.remove_pair(t(0), v(0), Rate::new(10));
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 1);
        // A fresh placement must first fill the co-host, then reuse slot 0.
        let mut subs = (5..14).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &mut subs, cap);
        assert!(subs.is_empty());
        assert_eq!(ledger.vm_count(), 2);
        let a = ledger.to_allocation(cap);
        assert_eq!(a.vm_count(), 2);
    }

    #[test]
    fn drop_topic_clears_groups_everywhere() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)]), (t(1), vec![v(1)])],
                vec![(t(1), vec![v(2)])],
            ],
            &w,
            cap,
        );
        ledger.drop_topic(t(1), Rate::new(5));
        assert!(
            !ledger.remove_pair(t(1), v(1), Rate::new(5)),
            "already gone"
        );
        let a = ledger.to_allocation(cap);
        assert_eq!(a.pair_count(), 1);
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 1);
    }

    #[test]
    fn utilization_tracks_live_vms_only() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(40);
        let mut ledger = ledger_with(
            vec![vec![(t(0), vec![v(0)])], vec![(t(0), vec![v(1)])]],
            &w,
            cap,
        );
        // Each VM: 20/40.
        assert!((ledger.utilization(cap) - 0.5).abs() < 1e-9);
        ledger.remove_pair(t(0), v(1), Rate::new(10));
        ledger.release_empty();
        assert!((ledger.utilization(cap) - 0.5).abs() < 1e-9);
    }
}
