//! E-FIG8–12: Twitter trace distribution analysis (Appendix D).
//!
//! Run with: `cargo run --release -p mcss_bench --bin fig8_12_trace_analysis`
//! Size override: `MCSS_TWITTER_USERS` (default 100000 here — analysis is
//! cheap, so a bigger sample gives cleaner tails).

use mcss_bench::experiments::fig_trace_analysis;
use mcss_bench::scenario::env_size;

fn main() {
    let users = env_size("MCSS_TWITTER_USERS", 100_000);
    print!("{}", fig_trace_analysis(users, 20131030));
}
