//! Runs every experiment (Figs. 1–12 plus the extension figures) and
//! archives the reports under `results/`, along with the machine-readable
//! perf baselines (`BENCH_*.json`) at the repository root. Any `BENCH_*`
//! write failure makes the run exit non-zero — the perf trajectory must
//! never silently go missing.
//!
//! Run with: `cargo run --release -p mcss_bench --bin run_all`
//! A single figure: `cargo run --release -p mcss_bench --bin run_all -- --only fig_store_load`
//! Size overrides: `MCSS_SPOTIFY_SUBS`, `MCSS_TWITTER_USERS`,
//! `MCSS_CHURN_XL_SUBS`, `MCSS_STORE_XL_SUBS`, `MCSS_CHURN_THREADS`.

use cloud_cost::instances;
use mcss_bench::experiments;
use mcss_bench::scenario::{env_size, Scenario};
use std::cell::LazyCell;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Names accepted by `--only`, one per figure block below.
const FIGURES: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4_5",
    "fig6_7",
    "fig8_12",
    "fig_sharded",
    "fig_solve",
    "fig_churn",
    "fig_serve",
    "fig_failures",
    "fig_mixed",
    "fig_packing",
    "fig_store_load",
];

fn save(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("{content}");
    println!("-> saved {}\n", path.display());
}

/// Writes a machine-readable benchmark baseline; returns false (instead
/// of panicking) so `main` can finish the remaining experiments and still
/// exit non-zero.
fn save_bench_json(path: &Path, content: &str) -> bool {
    match fs::write(path, content) {
        Ok(()) => {
            println!("-> saved {}\n", path.display());
            true
        }
        Err(e) => {
            eprintln!("error: writing {}: {e}", path.display());
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--only" => match it.next() {
                Some(name) => only = Some(name.clone()),
                None => {
                    eprintln!(
                        "error: --only needs a figure name (one of: {})",
                        FIGURES.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}` (usage: run_all [--only FIGURE])");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(name) = &only {
        if !FIGURES.contains(&name.as_str()) {
            eprintln!(
                "error: unknown figure `{name}` (one of: {})",
                FIGURES.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    let wants = |name: &str| only.as_deref().is_none_or(|o| o == name);

    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let started = Instant::now();
    let mut bench_writes_ok = true;

    // Built on first use, so `--only` runs skip the scenarios they never
    // touch (a `--only fig_store_load` CI leg never builds twitter).
    let spotify =
        LazyCell::new(|| Scenario::spotify(env_size("MCSS_SPOTIFY_SUBS", 100_000), 20140113));
    let twitter =
        LazyCell::new(|| Scenario::twitter(env_size("MCSS_TWITTER_USERS", 20_000), 20131030));

    if wants("fig1") {
        save(dir, "fig1_example.txt", &experiments::fig1_example());
    }

    if wants("fig2") {
        let mut fig2 = String::from("== Fig. 2a ==\n");
        fig2.push_str(&experiments::fig_cost_metrics(
            &spotify,
            instances::C3_LARGE,
        ));
        fig2.push_str("\n== Fig. 2b ==\n");
        fig2.push_str(&experiments::fig_cost_metrics(
            &spotify,
            instances::C3_XLARGE,
        ));
        save(dir, "fig2_spotify_cost.txt", &fig2);
    }

    if wants("fig3") {
        let mut fig3 = String::from("== Fig. 3a ==\n");
        fig3.push_str(&experiments::fig_cost_metrics(
            &twitter,
            instances::C3_LARGE,
        ));
        fig3.push_str("\n== Fig. 3b ==\n");
        fig3.push_str(&experiments::fig_cost_metrics(
            &twitter,
            instances::C3_XLARGE,
        ));
        save(dir, "fig3_twitter_cost.txt", &fig3);
    }

    if wants("fig4_5") {
        let mut fig45 = String::from("== Fig. 4 (Spotify) ==\n");
        fig45.push_str(&experiments::fig_stage1_runtime(
            &spotify,
            instances::C3_LARGE,
            3,
        ));
        fig45.push_str("\n== Fig. 5 (Twitter) ==\n");
        fig45.push_str(&experiments::fig_stage1_runtime(
            &twitter,
            instances::C3_LARGE,
            3,
        ));
        save(dir, "fig4_5_stage1_runtime.txt", &fig45);
    }

    if wants("fig6_7") {
        let mut fig67 = String::from("== Fig. 6 (Spotify, c3.large) ==\n");
        fig67.push_str(&experiments::fig_stage2_runtime(
            &spotify,
            instances::C3_LARGE,
            3,
        ));
        fig67.push_str("\n== Fig. 7 (Twitter, c3.large) ==\n");
        fig67.push_str(&experiments::fig_stage2_runtime(
            &twitter,
            instances::C3_LARGE,
            2,
        ));
        save(dir, "fig6_7_stage2_runtime.txt", &fig67);
    }

    if wants("fig8_12") {
        save(
            dir,
            "fig8_12_trace_analysis.txt",
            &experiments::fig_trace_analysis(env_size("MCSS_TWITTER_USERS", 100_000), 20131030),
        );
    }

    if wants("fig_sharded") {
        let mut sharded = String::from("== sharded vs monolithic (Spotify) ==\n");
        sharded.push_str(&experiments::fig_sharded_speedup(
            &spotify,
            instances::C3_LARGE,
            100,
        ));
        sharded.push_str("\n== sharded vs monolithic (Twitter) ==\n");
        sharded.push_str(&experiments::fig_sharded_speedup(
            &twitter,
            instances::C3_LARGE,
            100,
        ));
        save(dir, "sharded_speedup.txt", &sharded);
    }

    if wants("fig_solve") {
        let (solve_text, solve_json) =
            experiments::fig_solve_speedup(&[&spotify, &twitter], instances::C3_LARGE, 100, 5);
        let mut solve = String::from("== cold solve: arena vs legacy (Spotify + Twitter) ==\n");
        solve.push_str(&solve_text);
        save(dir, "solve_speedup.txt", &solve);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_solve.json"), &solve_json);
    }

    if wants("fig_churn") {
        // Scale-up case: a million-subscriber Spotify workload, 1% churn,
        // with the shard-parallel repair column enabled.
        let churn_threads = env_size("MCSS_CHURN_THREADS", 4);
        let churn_xl = Scenario::spotify(env_size("MCSS_CHURN_XL_SUBS", 1_000_000), 20140113);
        let churn_cases = [
            experiments::ChurnCase {
                scenario: &spotify,
                churn_levels: &[1, 5, 20],
                threads: churn_threads,
            },
            experiments::ChurnCase {
                scenario: &churn_xl,
                churn_levels: &[1],
                threads: churn_threads,
            },
        ];
        let (churn_text, churn_json) =
            experiments::fig_churn_speedup(&churn_cases, instances::C3_LARGE, 100, 6);
        let mut churn = String::from("== churn-path repair vs full re-select (Spotify) ==\n");
        churn.push_str(&churn_text);
        save(dir, "churn_speedup.txt", &churn);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_churn.json"), &churn_json);
    }

    if wants("fig_serve") {
        let (serve_text, serve_json) =
            experiments::fig_serve(&spotify, instances::C3_LARGE, 100, 6);
        let mut serve = String::from("== event-sourced serve daemon (Spotify) ==\n");
        serve.push_str(&serve_text);
        save(dir, "serve_daemon.txt", &serve);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_serve.json"), &serve_json);
    }

    if wants("fig_failures") {
        let (drill_text, drill_json) =
            experiments::fig_failure_drills(&spotify, instances::C3_LARGE, 100);
        let mut drills = String::from("== SLA-budgeted failure drills (Spotify) ==\n");
        drills.push_str(&drill_text);
        save(dir, "failure_drills.txt", &drills);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_failures.json"), &drill_json);
    }

    if wants("fig_mixed") {
        let (mixed_text, mixed_json) = experiments::fig_mixed_fleet(&[&spotify, &twitter], 100, 4);
        let mut mixed = String::from("== mixed fleet vs best homogeneous (Spotify + Twitter) ==\n");
        mixed.push_str(&mixed_text);
        save(dir, "mixed_fleet.txt", &mixed);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_mixed.json"), &mixed_json);
    }

    if wants("fig_packing") {
        let (packing_text, packing_json) =
            experiments::fig_packing_frontier(&[&spotify, &twitter], 100);
        let mut packing =
            String::from("== anytime Stage-2 packing frontier (Spotify + Twitter) ==\n");
        packing.push_str(&packing_text);
        save(dir, "packing_frontier.txt", &packing);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_packing.json"), &packing_json);
    }

    if wants("fig_store_load") {
        // Scale-up case: the zero-rebuild claim matters most at a
        // million subscribers, where the trace re-parse pays seconds.
        let store_xl = Scenario::spotify(env_size("MCSS_STORE_XL_SUBS", 1_000_000), 20140113);
        let (store_text, store_json) =
            experiments::fig_store_load(&[&spotify, &store_xl], instances::C3_LARGE, 100, 3);
        let mut store =
            String::from("== zero-rebuild cold start: MCSSTOR1 store vs trace parse ==\n");
        store.push_str(&store_text);
        save(dir, "store_load.txt", &store);
        bench_writes_ok &= save_bench_json(Path::new("BENCH_store.json"), &store_json);
    }

    println!(
        "all experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if bench_writes_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: one or more BENCH_*.json baselines failed to write");
        ExitCode::FAILURE
    }
}
