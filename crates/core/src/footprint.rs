//! Memory accounting for the solver's resident structures.
//!
//! At 10⁶–10⁷ subscribers the churn path is memory-bound before it is
//! compute-bound: every epoch streams the workload arenas, the previous
//! selection, and the fleet ledger through cache. [`MemoryFootprint`]
//! reports the allocated bytes behind each of them — by *capacity*, so
//! construction slack (doubling growth, over-reservation) is visible —
//! normalized to bytes per subscriber, the figure the scale-up benches
//! record alongside ns/epoch.

use crate::{FleetLedger, Selection};
use pubsub_model::{Workload, WorkloadFootprint};
use std::fmt;

/// Bytes-per-subscriber report over the structures a long-running churn
/// loop keeps resident: the workload arenas, the previous epoch's
/// selection, and the fleet ledger. Built by [`MemoryFootprint::measure`];
/// surfaced by `mcss analyze` and recorded in `BENCH_churn.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Per-arena workload bytes.
    pub workload: WorkloadFootprint,
    /// Selection CSR bytes (0 when no selection was measured).
    pub selection_bytes: usize,
    /// Fleet-ledger bytes (0 when no ledger was measured).
    pub ledger_bytes: usize,
    /// Subscriber count the per-subscriber figures are normalized by.
    pub subscribers: usize,
}

impl MemoryFootprint {
    /// Measures a workload plus whatever epoch state the caller has.
    /// `mcss analyze` passes `None` for both (it sees only the trace);
    /// the churn bench passes the reallocator's checkpointed selection
    /// and ledger.
    pub fn measure(
        workload: &Workload,
        selection: Option<&Selection>,
        ledger: Option<&FleetLedger>,
    ) -> MemoryFootprint {
        MemoryFootprint {
            workload: workload.footprint(),
            selection_bytes: selection.map_or(0, Selection::heap_bytes),
            ledger_bytes: ledger.map_or(0, FleetLedger::heap_bytes),
            subscribers: workload.num_subscribers(),
        }
    }

    /// Total allocated bytes across every measured structure.
    pub fn total_bytes(&self) -> usize {
        self.workload.total() + self.selection_bytes + self.ledger_bytes
    }

    /// `total_bytes / subscribers` (0.0 for an empty workload).
    pub fn bytes_per_subscriber(&self) -> f64 {
        if self.subscribers == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.subscribers as f64
        }
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory footprint ({} subscribers):", self.subscribers)?;
        writeln!(f, "{}", self.workload)?;
        if self.selection_bytes > 0 {
            writeln!(f, "  selection:        {:>12} B", self.selection_bytes)?;
        }
        if self.ledger_bytes > 0 {
            writeln!(f, "  fleet ledger:     {:>12} B", self.ledger_bytes)?;
        }
        writeln!(f, "  total:            {:>12} B", self.total_bytes())?;
        write!(
            f,
            "  bytes/subscriber: {:>15.2}",
            self.bytes_per_subscriber()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_model::Rate;

    #[test]
    fn footprint_counts_every_arena_and_normalizes() {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(20)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t1]).unwrap();
        let w = b.build();

        let fp = MemoryFootprint::measure(&w, None, None);
        assert_eq!(fp.subscribers, 2);
        assert_eq!(fp.selection_bytes, 0);
        assert_eq!(fp.ledger_bytes, 0);
        // Every arena is non-empty on a non-trivial workload.
        let wf = fp.workload;
        for part in [
            wf.rates,
            wf.interest_offsets,
            wf.interest_topics,
            wf.ranked_topics,
            wf.follower_offsets,
            wf.follower_ids,
        ] {
            assert!(part > 0, "empty arena in {wf:?}");
        }
        assert_eq!(fp.total_bytes(), wf.total());
        assert!(fp.bytes_per_subscriber() > 0.0);
        let rendered = fp.to_string();
        assert!(rendered.contains("bytes/subscriber"));
    }

    #[test]
    fn empty_workload_reports_zero_per_subscriber() {
        let w = Workload::builder().build();
        let fp = MemoryFootprint::measure(&w, None, None);
        assert_eq!(fp.bytes_per_subscriber(), 0.0);
    }
}
