//! The end-to-end two-stage solver pipeline with timing and reporting.

use crate::shard::{ShardedSolver, ShardingConfig};
use crate::stage1::{
    GreedySelectPairs, OptimalSelectPairs, PairSelector, RandomSelectPairs, SharedAwareGreedy,
};
use crate::stage2::{
    improve, improve_mixed, mixed_cost_split, Allocator, CbpConfig, CustomBinPacking,
    FfdBinPacking, FirstFitBinPacking, ImproveReport, MixedFleetPacker, SearchBudget,
};
use crate::{lower_bound, Allocation, McssError, McssInstance, Selection};
use cloud_cost::{CostModel, FleetCostModel, Money};
use pubsub_model::Bandwidth;
use std::fmt;
use std::time::{Duration, Instant};

/// Which Stage-1 selector the pipeline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectorKind {
    /// GreedySelectPairs (Alg. 2).
    Greedy,
    /// GreedySelectPairs parallelized over subscribers.
    GreedyParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// RandomSelectPairs (Alg. 6) with a shuffle seed.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Per-subscriber covering-knapsack optimum (budgeted).
    Optimal,
    /// Shared-incoming-aware greedy (extension).
    SharedAware,
}

impl SelectorKind {
    pub(crate) fn build(&self) -> Box<dyn PairSelector> {
        match *self {
            SelectorKind::Greedy => Box::new(GreedySelectPairs::new()),
            SelectorKind::GreedyParallel { threads } => {
                Box::new(GreedySelectPairs::with_threads(threads))
            }
            SelectorKind::Random { seed } => Box::new(RandomSelectPairs::new(seed)),
            SelectorKind::Optimal => Box::new(OptimalSelectPairs::new()),
            SelectorKind::SharedAware => Box::new(SharedAwareGreedy::new()),
        }
    }

    /// The short report name of the selector this kind builds.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::Greedy | SelectorKind::GreedyParallel { .. } => "GSP",
            SelectorKind::Random { .. } => "RSP",
            SelectorKind::Optimal => "OPT1",
            SelectorKind::SharedAware => "GSP-shared",
        }
    }
}

/// Which Stage-2 allocator the pipeline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// FFBinPacking (Alg. 3).
    FirstFit,
    /// FFD over whole topic groups — the Dósa-bounded reference baseline.
    FirstFitDecreasing,
    /// CustomBinPacking (Alg. 4) with explicit optimization toggles.
    Custom(CbpConfig),
}

impl AllocatorKind {
    /// CBP with every optimization enabled — the paper's full solution.
    pub fn custom_full() -> Self {
        AllocatorKind::Custom(CbpConfig::full())
    }

    pub(crate) fn build(&self) -> Box<dyn Allocator> {
        match *self {
            AllocatorKind::FirstFit => Box::new(FirstFitBinPacking::new()),
            AllocatorKind::FirstFitDecreasing => Box::new(FfdBinPacking::new()),
            AllocatorKind::Custom(cfg) => Box::new(CustomBinPacking::new(cfg)),
        }
    }

    /// The short report name of the allocator this kind builds.
    pub fn name(&self) -> &'static str {
        match self {
            AllocatorKind::FirstFit => "FFBP",
            AllocatorKind::FirstFitDecreasing => "FFD",
            AllocatorKind::Custom(_) => "CBP",
        }
    }
}

/// Pipeline configuration: one selector, one allocator, and optionally a
/// shard-parallel execution plan.
#[derive(Clone, Copy, Debug)]
pub struct SolverParams {
    /// Stage-1 algorithm.
    pub selector: SelectorKind,
    /// Stage-2 algorithm.
    pub allocator: AllocatorKind,
    /// When set with `shards ≥ 2`, the solve partitions subscribers and
    /// runs both stages per shard in parallel (see
    /// [`ShardedSolver`](crate::ShardedSolver)); `None` or one shard is
    /// the classic monolithic pipeline.
    pub sharding: Option<ShardingConfig>,
    /// When set, Stage 2's output is post-processed by the anytime
    /// improvement engine ([`stage2::improve`](crate::stage2::improve))
    /// under this budget, stopping early at the Alg. 5 lower-bound
    /// certificate; `None` skips refinement (the classic pipeline).
    pub refine: Option<SearchBudget>,
}

impl SolverParams {
    /// Returns these parameters with a sharded execution plan.
    pub fn with_sharding(mut self, sharding: ShardingConfig) -> Self {
        self.sharding = Some(sharding);
        self
    }

    /// Returns these parameters with an anytime refinement budget.
    pub fn with_refinement(mut self, budget: SearchBudget) -> Self {
        self.refine = Some(budget);
        self
    }
}

impl Default for SolverParams {
    /// The paper's recommended combination: GSP + fully-optimized CBP,
    /// monolithic.
    fn default() -> Self {
        SolverParams {
            selector: SelectorKind::Greedy,
            allocator: AllocatorKind::custom_full(),
            sharding: None,
            refine: None,
        }
    }
}

/// The two-stage MCSS solver.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Solver {
    params: SolverParams,
}

/// Everything `solve` produces: the allocation, the Stage-1 selection it
/// packed, and the metrics report.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The VM allocation (Stage-2 output), refined when
    /// [`SolverParams::refine`] is set.
    pub allocation: Allocation,
    /// The pair selection (Stage-1 output).
    pub selection: Selection,
    /// Metrics, costs, timings, and the Alg. 5 lower bound.
    pub report: SolveReport,
    /// What the anytime refinement did; `None` when
    /// [`SolverParams::refine`] is unset.
    pub refinement: Option<ImproveReport>,
}

/// Metrics of one pipeline run — the quantities plotted in Figs. 2–7.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Stage-1 algorithm name.
    pub selector: &'static str,
    /// Stage-2 algorithm name.
    pub allocator: &'static str,
    /// `|S|` — pairs selected.
    pub pairs_selected: u64,
    /// VMs deployed `|B|`.
    pub vm_count: usize,
    /// `Σ_b bw_b`.
    pub total_bandwidth: Bandwidth,
    /// Outgoing share of the bandwidth.
    pub outgoing: Bandwidth,
    /// Incoming share (replicated per VM hosting each topic).
    pub incoming: Bandwidth,
    /// `C1(|B|)`.
    pub vm_cost: Money,
    /// `C2(Σ bw)`.
    pub bandwidth_cost: Money,
    /// The objective `C1 + C2`.
    pub total_cost: Money,
    /// Shards the solve ran over (1 = monolithic).
    pub shards: usize,
    /// Alg. 5 bound on VMs.
    pub lower_bound_vms: u64,
    /// Alg. 5 bound on volume.
    pub lower_bound_volume: Bandwidth,
    /// Alg. 5 bound on cost.
    pub lower_bound_cost: Money,
    /// Wall-clock time of Stage 1.
    pub stage1_time: Duration,
    /// Wall-clock time of Stage 2.
    pub stage2_time: Duration,
}

impl SolveReport {
    /// Ratio of achieved cost to the lower bound (≥ 1.0; the paper reports
    /// "only 15% worse than the lower bound in many cases", i.e. ≈ 1.15).
    pub fn optimality_gap(&self) -> f64 {
        let lb = self.lower_bound_cost.micros();
        if lb <= 0 {
            return 1.0;
        }
        self.total_cost.micros() as f64 / lb as f64
    }
}

impl fmt::Display for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shards > 1 {
            writeln!(
                f,
                "pipeline:        {} + {} over {} shards",
                self.selector, self.allocator, self.shards
            )?;
        } else {
            writeln!(f, "pipeline:        {} + {}", self.selector, self.allocator)?;
        }
        writeln!(f, "pairs selected:  {}", self.pairs_selected)?;
        writeln!(
            f,
            "VMs:             {} (lower bound {})",
            self.vm_count, self.lower_bound_vms
        )?;
        writeln!(
            f,
            "bandwidth:       {} (out {}, in {}; lower bound {})",
            self.total_bandwidth, self.outgoing, self.incoming, self.lower_bound_volume
        )?;
        writeln!(
            f,
            "cost:            {} = {} VMs + {} bandwidth (lower bound {}, gap {:.2}x)",
            self.total_cost,
            self.vm_cost,
            self.bandwidth_cost,
            self.lower_bound_cost,
            self.optimality_gap()
        )?;
        write!(
            f,
            "time:            stage1 {:.3}s, stage2 {:.3}s",
            self.stage1_time.as_secs_f64(),
            self.stage2_time.as_secs_f64()
        )
    }
}

/// Everything [`Solver::solve_mixed`] produces: the typed allocation, the
/// Stage-1 selection, and the mixed-fleet metrics.
#[derive(Clone, Debug)]
pub struct MixedSolveOutcome {
    /// The mixed-fleet allocation; always carries a
    /// [`FleetTyping`](crate::FleetTyping).
    pub allocation: Allocation,
    /// The pair selection (identical to what any homogeneous solve of the
    /// same `τ` selects — Stage 1 never reads capacities).
    pub selection: Selection,
    /// Metrics of the mixed solve.
    pub report: MixedSolveReport,
    /// What the anytime refinement did; `None` when
    /// [`SolverParams::refine`] is unset.
    pub refinement: Option<ImproveReport>,
}

/// Metrics of one mixed-fleet solve.
#[derive(Clone, Debug)]
pub struct MixedSolveReport {
    /// Stage-1 algorithm name.
    pub selector: &'static str,
    /// `|S|` — pairs selected.
    pub pairs_selected: u64,
    /// VMs per tier: `(instance name, count)`, density order, zero-count
    /// tiers included.
    pub tier_counts: Vec<(&'static str, usize)>,
    /// Total VMs across tiers.
    pub vm_count: usize,
    /// `Σ_b bw_b`.
    pub total_bandwidth: Bandwidth,
    /// `Σ_i C1_i(n_i)` — per-tier VM rental.
    pub vm_cost: Money,
    /// `C2(Σ bw)`.
    pub bandwidth_cost: Money,
    /// The mixed objective `Σ_i C1_i(n_i) + C2(Σ bw)`.
    pub total_cost: Money,
    /// Human-readable fleet mix, e.g. `"3×c3.large + 1×c3.xlarge"`.
    pub mix: String,
    /// Alg. 5 bound on VMs (at the fleet-wide `max_capacity`).
    pub lower_bound_vms: u64,
    /// Alg. 5 bound on volume.
    pub lower_bound_volume: Bandwidth,
    /// Mixed-fleet bound on cost
    /// ([`LowerBound::cost_on_fleet`](crate::LowerBound::cost_on_fleet)).
    pub lower_bound_cost: Money,
    /// Wall-clock time of Stage 1.
    pub stage1_time: Duration,
    /// Wall-clock time of Stage 2.
    pub stage2_time: Duration,
}

impl MixedSolveReport {
    /// Ratio of achieved cost to the mixed-fleet lower bound (≥ 1.0).
    pub fn optimality_gap(&self) -> f64 {
        let lb = self.lower_bound_cost.micros();
        if lb <= 0 {
            return 1.0;
        }
        self.total_cost.micros() as f64 / lb as f64
    }
}

impl fmt::Display for MixedSolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline:        {} + mixed-fleet packing",
            self.selector
        )?;
        writeln!(f, "pairs selected:  {}", self.pairs_selected)?;
        writeln!(f, "fleet:           {} VMs ({})", self.vm_count, self.mix)?;
        writeln!(
            f,
            "bandwidth:       {} (lower bound {})",
            self.total_bandwidth, self.lower_bound_volume
        )?;
        writeln!(
            f,
            "cost:            {} = {} VMs + {} bandwidth (lower bound {}, gap {:.2}x)",
            self.total_cost,
            self.vm_cost,
            self.bandwidth_cost,
            self.lower_bound_cost,
            self.optimality_gap()
        )?;
        write!(
            f,
            "time:            stage1 {:.3}s, stage2 {:.3}s",
            self.stage1_time.as_secs_f64(),
            self.stage2_time.as_secs_f64()
        )
    }
}

impl Solver {
    /// Creates a solver with the given parameters.
    pub fn new(params: SolverParams) -> Self {
        Solver { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> SolverParams {
        self.params
    }

    /// Runs Stage 1 then Stage 2 — monolithically, or shard-parallel when
    /// [`SolverParams::sharding`] asks for two or more shards — validates
    /// nothing (callers validate via [`Allocation::validate`]), and
    /// reports metrics including the Alg. 5 lower bound.
    ///
    /// ```
    /// use cloud_cost::{instances, Ec2CostModel};
    /// use mcss_core::{McssInstance, Solver};
    /// use pubsub_model::{Rate, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = Workload::builder();
    /// let t = b.add_topic(Rate::new(20))?;
    /// b.add_subscriber([t])?;
    /// let cost = Ec2CostModel::paper_default(instances::C3_LARGE);
    /// let instance = McssInstance::new(b.build(), Rate::new(10), cost.capacity())?;
    ///
    /// let outcome = Solver::default().solve(&instance, &cost)?;
    /// outcome.allocation.validate(instance.workload(), instance.tau())?;
    /// assert_eq!(outcome.report.total_cost,
    ///            outcome.report.vm_cost + outcome.report.bandwidth_cost);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates selector and allocator errors ([`McssError`]);
    /// [`McssError::ZeroShards`] if sharding is configured with zero
    /// shards.
    pub fn solve(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<SolveOutcome, McssError> {
        if let Some(sharding) = self.params.sharding {
            if sharding.shards == 0 {
                return Err(McssError::ZeroShards);
            }
            if sharding.shards > 1 {
                return self.solve_sharded(instance, cost, sharding);
            }
        }
        let selector = self.params.selector.build();
        let allocator = self.params.allocator.build();
        let workload = instance.workload();

        let t0 = Instant::now();
        let selection = selector.select(instance)?;
        let stage1_time = t0.elapsed();

        let t1 = Instant::now();
        let allocation = allocator.allocate(workload, &selection, instance.capacity(), cost)?;
        let stage2_time = t1.elapsed();
        let (allocation, refinement) = self.maybe_refine(instance, cost, allocation);

        let report = self.report(
            instance,
            cost,
            &selection,
            &allocation,
            1,
            stage1_time,
            stage2_time,
        );
        Ok(SolveOutcome {
            allocation,
            selection,
            report,
            refinement,
        })
    }

    /// Applies the anytime improvement pass when
    /// [`SolverParams::refine`] is set, with the Alg. 5 bound as the
    /// stopping certificate.
    fn maybe_refine(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        allocation: Allocation,
    ) -> (Allocation, Option<ImproveReport>) {
        let Some(budget) = self.params.refine else {
            return (allocation, None);
        };
        let workload = instance.workload();
        let lb = lower_bound(workload, instance.tau(), instance.capacity());
        let (refined, report) = improve(allocation, workload, cost, lb.cost(cost), budget);
        (refined, Some(report))
    }

    /// Runs Stage 1 with the configured selector, then packs onto a
    /// **heterogeneous fleet** through
    /// [`MixedFleetPacker`](crate::stage2::MixedFleetPacker). The
    /// instance's capacity should be [`FleetCostModel::max_capacity`]
    /// (the fleet-wide feasibility bound); the allocator and sharding
    /// parameters are ignored — mixed packing is monolithic and always
    /// CBP-derived.
    ///
    /// The returned fleet never costs more than the best homogeneous
    /// fleet over the same selection (the packer keeps a
    /// downsized-homogeneous candidate per tier and returns the cheapest),
    /// and satisfaction is identical — Stage 1 never reads capacities, so
    /// the selection is the same one a homogeneous solve places.
    ///
    /// ```
    /// use cloud_cost::{instances, Ec2CostModel, FleetCostModel};
    /// use mcss_core::{McssInstance, Solver};
    /// use pubsub_model::{Rate, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = Workload::builder();
    /// let news = b.add_topic(Rate::new(20))?;
    /// let music = b.add_topic(Rate::new(10))?;
    /// b.add_subscriber([news, music])?;
    /// b.add_subscriber([music])?;
    /// let fleet = FleetCostModel::new(vec![
    ///     Ec2CostModel::paper_default(instances::C3_LARGE).with_capacity_events(60),
    ///     Ec2CostModel::paper_default(instances::C3_XLARGE).with_capacity_events(120),
    /// ]);
    /// let instance = McssInstance::new(b.build(), Rate::new(15), fleet.max_capacity())?;
    /// let outcome = Solver::default().solve_mixed(&instance, &fleet)?;
    /// assert!(outcome.allocation.typing().is_some());
    /// assert_eq!(outcome.report.total_cost,
    ///            outcome.allocation.cost_on_fleet(&fleet));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates selector errors and
    /// [`McssError::InfeasibleTopic`] when a selected topic exceeds even
    /// the largest tier.
    pub fn solve_mixed(
        &self,
        instance: &McssInstance,
        fleet: &FleetCostModel,
    ) -> Result<MixedSolveOutcome, McssError> {
        let selector = self.params.selector.build();
        let workload = instance.workload();

        let t0 = Instant::now();
        let selection = selector.select(instance)?;
        let stage1_time = t0.elapsed();

        let t1 = Instant::now();
        let allocation = MixedFleetPacker::new().allocate(workload, &selection, fleet)?;
        let stage2_time = t1.elapsed();

        let lb = lower_bound(workload, instance.tau(), fleet.max_capacity());
        let (allocation, refinement) = match self.params.refine {
            Some(budget) => {
                let (refined, report) =
                    improve_mixed(allocation, workload, fleet, lb.cost_on_fleet(fleet), budget);
                (refined, Some(report))
            }
            None => (allocation, None),
        };

        let typing = allocation.typing().expect("mixed output is always typed");
        let tier_counts: Vec<(&'static str, usize)> = typing
            .tiers()
            .iter()
            .zip(typing.tier_counts())
            .map(|((ty, _), n)| (ty.name(), n))
            .collect();
        let (vm_cost, bandwidth_cost) = mixed_cost_split(&allocation, fleet);
        let report = MixedSolveReport {
            selector: self.params.selector.name(),
            pairs_selected: selection.pair_count(),
            vm_count: allocation.vm_count(),
            total_bandwidth: allocation.total_bandwidth(),
            vm_cost,
            bandwidth_cost,
            total_cost: vm_cost + bandwidth_cost,
            mix: typing.mix(),
            tier_counts,
            lower_bound_vms: lb.vms,
            lower_bound_volume: lb.volume,
            lower_bound_cost: lb.cost_on_fleet(fleet),
            stage1_time,
            stage2_time,
        };
        Ok(MixedSolveOutcome {
            allocation,
            selection,
            report,
            refinement,
        })
    }

    fn solve_sharded(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        sharding: ShardingConfig,
    ) -> Result<SolveOutcome, McssError> {
        let sharded = ShardedSolver::new(self.params, sharding).solve(instance, cost)?;
        let (allocation, refinement) = self.maybe_refine(instance, cost, sharded.allocation);
        let report = self.report(
            instance,
            cost,
            &sharded.selection,
            &allocation,
            sharding.shards,
            sharded.stage1_time,
            sharded.stage2_time,
        );
        Ok(SolveOutcome {
            allocation,
            selection: sharded.selection,
            report,
            refinement,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        selection: &Selection,
        allocation: &Allocation,
        shards: usize,
        stage1_time: Duration,
        stage2_time: Duration,
    ) -> SolveReport {
        let workload = instance.workload();
        let lb = lower_bound(workload, instance.tau(), instance.capacity());
        let total_bandwidth = allocation.total_bandwidth();
        let vm_cost = cost.vm_cost(allocation.vm_count());
        let bandwidth_cost = cost.bandwidth_cost(total_bandwidth);
        SolveReport {
            selector: self.params.selector.name(),
            allocator: self.params.allocator.name(),
            pairs_selected: selection.pair_count(),
            vm_count: allocation.vm_count(),
            total_bandwidth,
            outgoing: allocation.outgoing_volume(workload),
            incoming: allocation.incoming_volume(workload),
            vm_cost,
            bandwidth_cost,
            total_cost: vm_cost + bandwidth_cost,
            shards,
            lower_bound_vms: lb.vms,
            lower_bound_volume: lb.volume,
            lower_bound_cost: lb.cost(cost),
            stage1_time,
            stage2_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::LinearCostModel;
    use pubsub_model::{Rate, TopicId, Workload};

    fn instance() -> McssInstance {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [30u64, 18, 12, 7, 4, 2]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1], ts[2]]).unwrap();
        b.add_subscriber([ts[1], ts[3], ts[4]]).unwrap();
        b.add_subscriber([ts[2], ts[4], ts[5]]).unwrap();
        b.add_subscriber([ts[0], ts[5]]).unwrap();
        McssInstance::new(b.build(), Rate::new(16), Bandwidth::new(90)).unwrap()
    }

    fn cost() -> LinearCostModel {
        LinearCostModel::new(Money::from_dollars(3), Money::from_micros(10))
    }

    #[test]
    fn default_pipeline_solves_and_validates() {
        let inst = instance();
        let outcome = Solver::default().solve(&inst, &cost()).unwrap();
        outcome
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
        assert_eq!(outcome.report.selector, "GSP");
        assert_eq!(outcome.report.allocator, "CBP");
        assert!(outcome.report.vm_count >= 1);
        assert_eq!(
            outcome.report.total_cost,
            outcome.report.vm_cost + outcome.report.bandwidth_cost
        );
    }

    #[test]
    fn report_costs_are_consistent_with_allocation() {
        let inst = instance();
        let outcome = Solver::default().solve(&inst, &cost()).unwrap();
        assert_eq!(outcome.report.total_cost, outcome.allocation.cost(&cost()));
        assert_eq!(
            outcome.report.total_bandwidth,
            outcome.report.outgoing + outcome.report.incoming
        );
    }

    #[test]
    fn lower_bound_never_above_any_pipeline() {
        let inst = instance();
        let pipelines = [
            SolverParams {
                selector: SelectorKind::Greedy,
                allocator: AllocatorKind::FirstFit,
                ..SolverParams::default()
            },
            SolverParams {
                selector: SelectorKind::Random { seed: 3 },
                allocator: AllocatorKind::FirstFit,
                ..SolverParams::default()
            },
            SolverParams {
                selector: SelectorKind::Greedy,
                allocator: AllocatorKind::Custom(CbpConfig::grouping_only()),
                ..SolverParams::default()
            },
            SolverParams::default(),
            SolverParams {
                selector: SelectorKind::SharedAware,
                allocator: AllocatorKind::custom_full(),
                ..SolverParams::default()
            },
        ];
        for p in pipelines {
            let outcome = Solver::new(p).solve(&inst, &cost()).unwrap();
            assert!(
                outcome.report.total_cost >= outcome.report.lower_bound_cost,
                "{:?} beat the bound",
                p
            );
            assert!(outcome.report.optimality_gap() >= 1.0);
            outcome
                .allocation
                .validate(inst.workload(), inst.tau())
                .unwrap();
        }
    }

    #[test]
    fn greedy_beats_random_on_average() {
        // The paper's headline: GSP+CBP cheaper than RSP+FFBP. A single
        // lucky shuffle can win on a tiny instance, so compare against
        // the seed-averaged naive cost.
        let inst = instance();
        let good = Solver::default().solve(&inst, &cost()).unwrap();
        let naive_avg: f64 = (0..16)
            .map(|seed| {
                Solver::new(SolverParams {
                    selector: SelectorKind::Random { seed },
                    allocator: AllocatorKind::FirstFit,
                    ..SolverParams::default()
                })
                .solve(&inst, &cost())
                .unwrap()
                .report
                .total_cost
                .micros() as f64
            })
            .sum::<f64>()
            / 16.0;
        assert!(
            good.report.total_cost.micros() as f64 <= naive_avg,
            "GSP+CBP {} vs average RSP+FFBP {naive_avg}",
            good.report.total_cost
        );
    }

    #[test]
    fn parallel_greedy_matches_sequential() {
        let inst = instance();
        let seq = Solver::new(SolverParams {
            selector: SelectorKind::Greedy,
            allocator: AllocatorKind::custom_full(),
            ..SolverParams::default()
        })
        .solve(&inst, &cost())
        .unwrap();
        let par = Solver::new(SolverParams {
            selector: SelectorKind::GreedyParallel { threads: 3 },
            allocator: AllocatorKind::custom_full(),
            ..SolverParams::default()
        })
        .solve(&inst, &cost())
        .unwrap();
        assert_eq!(seq.selection, par.selection);
        assert_eq!(seq.allocation, par.allocation);
    }

    #[test]
    fn kind_names_match_built_implementations() {
        for kind in [
            SelectorKind::Greedy,
            SelectorKind::GreedyParallel { threads: 2 },
            SelectorKind::Random { seed: 1 },
            SelectorKind::Optimal,
            SelectorKind::SharedAware,
        ] {
            assert_eq!(kind.name(), kind.build().name());
        }
        for kind in [
            AllocatorKind::FirstFit,
            AllocatorKind::FirstFitDecreasing,
            AllocatorKind::custom_full(),
        ] {
            assert_eq!(kind.name(), kind.build().name());
        }
    }

    #[test]
    fn solve_mixed_is_typed_consistent_and_never_worse_than_homogeneous() {
        use cloud_cost::{Ec2CostModel, FleetCostModel, InstanceType};
        let inst0 = instance();
        let fleet = FleetCostModel::new(vec![
            Ec2CostModel::paper_default(InstanceType::new("tiny", 150_000, 64))
                .with_capacity_events(90),
            Ec2CostModel::paper_default(InstanceType::new("big", 290_000, 128))
                .with_capacity_events(180),
        ]);
        let inst = McssInstance::new(
            std::sync::Arc::clone(&inst0.workload_arc()),
            inst0.tau(),
            fleet.max_capacity(),
        )
        .unwrap();
        let mixed = Solver::default().solve_mixed(&inst, &fleet).unwrap();
        mixed
            .allocation
            .validate(inst.workload(), inst.tau())
            .unwrap();
        assert_eq!(
            mixed.report.total_cost,
            mixed.allocation.cost_on_fleet(&fleet)
        );
        assert_eq!(
            mixed.report.vm_count,
            mixed
                .report
                .tier_counts
                .iter()
                .map(|(_, n)| n)
                .sum::<usize>()
        );
        // Same selection as any homogeneous solve of the same τ.
        for tier in 0..fleet.tier_count() {
            let homog_inst = inst.with_capacity(fleet.capacity(tier)).unwrap();
            let homog = Solver::default()
                .solve(&homog_inst, fleet.tier(tier))
                .unwrap();
            assert_eq!(mixed.selection, homog.selection);
            assert!(
                mixed.report.total_cost <= homog.report.total_cost,
                "mixed {} beat by tier {tier} at {}",
                mixed.report.total_cost,
                homog.report.total_cost
            );
        }
        let text = mixed.report.to_string();
        assert!(text.contains("mixed-fleet"));
        assert!(text.contains("VMs"));
    }

    #[test]
    fn refinement_never_raises_cost_and_is_deterministic() {
        let inst = instance();
        let base = Solver::default().solve(&inst, &cost()).unwrap();
        let params = SolverParams::default().with_refinement(SearchBudget::UNBOUNDED);
        let a = Solver::new(params).solve(&inst, &cost()).unwrap();
        let b = Solver::new(params).solve(&inst, &cost()).unwrap();
        assert!(a.report.total_cost <= base.report.total_cost);
        assert!(a.report.total_cost >= a.report.lower_bound_cost);
        assert_eq!(
            a.allocation, b.allocation,
            "refinement must be deterministic"
        );
        a.allocation.validate(inst.workload(), inst.tau()).unwrap();
        let refinement = a.refinement.expect("refine was requested");
        assert_eq!(refinement.final_cost, a.report.total_cost);
        assert!(refinement.final_cost <= refinement.initial_cost);
    }

    #[test]
    fn zero_step_budget_is_a_no_op_refinement() {
        let inst = instance();
        let base = Solver::default().solve(&inst, &cost()).unwrap();
        let params = SolverParams::default().with_refinement(SearchBudget::steps(0));
        let frozen = Solver::new(params).solve(&inst, &cost()).unwrap();
        assert_eq!(base.allocation, frozen.allocation);
        assert_eq!(frozen.refinement.expect("refine was requested").steps, 0);
    }

    #[test]
    fn report_display_mentions_key_metrics() {
        let inst = instance();
        let outcome = Solver::default().solve(&inst, &cost()).unwrap();
        let text = outcome.report.to_string();
        assert!(text.contains("GSP"));
        assert!(text.contains("VMs"));
        assert!(text.contains("lower bound"));
    }
}
