//! E-FIG4/5: Stage-1 runtime (GSP vs RSP) for Spotify-like and
//! Twitter-like traces across τ.
//!
//! Run with: `cargo run --release -p mcss_bench --bin fig4_5_stage1_runtime`
//! Size overrides: `MCSS_SPOTIFY_SUBS`, `MCSS_TWITTER_USERS`.

use cloud_cost::instances;
use mcss_bench::experiments::fig_stage1_runtime;
use mcss_bench::scenario::{env_size, Scenario};

fn main() {
    let spotify = Scenario::spotify(env_size("MCSS_SPOTIFY_SUBS", 100_000), 20140113);
    println!("== Fig. 4 (Spotify) ==");
    print!("{}", fig_stage1_runtime(&spotify, instances::C3_LARGE, 3));

    let twitter = Scenario::twitter(env_size("MCSS_TWITTER_USERS", 20_000), 20131030);
    println!("\n== Fig. 5 (Twitter) ==");
    print!("{}", fig_stage1_runtime(&twitter, instances::C3_LARGE, 3));
}
