//! Value-generation strategies (no shrinking).

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type, mirroring `proptest`'s `boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = (1u64..=6, 0u32..3)
            .prop_map(|(a, b)| a + b as u64)
            .prop_flat_map(|n| (Just(n), 0..n));
        for _ in 0..1000 {
            let (n, k) = s.generate(&mut rng);
            assert!((1..=8).contains(&n));
            assert!(k < n);
        }
    }

    #[test]
    fn boxed_strategy_delegates() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = (2u64..5).boxed();
        for _ in 0..100 {
            assert!((2..5).contains(&s.generate(&mut rng)));
        }
    }
}
