//! Memory-footprint probe: prints the bytes/subscriber report for the
//! standard Spotify churn scenario after one cold solve — the number the
//! arena diet is judged against.
//!
//! Run with:
//! `cargo test -p mcss_bench --release --test footprint -- --ignored --nocapture`

use cloud_cost::instances;
use mcss_bench::scenario::Scenario;
use mcss_core::incremental::IncrementalReallocator;
use mcss_core::MemoryFootprint;

#[test]
#[ignore = "measurement probe, run explicitly with --ignored --nocapture"]
fn spotify_100k_bytes_per_subscriber() {
    let scenario = Scenario::spotify(100_000, 20140113);
    let instance = scenario
        .instance(100, instances::C3_LARGE)
        .expect("feasible instance");
    let cost = scenario.cost_model(instances::C3_LARGE);
    let mut inc = IncrementalReallocator::default();
    inc.step(&instance, &cost).expect("cold solve");
    let (selection, ledger, _) = inc.checkpoint().expect("stepped");
    let fp = MemoryFootprint::measure(instance.workload(), Some(selection), Some(ledger));
    println!("{fp}");
}
