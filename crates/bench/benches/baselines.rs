//! Packing-baseline comparison: Next-Fit vs First-Fit vs Best-Fit vs the
//! paper's CustomBinPacking, on the same GSP selection — quantifies how
//! much of CBP's advantage is topic grouping versus per-pair placement
//! smarts (see `stage2::baselines`).

use cloud_cost::{instances, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::scenario::Scenario;
use mcss_core::stage1::{GreedySelectPairs, PairSelector};
use mcss_core::stage2::{
    Allocator, BestFitBinPacking, CbpConfig, CustomBinPacking, FirstFitBinPacking,
    NextFitBinPacking,
};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let scenario = Scenario::spotify(20_000, 20140113);
    let cost = scenario.cost_model(instances::C3_LARGE);
    let inst = scenario
        .instance(100, instances::C3_LARGE)
        .expect("valid capacity");
    let selection = GreedySelectPairs::new().select(&inst).expect("gsp");

    // Quality snapshot, printed once beside the runtime numbers.
    let allocators: Vec<(&str, Box<dyn Allocator>)> = vec![
        ("NFBP", Box::new(NextFitBinPacking::new())),
        ("FFBP", Box::new(FirstFitBinPacking::new())),
        ("BFBP", Box::new(BestFitBinPacking::new())),
        ("CBP", Box::new(CustomBinPacking::new(CbpConfig::full()))),
    ];
    for (name, alloc) in &allocators {
        let a = alloc
            .allocate(inst.workload(), &selection, inst.capacity(), &cost)
            .expect("feasible");
        eprintln!(
            "# baseline {}: cost {}, {} VMs, bw {}",
            name,
            cost.total_cost(a.vm_count(), a.total_bandwidth()),
            a.vm_count(),
            a.total_bandwidth()
        );
    }

    let mut group = c.benchmark_group("stage2-baselines/spotify");
    group.sample_size(10);
    for (name, alloc) in &allocators {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                black_box(
                    alloc
                        .allocate(inst.workload(), &selection, inst.capacity(), &cost)
                        .expect("feasible"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
