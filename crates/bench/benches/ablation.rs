//! Ablations for the design choices called out in DESIGN.md:
//!
//! * CBP's "expensive" ordering: pseudocode's total volume vs prose's raw
//!   rate (Alg. 4 line 3);
//! * Alg. 7's new-VM estimate: paper formula vs exact count;
//! * Stage-1 selector: plain GSP vs the shared-incoming-aware extension;
//! * Stage-1 parallelism: 1 vs 4 threads.
//!
//! Each configuration's cost impact is printed once via stderr so the
//! quality side of the ablation lands next to the runtime numbers.

use cloud_cost::{instances, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::scenario::Scenario;
use mcss_core::stage1::{GreedySelectPairs, PairSelector, SharedAwareGreedy};
use mcss_core::stage2::{Allocator, CbpConfig, CustomBinPacking, ExpensiveOrder};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let scenario = Scenario::twitter(10_000, 20131030);
    let cost = scenario.cost_model(instances::C3_LARGE);
    let inst = scenario
        .instance(100, instances::C3_LARGE)
        .expect("valid capacity");
    let selection = GreedySelectPairs::new().select(&inst).expect("gsp");

    // Quality impact, reported once.
    for (name, cfg) in [
        ("volume-order", CbpConfig::full()),
        (
            "rate-order",
            CbpConfig {
                expensive_order: ExpensiveOrder::Rate,
                ..CbpConfig::full()
            },
        ),
        (
            "exact-vm-estimate",
            CbpConfig {
                exact_new_vm_estimate: true,
                ..CbpConfig::full()
            },
        ),
    ] {
        let a = CustomBinPacking::new(cfg)
            .allocate(inst.workload(), &selection, inst.capacity(), &cost)
            .expect("feasible");
        eprintln!(
            "# ablation {}: cost {}, {} VMs, bw {}",
            name,
            cost.total_cost(a.vm_count(), a.total_bandwidth()),
            a.vm_count(),
            a.total_bandwidth()
        );
    }
    let shared = SharedAwareGreedy::new().select(&inst).expect("shared");
    eprintln!(
        "# ablation stage1 volume: GSP {} vs shared-aware {}",
        selection.outgoing_volume(inst.workload()),
        shared.outgoing_volume(inst.workload())
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, cfg) in [
        ("cbp/volume-order", CbpConfig::full()),
        (
            "cbp/rate-order",
            CbpConfig {
                expensive_order: ExpensiveOrder::Rate,
                ..CbpConfig::full()
            },
        ),
        (
            "cbp/exact-vm-estimate",
            CbpConfig {
                exact_new_vm_estimate: true,
                ..CbpConfig::full()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            let alloc = CustomBinPacking::new(cfg);
            b.iter(|| {
                black_box(
                    alloc
                        .allocate(inst.workload(), &selection, inst.capacity(), &cost)
                        .expect("feasible"),
                )
            });
        });
    }
    group.bench_function("stage1/gsp-shared-aware", |b| {
        let sel = SharedAwareGreedy::new();
        b.iter(|| black_box(sel.select(&inst).expect("shared")));
    });
    group.bench_function("stage1/gsp-threads-1", |b| {
        let sel = GreedySelectPairs::new();
        b.iter(|| black_box(sel.select(&inst).expect("gsp")));
    });
    group.bench_function("stage1/gsp-threads-4", |b| {
        let sel = GreedySelectPairs::with_threads(4);
        b.iter(|| black_box(sel.select(&inst).expect("gsp")));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
