//! Hand-built random samplers.
//!
//! The generators need bounded Zipf, log-normal, and fast weighted-discrete
//! sampling. Rather than pulling in a distributions crate, the three
//! samplers are implemented here (≈100 lines total) and property-tested;
//! `rand` supplies only the uniform source.

use rand::Rng;

/// Bounded Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(X = k) ∝ k^(-s)`.
///
/// Sampling is a binary search over the precomputed CDF — `O(log n)` per
/// draw after `O(n)` setup, which is the right trade-off for the millions
/// of draws the generators make from a single distribution.
///
/// ```
/// use pubsub_traces::dist::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(100, 1.2);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// The exact mean of the bounded distribution.
    pub fn mean(&self) -> f64 {
        // cdf differences give the pmf.
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

/// Log-normal distribution: `exp(μ + σ·N(0,1))`, with the normal drawn via
/// Box-Muller.
///
/// ```
/// use pubsub_traces::dist::LogNormal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ln = LogNormal::new(0.0, 0.5);
/// let mut rng = StdRng::seed_from_u64(7);
/// assert!(ln.sample(&mut rng) > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution with log-mean `mu` and log-std `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Draws one sample (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// One standard-normal draw via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Walker/Vose alias table for O(1) weighted sampling over `0..n`.
///
/// The social-graph generators draw millions of follow edges from a fixed
/// popularity distribution; the alias method makes each draw two uniforms
/// and two array reads.
///
/// ```
/// use pubsub_traces::dist::AliasTable;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let t = AliasTable::new(&[1.0, 0.0, 3.0]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let i = t.sample(&mut rng);
/// assert!(i == 0 || i == 2); // index 1 has zero weight
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains a
    /// negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        assert!(n <= u32::MAX as usize, "alias table too large");
        let mut sum = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
            sum += w;
        }
        assert!(sum > 0.0, "weights must not all be zero");

        let scale = n as f64 / sum;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything still queued has probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no categories (construction rejects
    /// empty input, so this is always `false`; provided for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index in `0..len()` with probability proportional to its
    /// weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(50, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn zipf_head_is_heaviest() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > 5_000); // P(1) = 1/ζ(1.5) ≈ 0.38
    }

    #[test]
    fn zipf_empirical_mean_matches_analytic() {
        let z = Zipf::new(200, 1.8);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let total: usize = (0..n).map(|_| z.sample(&mut rng)).sum();
        let empirical = total as f64 / n as f64;
        let analytic = z.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn zipf_degenerate_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 1);
        assert_eq!(z.support(), 1);
        assert!((z.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zipf_empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_positive_and_mean() {
        let ln = LogNormal::new(1.0, 0.7);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = ln.sample(&mut rng);
            assert!(x > 0.0);
            sum += x;
        }
        let empirical = sum / n as f64;
        let analytic = ln.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let ln = LogNormal::new(2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert!((ln.sample(&mut rng) - 2.0f64.exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn alias_respects_weights() {
        let t = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01, "{f:?}");
        assert!((f[1] - 0.2).abs() < 0.01, "{f:?}");
        assert!((f[2] - 0.7).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn alias_zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_uniform_weights() {
        let t = AliasTable::new(&[3.0; 10]);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 500.0);
        }
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn alias_all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn determinism_per_seed() {
        let z = Zipf::new(1000, 1.3);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
