//! Distribution fitting: estimate generator parameters back from data.
//!
//! The generators are *calibrated to* published distribution shapes
//! (Appendix D); these estimators close the loop by recovering the shape
//! parameters from a trace — used by the test suite to verify the
//! generators hit their configured parameters, and useful for calibrating
//! against a real trace when one is available.

/// Fits a power-law (Zipf tail) exponent `α` from the CCDF of integer
/// observations: for `P(X > x) ∝ x^(-α)`, ordinary least squares on
/// `log P` vs `log x` over the points with `x ≥ x_min`.
///
/// Returns `None` when fewer than two distinct values lie in the fitted
/// region or all mass is concentrated on one point.
pub fn fit_powerlaw_ccdf(values: &[u64], x_min: u64) -> Option<f64> {
    let points = crate::analysis::ccdf(values);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (x, p) in points {
        if x >= x_min && x > 0 && p > 0.0 {
            xs.push((x as f64).ln());
            ys.push(p.ln());
        }
    }
    if xs.len() < 2 {
        return None;
    }
    let slope = ols_slope(&xs, &ys)?;
    Some(-slope)
}

/// Fits log-normal parameters `(μ, σ)` by the method of moments in log
/// space: `μ = mean(ln x)`, `σ = std(ln x)`. Zero values are skipped.
///
/// Returns `None` if fewer than two positive observations exist.
pub fn fit_lognormal(values: &[u64]) -> Option<(f64, f64)> {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0)
        .map(|&v| (v as f64).ln())
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mean = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / (n - 1.0);
    Some((mean, var.sqrt()))
}

/// Ordinary least-squares slope of `y` on `x`. `None` when `x` has no
/// variance.
fn ols_slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Zipf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_zipf_exponent() {
        // Zipf(α=2.0) ranks have CCDF tail exponent ≈ α − 1.
        let z = Zipf::new(100_000, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<u64> = (0..60_000).map(|_| z.sample(&mut rng) as u64).collect();
        let alpha = fit_powerlaw_ccdf(&values, 2).expect("enough tail points");
        assert!(
            (0.7..1.4).contains(&alpha),
            "tail exponent {alpha} (expected ≈ 1.0)"
        );
    }

    #[test]
    fn recovers_lognormal_parameters() {
        let ln = LogNormal::new(3.0, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..50_000)
            .map(|_| ln.sample(&mut rng).round().max(1.0) as u64)
            .collect();
        let (mu, sigma) = fit_lognormal(&values).expect("positive observations");
        assert!((mu - 3.0).abs() < 0.1, "mu {mu}");
        assert!((sigma - 0.8).abs() < 0.1, "sigma {sigma}");
    }

    #[test]
    fn spotify_generator_rates_match_configuration() {
        let gen = crate::SpotifyLike::new(20_000, 5);
        let w = gen.generate();
        let (mu, sigma) = fit_lognormal(&w.rate_values()).expect("rates positive");
        // Rounding to integers perturbs the moments slightly.
        assert!(
            (mu - gen.rate_log_mean).abs() < 0.15,
            "mu {mu} vs {}",
            gen.rate_log_mean
        );
        assert!(
            (sigma - gen.rate_log_sigma).abs() < 0.15,
            "sigma {sigma} vs {}",
            gen.rate_log_sigma
        );
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert_eq!(fit_powerlaw_ccdf(&[], 1), None);
        assert_eq!(fit_powerlaw_ccdf(&[5, 5, 5], 1), None);
        assert_eq!(fit_lognormal(&[]), None);
        assert_eq!(fit_lognormal(&[0, 0]), None);
        assert!(fit_lognormal(&[3, 3]).is_some());
    }

    #[test]
    fn twitter_follower_tail_is_powerlaw_like() {
        let trace = crate::TwitterLike::new(30_000, 6).generate_trace();
        let alpha = fit_powerlaw_ccdf(&trace.raw_followers, 10).expect("heavy tail");
        // A finite positive tail exponent — the Fig. 8 shape.
        assert!(alpha > 0.3 && alpha < 4.0, "follower tail exponent {alpha}");
    }
}
