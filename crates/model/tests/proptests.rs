//! Property-based tests for the workload model.

use proptest::collection::vec;
use proptest::prelude::*;
use pubsub_model::{Rate, SubscriberId, TopicId, Workload};

/// Strategy producing a raw (rates, interests) pair with `1..=max_t` topics
/// and `0..=max_v` subscribers whose interests index into the topic range.
fn raw_workload(max_t: usize, max_v: usize) -> impl Strategy<Value = (Vec<u64>, Vec<Vec<u32>>)> {
    vec(1u64..1000, 1..=max_t).prop_flat_map(move |rates| {
        let nt = rates.len() as u32;
        let interests = vec(vec(0..nt, 0..12), 0..=max_v);
        (Just(rates), interests)
    })
}

fn build(rates: &[u64], interests: &[Vec<u32>]) -> Workload {
    let mut b = Workload::builder();
    for &r in rates {
        b.add_topic(Rate::new(r)).unwrap();
    }
    for tv in interests {
        b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
            .unwrap();
    }
    b.build()
}

proptest! {
    /// The derived V_t tables are exactly the transpose of the interests.
    #[test]
    fn derived_tables_are_transpose((rates, interests) in raw_workload(20, 20)) {
        let w = build(&rates, &interests);
        // every interest edge appears in subscribers_of
        for v in w.subscribers() {
            for &t in w.interests(v) {
                prop_assert!(w.subscribers_of(t).contains(&v));
            }
        }
        // and vice versa
        for t in w.topics() {
            for &v in w.subscribers_of(t) {
                prop_assert!(w.interests(v).contains(&t));
            }
        }
        // pair_count counts each edge once
        let edges: u64 = w.subscribers().map(|v| w.interests(v).len() as u64).sum();
        prop_assert_eq!(edges, w.pair_count());
    }

    /// Interests are sorted and deduplicated regardless of input order.
    #[test]
    fn interests_sorted_dedup((rates, interests) in raw_workload(15, 15)) {
        let w = build(&rates, &interests);
        for v in w.subscribers() {
            let tv = w.interests(v);
            for pair in tv.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    /// tau_v is min(tau, total) and is monotone in tau.
    #[test]
    fn tau_v_is_min((rates, interests) in raw_workload(15, 15), tau1 in 0u64..5000, tau2 in 0u64..5000) {
        let w = build(&rates, &interests);
        let (lo, hi) = if tau1 <= tau2 { (tau1, tau2) } else { (tau2, tau1) };
        for v in w.subscribers() {
            let total = w.subscriber_total_rate(v);
            let tv_lo = w.tau_v(v, Rate::new(lo));
            let tv_hi = w.tau_v(v, Rate::new(hi));
            prop_assert!(tv_lo <= tv_hi);
            prop_assert!(tv_hi <= total);
            prop_assert_eq!(tv_hi, total.min(Rate::new(hi)));
        }
    }

    /// Serialize/deserialize via serde (JSON-free: use the WorkloadData shape
    /// through from_parts) preserves all primary and derived data.
    #[test]
    fn from_parts_is_idempotent((rates, interests) in raw_workload(15, 15)) {
        let w = build(&rates, &interests);
        let rates2: Vec<Rate> = w.rates().to_vec();
        let interests2: Vec<Vec<TopicId>> =
            w.subscribers().map(|v| w.interests(v).to_vec()).collect();
        let w2 = Workload::from_parts(rates2, interests2);
        prop_assert_eq!(w.pair_count(), w2.pair_count());
        prop_assert_eq!(w.total_rate(), w2.total_rate());
        for v in w.subscribers() {
            prop_assert_eq!(w.interests(v), w2.interests(v));
        }
        for t in w.topics() {
            prop_assert_eq!(w.subscribers_of(t), w2.subscribers_of(t));
        }
    }

    /// The rate-ranked arena holds the same interest set per row, in
    /// strict (descending rate, ascending id) order.
    #[test]
    fn ranked_rows_are_rate_ordered_permutations((rates, interests) in raw_workload(20, 20)) {
        let w = build(&rates, &interests);
        for v in w.subscribers() {
            let ranked = w.ranked_interests(v);
            for pair in ranked.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                prop_assert!(
                    w.rate(a) > w.rate(b) || (w.rate(a) == w.rate(b) && a < b),
                    "row of {v} out of order: {a} before {b}"
                );
            }
            let mut sorted: Vec<TopicId> = ranked.to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted.as_slice(), w.interests(v));
        }
    }

    /// `from_parts_evolved` produces the same workload (including the
    /// ranked arena) as a from-scratch rebuild, for any rate re-ranking
    /// and any honestly-declared interest churn.
    #[test]
    fn evolved_ranked_arena_matches_rebuild(
        (rates, interests) in raw_workload(12, 12),
        new_rates in vec(1u64..1000, 12),
        changed in vec(0u8..2, 12),
    ) {
        let w = build(&rates, &interests);
        // Splice the new rates over the old table (same topic count) and
        // churn the declared subscribers' interest sets.
        let rates2: Vec<Rate> = w
            .rates()
            .iter()
            .enumerate()
            .map(|(ti, r)| if ti % 2 == 0 { Rate::new(new_rates[ti % new_rates.len()]) } else { *r })
            .collect();
        let mut interests2: Vec<Vec<TopicId>> =
            w.subscribers().map(|v| w.interests(v).to_vec()).collect();
        let mut declared: Vec<SubscriberId> = Vec::new();
        for (vi, row) in interests2.iter_mut().enumerate() {
            if changed.get(vi).copied().unwrap_or(0) == 1 {
                row.reverse();
                if !row.is_empty() && vi % 3 == 0 {
                    row.pop();
                }
                declared.push(SubscriberId::new(vi as u32));
            }
        }
        let evolved =
            Workload::from_parts_evolved(&w, rates2.clone(), interests2.clone(), &declared);
        let rebuilt = Workload::from_parts(rates2, interests2);
        prop_assert_eq!(evolved.pair_count(), rebuilt.pair_count());
        for v in rebuilt.subscribers() {
            prop_assert_eq!(evolved.interests(v), rebuilt.interests(v));
            prop_assert_eq!(evolved.ranked_interests(v), rebuilt.ranked_interests(v));
        }
    }

    /// Subscription cardinalities over all subscribers of a fully-subscribed
    /// workload are each within [0, 100].
    #[test]
    fn sc_bounds((rates, interests) in raw_workload(15, 15)) {
        let w = build(&rates, &interests);
        for v in w.subscribers() {
            let sc = w.subscription_cardinality(v);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&sc));
        }
    }
}

#[test]
fn subscriber_ids_are_insertion_ordered() {
    let w = build(&[5, 6], &[vec![0], vec![1], vec![0, 1]]);
    let ids: Vec<SubscriberId> = w.subscribers().collect();
    assert_eq!(
        ids,
        vec![
            SubscriberId::new(0),
            SubscriberId::new(1),
            SubscriberId::new(2)
        ]
    );
}
