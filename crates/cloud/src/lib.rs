//! IaaS cost substrate for the MCSS reproduction.
//!
//! The paper (§II, §IV-A) adopts the Amazon EC2 on-demand cost model: a
//! deployment pays `C1(|B|)` for renting `|B|` virtual machines over the
//! evaluation window plus `C2(Σ_b bw_b)` for the bandwidth they move in and
//! out of the cloud. This crate provides:
//!
//! * [`Money`] — exact fixed-point currency (micro-dollars);
//! * [`InstanceType`] — the VM catalogue used in the evaluation
//!   ([`instances::C3_LARGE`] at $0.15/h & 64 mbps,
//!   [`instances::C3_XLARGE`] at $0.30/h & 128 mbps, plus extension sizes);
//! * [`CostModel`] — the `C1`/`C2` abstraction consumed by the solver;
//! * [`Ec2CostModel`] — the paper's concrete pricing (hourly VM rate +
//!   $0.12/GB transfer, 200-byte messages, 240 h window), including the
//!   capacity conversion from mbps to events-per-window and optional volume
//!   scaling for shape-preserving scaled-down experiments;
//! * [`LinearCostModel`] — trivially parameterized costs for unit tests and
//!   the NP-hardness reduction (`C1(x) = x`, `C2 = 0`);
//! * [`FleetCostModel`] — a heterogeneous catalogue of instance tiers
//!   sharing one bandwidth price, ranked by cost density (extension: the
//!   mixed-fleet scenario the solver's `MixedFleetPacker` consumes);
//! * [`ReservedCostModel`] — fixed-duration (reserved) pricing wrapped
//!   around the on-demand model.
//!
//! # Example
//!
//! ```
//! use cloud_cost::{instances, CostModel, Ec2CostModel};
//!
//! // The paper's setting: c3.large, 10-day window, 200-byte messages.
//! let model = Ec2CostModel::paper_default(instances::C3_LARGE);
//! let vm_cost = model.vm_cost(10); // 10 VMs × $0.15/h × 240 h
//! assert_eq!(vm_cost.to_string(), "$360.00");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fleet;
mod instance;
mod money;
mod pricing;
mod reserved;

pub use fleet::FleetCostModel;
pub use instance::{instances, InstanceType};
pub use money::Money;
pub use pricing::{BillingWindow, CostModel, Ec2CostModel, LinearCostModel};
pub use reserved::ReservedCostModel;
