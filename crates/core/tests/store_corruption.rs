//! Corruption sweep for the `MCSSTOR1` store (ISSUE 10 satellite): flip
//! one byte in *every* section of a valid store — a workload store and
//! a full daemon snapshot — and assert the load fails closed with the
//! damaged section *named*, never a panic and never silent success.
//! Also sweeps short writes through the PR 8 `FaultInjector` (a torn
//! snapshot write must leave the previous snapshot intact) and checks
//! drift-evolved workloads round-trip bit-identically.

use cloud_cost::{CostModel, LinearCostModel, Money};
use mcss_core::dynamic::DriftModel;
use mcss_core::serve::{
    Daemon, Driver, FaultInjector, IoFault, ServeConfig, Snapshot, SNAPSHOT_FILE,
};
use mcss_store::{StoreReader, WorkloadStoreExt};
use proptest::prelude::*;
use pubsub_model::{Bandwidth, Rate, Workload};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcss-store-corrupt-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cost() -> Box<dyn CostModel> {
    Box::new(LinearCostModel::new(
        Money::from_dollars(1),
        Money::from_micros(3),
    ))
}

fn base_workload() -> Workload {
    let mut b = Workload::builder();
    let ts: Vec<_> = [30u64, 18, 12, 9, 6, 4]
        .iter()
        .map(|&r| b.add_topic(Rate::new(r)).unwrap())
        .collect();
    b.add_subscriber([ts[0], ts[1], ts[4]]).unwrap();
    b.add_subscriber([ts[1], ts[2]]).unwrap();
    b.add_subscriber([ts[2], ts[3], ts[5]]).unwrap();
    b.add_subscriber([ts[0], ts[5]]).unwrap();
    b.build()
}

/// A workload evolved through `batches` drift epochs — richer section
/// contents than the base workload (tombstoned rates, churned rows).
fn drifted_workload(seed: u64, batches: usize) -> Workload {
    let drift = DriftModel {
        rate_sigma: 0.3,
        churn_prob: 0.4,
        seed,
    };
    let mut driver = Driver::new(base_workload(), drift);
    driver.initial_events();
    for _ in 0..batches {
        driver.next_epoch_events();
    }
    driver.workload().clone()
}

/// Runs a short daemon session and snapshots it, returning the
/// snapshot path — a store file with *all* section kinds populated
/// (serve meta, workload, selection, ledger).
fn daemon_snapshot(dir: &Path) -> PathBuf {
    let drift = DriftModel {
        rate_sigma: 0.3,
        churn_prob: 0.4,
        seed: 42,
    };
    let mut driver = Driver::new(base_workload(), drift);
    let config = ServeConfig::new(Rate::new(15), Bandwidth::new(2_000))
        .with_epoch_events(4)
        .with_snapshot_every(0);
    let mut daemon = Daemon::create(dir, config, cost()).unwrap();
    for e in driver.initial_events() {
        daemon.submit(e).unwrap();
    }
    for _ in 0..3 {
        for e in driver.next_epoch_events() {
            daemon.submit(e).unwrap();
        }
    }
    daemon.tick().unwrap();
    daemon.snapshot_now().unwrap()
}

/// The satellite contract, verbatim: one flipped byte per section, the
/// load names the section, and no input panics.
#[test]
fn flipping_any_section_byte_fails_closed_with_the_section_named() {
    let dir = scratch("snapshot-sweep");
    let path = daemon_snapshot(&dir);
    let pristine = std::fs::read(&path).unwrap();
    let reader = StoreReader::from_bytes(pristine.clone()).unwrap();
    let sections: Vec<_> = reader
        .sections()
        .iter()
        .map(|s| (s.name, s.offset, s.len))
        .collect();
    assert!(
        sections.len() >= 13,
        "a daemon snapshot should populate every section kind, found {sections:?}"
    );
    // Sanity: the pristine file loads.
    Snapshot::load(&path).unwrap();

    for (name, offset, len) in sections {
        if len == 0 {
            continue; // an empty payload has no byte to flip
        }
        let mut damaged = pristine.clone();
        let target = (offset + len / 2) as usize;
        damaged[target] ^= 0x01;
        std::fs::write(&path, &damaged).unwrap();
        let err = Snapshot::load(&path).expect_err(&format!(
            "flipping a byte of section `{name}` must not load silently"
        ));
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("`{name}`")),
            "error for damaged section `{name}` must name it, got: {msg}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Same sweep against a plain workload store written by `to_store`.
#[test]
fn workload_store_corruption_names_each_section() {
    let dir = scratch("workload-sweep");
    let path = dir.join("workload.mcss");
    drifted_workload(7, 4).to_store(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let reader = StoreReader::from_bytes(pristine.clone()).unwrap();
    let sections: Vec<_> = reader
        .sections()
        .iter()
        .map(|s| (s.name, s.offset, s.len))
        .collect();
    assert_eq!(sections.len(), 7, "workload stores hold seven sections");
    for (name, offset, len) in sections {
        if len == 0 {
            continue;
        }
        let mut damaged = pristine.clone();
        damaged[(offset + len - 1) as usize] ^= 0x80;
        std::fs::write(&path, &damaged).unwrap();
        let err = Workload::from_store(&path).expect_err(&format!(
            "flipping a byte of section `{name}` must not load silently"
        ));
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("`{name}`")),
            "error for damaged section `{name}` must name it, got: {msg}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Header damage (the page before any section) also fails closed.
#[test]
fn header_damage_fails_closed() {
    let dir = scratch("header");
    let path = dir.join("workload.mcss");
    drifted_workload(3, 2).to_store(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    for target in [9usize, 13, 20, 40, 50] {
        let mut damaged = pristine.clone();
        damaged[target] ^= 0xFF;
        std::fs::write(&path, &damaged).unwrap();
        assert!(
            Workload::from_store(&path).is_err(),
            "header byte {target} flipped but the store still loaded"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A short write torn mid-snapshot (the PR 8 injector kills the fake
/// device partway through the tmp file) must leave the previous
/// snapshot loadable — the atomic tmp+rename contract on the new
/// container format.
#[test]
fn short_write_leaves_previous_snapshot_intact() {
    let dir = scratch("short-write");
    let path = daemon_snapshot(&dir);
    let before = Snapshot::load(&path).unwrap();

    let injector = FaultInjector::new();
    let config = ServeConfig::new(Rate::new(15), Bandwidth::new(2_000))
        .with_epoch_events(4)
        .with_snapshot_every(0);
    let mut daemon = Daemon::resume_with_faults(&dir, config, cost(), Some(injector.clone()))
        .expect("resume from the store snapshot");
    let drift = DriftModel {
        rate_sigma: 0.3,
        churn_prob: 0.4,
        seed: 99,
    };
    let mut driver = Driver::new(daemon.workload().unwrap().clone(), drift);
    for e in driver.next_epoch_events() {
        daemon.submit(e).unwrap();
    }
    daemon.tick().unwrap();
    injector.arm(IoFault::ShortWrite { keep: 100 });
    daemon
        .snapshot_now()
        .expect_err("a torn snapshot write must surface as an error");
    drop(daemon);

    // The half-written tmp never replaced the real snapshot.
    let after = Snapshot::load(dir.join(SNAPSHOT_FILE).as_path()).unwrap();
    assert_eq!(after.last_seq, before.last_seq);
    assert_eq!(after.workload, before.workload);
    assert_eq!(after.selection, before.selection);
    assert_eq!(after.slots, before.slots);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Drift-sequence round-trip (the tentpole's property contract):
    /// however far a workload has churned from its seed, the store
    /// reproduces it bit-identically, ranked and follower arenas
    /// included.
    #[test]
    fn drift_sequences_roundtrip_bit_identically(
        seed in 0u64..1_000,
        batches in 0usize..6,
    ) {
        let dir = scratch("drift-rt");
        let path = dir.join("drifted.mcss");
        let workload = drifted_workload(seed, batches);
        workload.to_store(&path).unwrap();
        let loaded = Workload::from_store(&path).unwrap();
        prop_assert_eq!(&loaded, &workload);
        for v in workload.subscribers() {
            prop_assert_eq!(loaded.ranked_interests(v), workload.ranked_interests(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
