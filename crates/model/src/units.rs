//! Quantity newtypes: per-topic event rates and aggregated bandwidth volumes.
//!
//! The paper's model (§II-B) counts everything in *events per time unit*:
//! `ev_t` is the publication rate of topic `t` and a VM's bandwidth use
//! `bw_b` is a sum of event rates. Conversion to bytes, GB, and mbps happens
//! only in the `cloud-cost` crate (event size × window length), which keeps
//! this whole layer integer-exact.
//!
//! [`Rate`] is a per-topic event rate; [`Bandwidth`] is a sum of rates (an
//! event volume). They are kept as distinct types so capacity checks cannot
//! accidentally mix a single topic's rate with an aggregate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Maximum admissible event rate for a single topic.
///
/// Bounding individual rates to 2^42 guarantees that the aggregates that the
/// solver forms (sums over up to ~2^20 VM-local pairs plus the doubling for
/// incoming streams) stay far away from `u64` overflow even on adversarial
/// inputs; [`WorkloadBuilder`](crate::WorkloadBuilder) enforces the bound.
pub const MAX_RATE: u64 = 1 << 42;

/// Event rate of a topic: `ev_t` events per evaluation window (paper §II-B).
///
/// ```
/// use pubsub_model::Rate;
/// let r = Rate::new(20);
/// assert_eq!((r + Rate::new(10)).get(), 30);
/// assert_eq!(r.pair_cost().get(), 40); // 2·ev_t: incoming + outgoing
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Rate(u64);

impl Rate {
    /// A rate of zero events.
    pub const ZERO: Rate = Rate(0);

    /// Creates a rate of `events` per window.
    #[inline]
    pub const fn new(events: u64) -> Self {
        Rate(events)
    }

    /// Returns the number of events per window.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the rate is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Bandwidth cost of serving one `(t, v)` pair on a VM where the topic
    /// is not yet present: `2·ev_t` (one incoming stream into the cloud plus
    /// one outgoing delivery; paper §III-A).
    #[inline]
    pub const fn pair_cost(self) -> Bandwidth {
        Bandwidth(self.0 * 2)
    }

    /// This rate viewed as a one-element volume (e.g. a single delivery
    /// stream or a single incoming stream).
    #[inline]
    pub const fn volume(self) -> Bandwidth {
        Bandwidth(self.0)
    }

    /// Saturating subtraction, used when tracking the remaining rate needed
    /// to satisfy a subscriber (`rem_v` in Alg. 1).
    #[inline]
    pub const fn saturating_sub(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a count (e.g. `|P|·ev_t` in Alg. 7).
    ///
    /// Returns `None` on overflow.
    #[inline]
    pub fn checked_mul(self, n: u64) -> Option<Bandwidth> {
        self.0.checked_mul(n).map(Bandwidth)
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate(self.0 - rhs.0)
    }
}

impl Mul<u64> for Rate {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, n: u64) -> Bandwidth {
        Bandwidth(self.0 * n)
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ev", self.0)
    }
}

/// Aggregated event volume: a sum of event rates (paper's `bw_b` and `BC`).
///
/// A VM's bandwidth use is
/// `bw_b = Σ_{pairs on b} ev_t + Σ_{unique topics on b} ev_t` — outgoing
/// deliveries plus one incoming stream per distinct topic (paper Eq. 2).
///
/// ```
/// use pubsub_model::{Bandwidth, Rate};
/// let mut bw = Bandwidth::ZERO;
/// bw += Rate::new(20).pair_cost();  // first pair of a topic: 2·ev
/// bw += Rate::new(20).volume();     // second pair of the same topic: ev
/// assert_eq!(bw, Bandwidth::new(60));
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero volume.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// The maximum representable volume (used as an "unlimited capacity"
    /// sentinel, e.g. the hypothetical Stage-1 VM of §III).
    pub const MAX: Bandwidth = Bandwidth(u64::MAX);

    /// Creates a volume of `events` event-units.
    #[inline]
    pub const fn new(events: u64) -> Self {
        Bandwidth(events)
    }

    /// Returns the volume in event-units.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the volume is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction — the free headroom `BC − bw_b`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Bandwidth) -> Option<Bandwidth> {
        self.0.checked_add(rhs.0).map(Bandwidth)
    }

    /// Number of whole units of `rate` that fit in this volume
    /// (`⌊self / rate⌋`). Used by the packing algorithms to compute how many
    /// pairs of a topic fit into a VM's headroom.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[inline]
    pub fn div_rate(self, rate: Rate) -> u64 {
        assert!(!rate.is_zero(), "division by zero rate");
        self.0 / rate.0
    }

    /// Ceiling division by a capacity — `⌈self / capacity⌉`, the VM count
    /// lower bound of Alg. 5 line 4 and the new-VM estimate of Alg. 7 line 3.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[inline]
    pub fn div_ceil_by(self, capacity: Bandwidth) -> u64 {
        assert!(!capacity.is_zero(), "division by zero capacity");
        self.0.div_ceil(capacity.0)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    #[inline]
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    #[inline]
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl AddAssign<Rate> for Bandwidth {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Add<Rate> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Rate) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl From<Rate> for Bandwidth {
    #[inline]
    fn from(r: Rate) -> Bandwidth {
        Bandwidth(r.0)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ev-units", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_arithmetic() {
        assert_eq!(Rate::new(3) + Rate::new(4), Rate::new(7));
        assert_eq!(Rate::new(10).saturating_sub(Rate::new(3)), Rate::new(7));
        assert_eq!(Rate::new(3).saturating_sub(Rate::new(10)), Rate::ZERO);
        assert_eq!(Rate::new(5) * 3, Bandwidth::new(15));
        let total: Rate = [Rate::new(1), Rate::new(2), Rate::new(3)].into_iter().sum();
        assert_eq!(total, Rate::new(6));
    }

    #[test]
    fn pair_cost_doubles() {
        assert_eq!(Rate::new(21).pair_cost(), Bandwidth::new(42));
        assert_eq!(Rate::ZERO.pair_cost(), Bandwidth::ZERO);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let mut bw = Bandwidth::new(10);
        bw += Bandwidth::new(5);
        bw += Rate::new(3);
        assert_eq!(bw, Bandwidth::new(18));
        assert_eq!(bw - Bandwidth::new(8), Bandwidth::new(10));
        assert_eq!(
            Bandwidth::new(3).saturating_sub(Bandwidth::new(9)),
            Bandwidth::ZERO
        );
    }

    #[test]
    fn div_rate_counts_fitting_pairs() {
        assert_eq!(Bandwidth::new(50).div_rate(Rate::new(20)), 2);
        assert_eq!(Bandwidth::new(39).div_rate(Rate::new(20)), 1);
        assert_eq!(Bandwidth::new(19).div_rate(Rate::new(20)), 0);
    }

    #[test]
    fn div_ceil_matches_alg5() {
        assert_eq!(Bandwidth::new(100).div_ceil_by(Bandwidth::new(30)), 4);
        assert_eq!(Bandwidth::new(90).div_ceil_by(Bandwidth::new(30)), 3);
        assert_eq!(Bandwidth::new(1).div_ceil_by(Bandwidth::new(30)), 1);
        assert_eq!(Bandwidth::ZERO.div_ceil_by(Bandwidth::new(30)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero rate")]
    fn div_rate_zero_panics() {
        let _ = Bandwidth::new(50).div_rate(Rate::ZERO);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Rate::new(u64::MAX).checked_mul(2), None);
        assert_eq!(Rate::new(4).checked_mul(3), Some(Bandwidth::new(12)));
        assert_eq!(Bandwidth::MAX.checked_add(Bandwidth::new(1)), None);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Bandwidth::new(9) < Bandwidth::new(10));
        assert!(Rate::new(9) < Rate::new(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rate::new(12).to_string(), "12 ev");
        assert_eq!(Bandwidth::new(12).to_string(), "12 ev-units");
    }
}
