//! E-FIG2a/b: Spotify cost metrics for c3.large (64 mbps) and c3.xlarge
//! (128 mbps) across τ ∈ {10, 100, 1000} and every optimization variant.
//!
//! Run with: `cargo run --release -p mcss_bench --bin fig2_spotify`
//! Size override: `MCSS_SPOTIFY_SUBS=250000` (default 100000).

use cloud_cost::instances;
use mcss_bench::experiments::fig_cost_metrics;
use mcss_bench::scenario::{env_size, Scenario};

fn main() {
    let subs = env_size("MCSS_SPOTIFY_SUBS", 100_000);
    let scenario = Scenario::spotify(subs, 20140113);
    println!("== Fig. 2a ==");
    print!("{}", fig_cost_metrics(&scenario, instances::C3_LARGE));
    println!("\n== Fig. 2b ==");
    print!("{}", fig_cost_metrics(&scenario, instances::C3_XLARGE));
}
