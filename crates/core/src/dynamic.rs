//! Periodic re-provisioning over an evolving workload.
//!
//! §IV-F and §VI position the solver as fast enough "to be run
//! periodically to adapt to the changes in the event rates, new
//! subscriptions, unsubscriptions, etc." and leave an online algorithm to
//! future work. This module implements that periodic mode: a workload
//! drift model and a re-provisioner that re-solves per epoch and tracks
//! VM churn and cumulative spend.

use crate::incremental::{IncrementalConfig, IncrementalReallocator};
use crate::stage2::mixed_cost_split;
use crate::{lower_bound, McssError, McssInstance, SolveReport, Solver};
use cloud_cost::{CostModel, FleetCostModel, Money};
use pubsub_model::{Rate, SubscriberId, TopicId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// What changed between two workload epochs — the churn record a drift
/// source hands to the O(Δ) repair path so it never has to re-derive the
/// delta by scanning the whole workload.
///
/// Both lists may over-approximate (listing an unchanged topic or
/// subscriber only costs a wasted re-check) but must never miss a change:
/// every topic whose event rate differs and every subscriber whose
/// interest set differs — including subscribers that only exist in the
/// new workload — has to be listed.
#[derive(Clone, Debug, Default)]
pub struct WorkloadDelta {
    /// Topics whose event rate may have changed.
    pub changed_topics: Vec<TopicId>,
    /// Subscribers whose interest set may have changed.
    pub changed_subscribers: Vec<SubscriberId>,
}

impl WorkloadDelta {
    /// `true` when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changed_topics.is_empty() && self.changed_subscribers.is_empty()
    }
}

/// Multiplicative event-rate drift plus subscription churn, applied once
/// per epoch.
///
/// Rates are multiplied by `exp(σ·N(0,1))` (mean-preserving in log space)
/// and clamped to at least one event; each subscriber independently
/// resubscribes one interest with probability `churn_prob` (dropping a
/// current topic for a uniformly random other topic).
#[derive(Clone, Copy, Debug)]
pub struct DriftModel {
    /// Log-std of the per-epoch rate noise.
    pub rate_sigma: f64,
    /// Per-subscriber probability of swapping one interest.
    pub churn_prob: f64,
    /// Base seed; epoch `e` uses `seed + e`.
    pub seed: u64,
}

impl DriftModel {
    /// Evolves a workload by one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `rate_sigma` is negative or `churn_prob` is outside
    /// `[0, 1]`.
    pub fn evolve(&self, workload: &Workload, epoch: u64) -> Workload {
        self.evolve_tracked(workload, epoch).0
    }

    /// Evolves a workload by one epoch and records what changed, so the
    /// incremental re-allocator can repair in O(Δ) without diffing the
    /// workloads itself (see
    /// [`IncrementalReallocator::step_with_delta`]).
    ///
    /// The delta is exact on topics (a topic is listed iff its rounded
    /// rate differs) and a tight over-approximation on subscribers (a
    /// subscriber is listed iff the churn branch fired, which can
    /// occasionally re-produce the same interest set).
    ///
    /// # Panics
    ///
    /// Panics if `rate_sigma` is negative or `churn_prob` is outside
    /// `[0, 1]`.
    pub fn evolve_tracked(&self, workload: &Workload, epoch: u64) -> (Workload, WorkloadDelta) {
        assert!(self.rate_sigma >= 0.0, "sigma must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.churn_prob),
            "churn must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(epoch));
        let mut delta = WorkloadDelta::default();
        let rates: Vec<Rate> = workload
            .rates()
            .iter()
            .enumerate()
            .map(|(ti, r)| {
                let noise = (self.rate_sigma * standard_normal(&mut rng)).exp();
                let evolved = Rate::new(((r.get() as f64) * noise).round().max(1.0) as u64);
                if evolved != *r {
                    delta.changed_topics.push(TopicId::new(ti as u32));
                }
                evolved
            })
            .collect();
        let num_topics = workload.num_topics();
        let interests: Vec<Vec<TopicId>> = workload
            .subscribers()
            .map(|v| {
                let mut tv = workload.interests(v).to_vec();
                if !tv.is_empty() && num_topics > 1 && rng.gen::<f64>() < self.churn_prob {
                    let drop = rng.gen_range(0..tv.len());
                    tv.swap_remove(drop);
                    let add = TopicId::new(rng.gen_range(0..num_topics as u32));
                    if !tv.contains(&add) {
                        tv.push(add);
                    }
                    delta.changed_subscribers.push(v);
                }
                tv
            })
            .collect();
        // The evolved workload is rebuilt against the previous one: the
        // delta's changed subscribers (an over-approximation that never
        // misses a change — exactly the `from_parts_evolved` contract)
        // tell the model which rate-ranked rows to re-sort; every other
        // row's ranked order is copied verbatim.
        let evolved =
            Workload::from_parts_evolved(workload, rates, interests, &delta.changed_subscribers);
        (evolved, delta)
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Outcome of one re-provisioning epoch.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// The deployed allocation this epoch (what `--simulate` replays).
    pub allocation: crate::Allocation,
    /// The solve metrics of this epoch.
    pub report: SolveReport,
    /// Change in VM count versus the previous epoch (positive = grown).
    pub vm_delta: i64,
    /// Cumulative objective across all epochs so far.
    pub cumulative_cost: Money,
    /// Pairs whose Stage-1 rows were reused verbatim because their
    /// subscriber was untouched by the epoch's churn (always 0 when the
    /// re-provisioner re-solves from scratch).
    pub pairs_reused: u64,
    /// Pairs that physically moved this epoch: placements plus removals
    /// (a from-scratch re-solve counts every selected pair as placed).
    pub pairs_moved: u64,
    /// Whether the epoch re-packed the whole fleet (always true for the
    /// from-scratch mode; true for the incremental mode only on the first
    /// epoch or after a utilization collapse).
    pub full_resolve: bool,
}

/// Re-provisions each epoch and tracks churn and spend — either by
/// re-running the full solver, or by repairing the previous fleet through
/// an [`IncrementalReallocator`] (see [`Reprovisioner::incremental`]).
#[derive(Debug)]
pub struct Reprovisioner {
    solver: Solver,
    incremental: Option<IncrementalReallocator>,
    /// When set, every epoch deploys onto a heterogeneous fleet: full
    /// solves go through [`Solver::solve_mixed`] / the mixed packer, and
    /// epoch costs are priced per tier. Stage-1 selections stay
    /// bit-identical to a homogeneous run at the same `τ`.
    fleet: Option<FleetCostModel>,
    previous_vms: Option<usize>,
    cumulative_cost: Money,
    epoch: u64,
}

impl Reprovisioner {
    /// Creates a re-provisioner that re-solves from scratch each epoch.
    pub fn new(solver: Solver) -> Self {
        Reprovisioner {
            solver,
            incremental: None,
            fleet: None,
            previous_vms: None,
            cumulative_cost: Money::ZERO,
            epoch: 0,
        }
    }

    /// Creates a re-provisioner that repairs the previous allocation each
    /// epoch (O(Δ) churn path) instead of re-solving. `solver` is kept
    /// for reporting defaults; the repair policy comes from `config`.
    pub fn incremental(solver: Solver, config: IncrementalConfig) -> Self {
        Reprovisioner {
            solver,
            incremental: Some(IncrementalReallocator::new(config)),
            fleet: None,
            previous_vms: None,
            cumulative_cost: Money::ZERO,
            epoch: 0,
        }
    }

    /// Deploys onto a heterogeneous fleet instead of a single instance
    /// type (both modes): epoch instances must use
    /// [`FleetCostModel::max_capacity`] as their capacity, and the
    /// `cost` handed to [`Reprovisioner::step`] is used only for the
    /// informational lower bound — epoch costs come from the fleet.
    pub fn with_fleet(mut self, fleet: FleetCostModel) -> Self {
        if let Some(inc) = self.incremental.take() {
            self.incremental = Some(inc.with_fleet(fleet.clone()));
        }
        self.fleet = Some(fleet);
        self
    }

    /// Solves the given epoch instance and accumulates statistics.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; failed epochs do not advance the state.
    pub fn step(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<EpochReport, McssError> {
        self.step_tracked(instance, cost, None)
    }

    /// Like [`Reprovisioner::step`], but hands a drift-source-provided
    /// [`WorkloadDelta`] to the incremental mode so dirty detection skips
    /// the workload scan entirely (ignored in from-scratch mode).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; failed epochs do not advance the state.
    pub fn step_tracked(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
        delta: Option<&WorkloadDelta>,
    ) -> Result<EpochReport, McssError> {
        let fleet = self.fleet.clone();
        let (allocation, report, pairs_reused, pairs_moved, full_resolve) =
            match &mut self.incremental {
                None => match &fleet {
                    Some(fleet) => {
                        let outcome = self.solver.solve_mixed(instance, fleet)?;
                        let elapsed = outcome.report.stage1_time + outcome.report.stage2_time;
                        let moved = outcome.report.pairs_selected;
                        let report = priced_report(
                            instance,
                            cost,
                            &outcome.allocation,
                            "mixed",
                            outcome.report.pairs_selected,
                            Some(fleet),
                            elapsed,
                        );
                        (outcome.allocation, report, 0, moved, true)
                    }
                    None => {
                        let outcome = self.solver.solve(instance, cost)?;
                        let moved = outcome.report.pairs_selected;
                        (outcome.allocation, outcome.report, 0, moved, true)
                    }
                },
                Some(inc) => {
                    let started = Instant::now();
                    let out = match delta {
                        Some(delta) => inc.step_with_delta(instance, cost, delta)?,
                        None => inc.step(instance, cost)?,
                    };
                    let elapsed = started.elapsed();
                    let report = priced_report(
                        instance,
                        cost,
                        &out.allocation,
                        if out.full_resolve {
                            if fleet.is_some() {
                                "mixed"
                            } else {
                                "CBP"
                            }
                        } else {
                            "repair"
                        },
                        out.selection.pair_count(),
                        fleet.as_ref(),
                        elapsed,
                    );
                    let moved = out.pairs_placed + out.pairs_removed;
                    (
                        out.allocation,
                        report,
                        out.pairs_reused,
                        moved,
                        out.full_resolve,
                    )
                }
            };
        let vms = report.vm_count;
        let vm_delta = match self.previous_vms {
            Some(prev) => vms as i64 - prev as i64,
            None => vms as i64,
        };
        self.previous_vms = Some(vms);
        self.cumulative_cost += report.total_cost;
        let report = EpochReport {
            epoch: self.epoch,
            allocation,
            report,
            vm_delta,
            cumulative_cost: self.cumulative_cost,
            pairs_reused,
            pairs_moved,
            full_resolve,
        };
        self.epoch += 1;
        Ok(report)
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Total objective across completed epochs.
    pub fn cumulative_cost(&self) -> Money {
        self.cumulative_cost
    }
}

/// Builds a [`SolveReport`] for a repair or mixed-fleet epoch (no stage
/// split, so the wall-clock lands on the Stage-2 slot). Typed allocations
/// with a fleet are priced per tier; everything else goes through the
/// scalar cost model.
fn priced_report(
    instance: &McssInstance,
    cost: &dyn CostModel,
    allocation: &crate::Allocation,
    allocator: &'static str,
    pairs_selected: u64,
    fleet: Option<&FleetCostModel>,
    elapsed: Duration,
) -> SolveReport {
    let workload = instance.workload();
    let lb = lower_bound(workload, instance.tau(), instance.capacity());
    let total_bandwidth = allocation.total_bandwidth();
    let (vm_cost, bandwidth_cost) = match fleet {
        Some(fleet) if allocation.typing().is_some() => mixed_cost_split(allocation, fleet),
        _ => (
            cost.vm_cost(allocation.vm_count()),
            cost.bandwidth_cost(total_bandwidth),
        ),
    };
    SolveReport {
        selector: "GSP",
        allocator,
        pairs_selected,
        vm_count: allocation.vm_count(),
        total_bandwidth,
        outgoing: allocation.outgoing_volume(workload),
        incoming: allocation.incoming_volume(workload),
        vm_cost,
        bandwidth_cost,
        total_cost: vm_cost + bandwidth_cost,
        shards: 1,
        lower_bound_vms: lb.vms,
        lower_bound_volume: lb.volume,
        lower_bound_cost: lb.cost(cost),
        stage1_time: Duration::ZERO,
        stage2_time: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::LinearCostModel;
    use pubsub_model::Bandwidth;

    fn base_workload() -> Workload {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [20u64, 12, 8, 5]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1]]).unwrap();
        b.add_subscriber([ts[1], ts[2], ts[3]]).unwrap();
        b.add_subscriber([ts[0], ts[3]]).unwrap();
        b.build()
    }

    #[test]
    fn drift_is_deterministic_per_epoch() {
        let w = base_workload();
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.5,
            seed: 11,
        };
        let a = drift.evolve(&w, 4);
        let b = drift.evolve(&w, 4);
        assert_eq!(a.rates(), b.rates());
        let c = drift.evolve(&w, 5);
        assert!(a.rates() != c.rates());
    }

    #[test]
    fn drift_keeps_rates_positive_and_counts_stable() {
        let w = base_workload();
        let drift = DriftModel {
            rate_sigma: 1.5,
            churn_prob: 1.0,
            seed: 7,
        };
        let evolved = drift.evolve(&w, 0);
        assert_eq!(evolved.num_topics(), w.num_topics());
        assert_eq!(evolved.num_subscribers(), w.num_subscribers());
        for t in evolved.topics() {
            assert!(!evolved.rate(t).is_zero());
        }
    }

    #[test]
    fn zero_drift_is_identity_on_rates() {
        let w = base_workload();
        let drift = DriftModel {
            rate_sigma: 0.0,
            churn_prob: 0.0,
            seed: 1,
        };
        let evolved = drift.evolve(&w, 9);
        assert_eq!(evolved.rates(), w.rates());
        for v in w.subscribers() {
            assert_eq!(evolved.interests(v), w.interests(v));
        }
    }

    #[test]
    fn reprovisioner_accumulates_over_epochs() {
        let drift = DriftModel {
            rate_sigma: 0.2,
            churn_prob: 0.3,
            seed: 3,
        };
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1));
        let mut re = Reprovisioner::new(Solver::default());
        let mut w = base_workload();
        let mut last_cumulative = Money::ZERO;
        for epoch in 0..5 {
            let inst = McssInstance::new(w.clone(), Rate::new(15), Bandwidth::new(120)).unwrap();
            let r = re.step(&inst, &cost).unwrap();
            assert_eq!(r.epoch, epoch);
            assert!(r.cumulative_cost >= last_cumulative);
            last_cumulative = r.cumulative_cost;
            w = drift.evolve(&w, epoch);
        }
        assert_eq!(re.epochs(), 5);
        assert_eq!(re.cumulative_cost(), last_cumulative);
    }

    #[test]
    fn first_epoch_delta_is_full_fleet() {
        let cost = LinearCostModel::vm_only(Money::from_dollars(1));
        let mut re = Reprovisioner::new(Solver::default());
        let inst = McssInstance::new(base_workload(), Rate::new(10), Bandwidth::new(100)).unwrap();
        let r = re.step(&inst, &cost).unwrap();
        assert_eq!(r.vm_delta, r.report.vm_count as i64);
    }
}
