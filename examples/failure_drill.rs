//! Operational drill: broker failures and incremental repair.
//!
//! Sizes a deployment with the MCSS solver, profiles how fragile the
//! resulting fleet is (how many subscribers each VM's failure would
//! starve), kills the most loaded brokers, measures the blast radius, and
//! repairs with the incremental re-allocator — the §VI "dynamic
//! on-demand provisioning" story made concrete.
//!
//! Run with: `cargo run --release --example failure_drill`

use mcss::prelude::*;
use mcss::sim::failure::{fail_vms, fragility_profile};
use mcss::solver::incremental::{IncrementalConfig, IncrementalReallocator};
use mcss::traces::SpotifyLike;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = SpotifyLike::new(20_000, 99).generate();
    let cost = Ec2CostModel::paper_effective(cloud_cost::instances::C3_LARGE)
        .with_volume_scale(workload.num_subscribers() as u64, 4_900_000);
    let instance = McssInstance::new(workload, Rate::new(100), cost.capacity())?;

    let mut reallocator = IncrementalReallocator::new(IncrementalConfig {
        compaction_threshold: 0.4,
        ..IncrementalConfig::default()
    });
    let deployed = reallocator.step(&instance, &cost)?;
    println!(
        "deployed {} VMs for {} pairs ({} total)",
        deployed.allocation.vm_count(),
        deployed.allocation.pair_count(),
        deployed.allocation.cost(&cost)
    );

    // Fragility: subscribers starved per single-VM failure.
    let profile = fragility_profile(&instance, &deployed.allocation);
    let worst = profile
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, &s)| (i, s));
    let (worst_vm, starved) = worst.expect("non-empty fleet");
    println!(
        "fragility: worst single failure is vm{worst_vm} -> {starved} starved \
         (mean {:.1} per VM)",
        profile.iter().sum::<usize>() as f64 / profile.len() as f64
    );

    // Kill the three most fragile brokers at once.
    let mut ranked: Vec<usize> = (0..profile.len()).collect();
    ranked.sort_by_key(|&i| std::cmp::Reverse(profile[i]));
    let killed: Vec<usize> = ranked.into_iter().take(3).collect();
    let impact = fail_vms(&instance, &deployed.allocation, &killed);
    println!(
        "killed VMs {killed:?}: {} pairs lost, {} subscribers starved",
        impact.pairs_lost,
        impact.starved.len()
    );

    // Repair: adopt the degraded fleet, then let the incremental
    // re-allocator re-place exactly the lost pairs onto survivors (and
    // fresh VMs where needed).
    reallocator.adopt(&deployed.selection, &impact.degraded);
    let repaired = reallocator.step(&instance, &cost)?;
    repaired
        .allocation
        .validate(instance.workload(), instance.tau())?;
    println!(
        "repaired: {} VMs, {} pairs re-placed, full re-solve: {} ({})",
        repaired.allocation.vm_count(),
        repaired.pairs_placed,
        repaired.full_resolve,
        repaired.allocation.cost(&cost)
    );
    println!("all subscribers satisfied again");
    Ok(())
}
