//! The discrete-event engine: publishers → VM brokers → subscribers.

use crate::{PublicationSchedule, ScheduleKind, SimReport, VmMeter};
use mcss_core::Allocation;
use pubsub_model::{SubscriberId, TopicId, Workload};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Window length in abstract ticks (rates are events-per-window).
    pub window_ticks: u64,
    /// Publication schedule model.
    pub schedule: ScheduleKind,
    /// Bytes per event, for byte-level meters (the paper uses 200).
    pub message_bytes: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            window_ticks: 1 << 20,
            schedule: ScheduleKind::Deterministic,
            message_bytes: 200,
        }
    }
}

/// The discrete-event pub/sub simulation.
///
/// Construction is cheap; [`Simulation::run`] does the work. The engine
/// routes each published event through the allocation's broker topology
/// in timestamp order (a binary-heap event queue) and meters per-VM
/// ingress/egress and per-subscriber delivery. See the
/// [crate docs](crate) for an end-to-end example.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// The active configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Replays the workload's publications through the allocation.
    ///
    /// Topics without any placement simply publish into the void (their
    /// pairs were not selected by Stage 1); subscribers of such topics
    /// receive nothing from them, exactly as the solver's model assumes.
    pub fn run(&self, workload: &Workload, allocation: &Allocation) -> SimReport {
        // Routing table: topic → [(vm index, subscribers served there)].
        let mut routes: Vec<Vec<(usize, &[SubscriberId])>> =
            vec![Vec::new(); workload.num_topics()];
        for (vm_idx, vm) in allocation.vms().iter().enumerate() {
            for placement in vm.placements() {
                routes[placement.topic.index()].push((vm_idx, &placement.subscribers));
            }
        }

        // Event queue: (tick, topic, sequence) — sequence breaks ties
        // deterministically.
        let mut queue: BinaryHeap<Reverse<(u64, u32, u64)>> = BinaryHeap::new();
        let mut published = 0u64;
        for t in workload.topics() {
            if routes[t.index()].is_empty() {
                // No broker hosts this topic: skip scheduling entirely
                // (saves work; nothing would be metered anyway).
                continue;
            }
            let schedule = PublicationSchedule::generate(
                t,
                workload.rate(t),
                self.config.window_ticks,
                self.config.schedule,
            );
            published += schedule.event_count();
            for (seq, &tick) in schedule.instants().iter().enumerate() {
                queue.push(Reverse((tick, t.raw(), seq as u64)));
            }
        }

        // Per-VM capacity metering: each meter knows its own VM's budget —
        // the tier capacity on a mixed (typed) fleet, the shared BC
        // otherwise — so reports can flag operational overloads per VM.
        let mut vms: Vec<VmMeter> = (0..allocation.vm_count())
            .map(|vm| VmMeter {
                capacity_events: allocation.vm_capacity(vm).get(),
                ..VmMeter::default()
            })
            .collect();
        let mut delivered_copies = vec![0u64; workload.num_subscribers()];
        let mut processed = 0u64;
        // Unique-delivery bookkeeping: pairs replicated across VMs count
        // once toward satisfaction (Eq. 3). Track which (t, v) pairs are
        // duplicated to avoid a per-event set; duplicates are rare (our
        // packers never produce them), so count uniquely per topic fanout.
        let mut delivered_unique = vec![0u64; workload.num_subscribers()];

        while let Some(Reverse((_tick, topic_raw, _seq))) = queue.pop() {
            processed += 1;
            let topic = TopicId::new(topic_raw);
            let fanout = &routes[topic.index()];
            let mut seen_this_event: Option<HashSet<SubscriberId>> = if fanout.len() > 1 {
                Some(HashSet::new())
            } else {
                None
            };
            for &(vm_idx, subscribers) in fanout {
                let meter = &mut vms[vm_idx];
                meter.ingress_events += 1;
                meter.ingress_bytes += self.config.message_bytes;
                meter.egress_events += subscribers.len() as u64;
                meter.egress_bytes += subscribers.len() as u64 * self.config.message_bytes;
                for &v in subscribers {
                    delivered_copies[v.index()] += 1;
                    match &mut seen_this_event {
                        Some(seen) => {
                            if seen.insert(v) {
                                delivered_unique[v.index()] += 1;
                            }
                        }
                        None => delivered_unique[v.index()] += 1,
                    }
                }
            }
        }

        SimReport {
            vms,
            delivered_events: delivered_unique,
            delivered_copies,
            published_events: published,
            processed_events: processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::{LinearCostModel, Money};
    use mcss_core::{McssInstance, Solver};
    use pubsub_model::{Bandwidth, Rate};

    fn solve(
        rates: &[u64],
        interests: &[&[u32]],
        tau: u64,
        cap: u64,
    ) -> (McssInstance, Allocation) {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        let inst = McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(cap)).unwrap();
        let cost = LinearCostModel::vm_only(Money::from_dollars(1));
        let outcome = Solver::default().solve(&inst, &cost).unwrap();
        (inst, outcome.allocation)
    }

    #[test]
    fn deterministic_bandwidth_matches_analytic_exactly() {
        let (inst, alloc) = solve(&[20, 10, 5], &[&[0, 1], &[1, 2], &[0, 2]], 15, 100);
        let sim = Simulation::new(SimConfig::default());
        let report = sim.run(inst.workload(), &alloc);
        assert_eq!(
            report.total_bandwidth_events(),
            alloc.total_bandwidth().get()
        );
        // Per-VM equality, not just the total.
        for (meter, vm) in report.vms.iter().zip(alloc.vms()) {
            assert_eq!(meter.total_events(), vm.used().get());
            assert_eq!(
                meter.ingress_events,
                vm.incoming_volume(inst.workload()).get()
            );
            assert_eq!(
                meter.egress_events,
                vm.outgoing_volume(inst.workload()).get()
            );
        }
    }

    #[test]
    fn satisfaction_holds_operationally() {
        let (inst, alloc) = solve(&[30, 12, 7, 4], &[&[0, 1, 2], &[1, 2, 3], &[0, 3]], 14, 120);
        let report = Simulation::new(SimConfig::default()).run(inst.workload(), &alloc);
        assert!(report.all_satisfied(inst.workload(), inst.tau()));
        assert_eq!(report.unsatisfied_count(inst.workload(), inst.tau()), 0);
    }

    #[test]
    fn bytes_scale_with_message_size() {
        let (inst, alloc) = solve(&[10], &[&[0]], 10, 100);
        let small = Simulation::new(SimConfig {
            message_bytes: 100,
            ..SimConfig::default()
        })
        .run(inst.workload(), &alloc);
        let large = Simulation::new(SimConfig {
            message_bytes: 200,
            ..SimConfig::default()
        })
        .run(inst.workload(), &alloc);
        assert_eq!(
            small.total_bandwidth_bytes() * 2,
            large.total_bandwidth_bytes()
        );
        assert_eq!(
            small.total_bandwidth_events(),
            large.total_bandwidth_events()
        );
    }

    #[test]
    fn unselected_topics_do_not_flow() {
        // τ = 5 with rates {5, 50}: Stage 1 selects only the 5-rate topic.
        let (inst, alloc) = solve(&[5, 50], &[&[0, 1]], 5, 200);
        let report = Simulation::new(SimConfig::default()).run(inst.workload(), &alloc);
        assert_eq!(report.published_events, 5);
        assert_eq!(report.delivered_events[0], 5);
    }

    #[test]
    fn poisson_mode_satisfies_in_expectation() {
        // With rates comfortably above τ, random counts still satisfy.
        let (inst, alloc) = solve(&[200, 100], &[&[0], &[1]], 50, 2_000);
        let report = Simulation::new(SimConfig {
            schedule: ScheduleKind::Poisson { seed: 42 },
            ..SimConfig::default()
        })
        .run(inst.workload(), &alloc);
        assert!(report.all_satisfied(inst.workload(), inst.tau()));
        // Counts near expectation.
        let total: u64 = report.delivered_events.iter().sum();
        assert!((150..=450).contains(&total), "delivered {total}");
    }

    #[test]
    fn replicated_pairs_count_once_for_satisfaction() {
        // Hand-build an allocation with (t0, v0) on two VMs.
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(10)).unwrap();
        b.add_subscriber([t0]).unwrap();
        let w = b.build();
        use std::collections::HashMap;
        let table = |vs: &[u32]| -> HashMap<TopicId, Vec<SubscriberId>> {
            [(t0, vs.iter().map(|&v| SubscriberId::new(v)).collect())]
                .into_iter()
                .collect()
        };
        let alloc =
            Allocation::from_tables(vec![table(&[0]), table(&[0])], &w, Bandwidth::new(100));
        let report = Simulation::new(SimConfig::default()).run(&w, &alloc);
        assert_eq!(report.delivered_events[0], 10); // unique
        assert_eq!(report.delivered_copies[0], 20); // both replicas
        assert_eq!(report.total_bandwidth_events(), 40);
    }

    #[test]
    fn meters_carry_per_vm_capacity_and_flag_no_overload_when_valid() {
        let (inst, alloc) = solve(&[20, 10, 5], &[&[0, 1], &[1, 2], &[0, 2]], 15, 100);
        let report = Simulation::new(SimConfig::default()).run(inst.workload(), &alloc);
        for meter in &report.vms {
            assert_eq!(meter.capacity_events, inst.capacity().get());
        }
        // Deterministic replay of a valid allocation never overloads.
        assert_eq!(report.overloaded_vms(), 0);
        assert!(report.peak_utilization().unwrap() <= 1.0);
    }

    #[test]
    fn mixed_fleet_meters_use_each_tier_capacity() {
        use cloud_cost::instances;
        use mcss_core::FleetTyping;
        use std::collections::HashMap;
        // Two VMs: t0 (rate 20, one pair → 40 units) on a big tier, t1
        // (rate 10, one pair → 20 units) on a small one.
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(20)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        let w = b.build();
        let table = |t: TopicId, vs: &[u32]| -> HashMap<TopicId, Vec<SubscriberId>> {
            [(t, vs.iter().map(|&v| SubscriberId::new(v)).collect())]
                .into_iter()
                .collect()
        };
        let alloc = Allocation::from_tables(
            vec![table(t0, &[0]), table(t1, &[0])],
            &w,
            Bandwidth::new(50),
        )
        .with_typing(FleetTyping::new(
            vec![
                (instances::C3_LARGE, Bandwidth::new(25)),
                (instances::C3_XLARGE, Bandwidth::new(50)),
            ],
            vec![1, 0],
        ));
        let report = Simulation::new(SimConfig::default()).run(&w, &alloc);
        assert_eq!(report.vms[0].capacity_events, 50);
        assert_eq!(report.vms[1].capacity_events, 25);
        assert_eq!(report.vms[0].utilization(), Some(0.8)); // 40/50
        assert_eq!(report.vms[1].utilization(), Some(0.8)); // 20/25
        assert_eq!(report.overloaded_vms(), 0);
    }

    #[test]
    fn empty_allocation_reports_zeroes() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let w = b.build();
        let alloc = Allocation::from_tables(Vec::new(), &w, Bandwidth::new(10));
        let report = Simulation::new(SimConfig::default()).run(&w, &alloc);
        assert_eq!(report.published_events, 0);
        assert_eq!(report.total_bandwidth_events(), 0);
        assert!(report.all_satisfied(&w, Rate::new(100))); // τ_v = 0
    }
}
