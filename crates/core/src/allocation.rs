//! The output of Stage 2: topic-subscriber pairs placed on VMs.

use cloud_cost::{CostModel, FleetCostModel, InstanceType, Money};
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload};
use std::collections::HashMap;
use std::fmt;

/// Per-VM instance typing of a heterogeneous fleet.
///
/// A homogeneous [`Allocation`] carries one capacity for every VM; a
/// mixed-fleet allocation additionally records *which tier* each VM rents,
/// so validation can enforce per-VM capacities and reporting can price the
/// fleet tier by tier. Tiers are `(instance type, capacity)` pairs — the
/// capacity is the scale-adjusted event budget the packer enforced, which
/// the nominal [`InstanceType`] alone cannot reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetTyping {
    tiers: Vec<(InstanceType, Bandwidth)>,
    assignment: Vec<u32>,
}

impl FleetTyping {
    /// Builds a typing from the tier table and a per-VM tier assignment.
    ///
    /// # Panics
    ///
    /// Panics if an assignment entry indexes past the tier table or a
    /// tier's capacity is zero.
    pub fn new(tiers: Vec<(InstanceType, Bandwidth)>, assignment: Vec<u32>) -> Self {
        assert!(
            tiers.iter().all(|(_, cap)| !cap.is_zero()),
            "tier capacity must be positive"
        );
        assert!(
            assignment.iter().all(|&t| (t as usize) < tiers.len()),
            "assignment references an unknown tier"
        );
        FleetTyping { tiers, assignment }
    }

    /// The tier table, in the order the packer ranked it (cost density
    /// ascending for [`MixedFleetPacker`](crate::stage2::MixedFleetPacker)
    /// output).
    #[inline]
    pub fn tiers(&self) -> &[(InstanceType, Bandwidth)] {
        &self.tiers
    }

    /// Per-VM tier indices, parallel to [`Allocation::vms`].
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The tier of VM `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[inline]
    pub fn tier_of(&self, vm: usize) -> (InstanceType, Bandwidth) {
        self.tiers[self.assignment[vm] as usize]
    }

    /// VMs per tier, parallel to [`FleetTyping::tiers`].
    pub fn tier_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.tiers.len()];
        for &t in &self.assignment {
            counts[t as usize] += 1;
        }
        counts
    }

    /// Human-readable fleet mix, e.g. `"3×c3.large + 1×c3.xlarge"`
    /// (tiers with zero VMs are omitted; an empty fleet reads `"empty"`).
    pub fn mix(&self) -> String {
        let counts = self.tier_counts();
        let parts: Vec<String> = self
            .tiers
            .iter()
            .zip(&counts)
            .filter(|(_, &n)| n > 0)
            .map(|((ty, _), &n)| format!("{n}\u{d7}{}", ty.name()))
            .collect();
        if parts.is_empty() {
            "empty".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// All pairs of one topic placed on one VM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopicPlacement {
    /// The topic whose stream this VM ingests.
    pub topic: TopicId,
    /// The subscribers served from this VM (sorted by id).
    pub subscribers: Vec<SubscriberId>,
}

/// One virtual machine and its assigned pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmAllocation {
    placements: Vec<TopicPlacement>,
    used: Bandwidth,
}

impl VmAllocation {
    /// Wraps pre-sorted placements with an externally maintained
    /// bandwidth counter — the [`FleetLedger`](crate::FleetLedger) export
    /// path, which keeps both invariants (placements sorted by topic,
    /// subscribers sorted by id, `used` exact per Eq. 2) incrementally
    /// and must not pay a full re-sort + recompute per epoch.
    /// [`Allocation::validate`] still cross-checks `used` against the
    /// placements.
    pub(crate) fn from_sorted_parts(placements: Vec<TopicPlacement>, used: Bandwidth) -> Self {
        debug_assert!(placements.windows(2).all(|w| w[0].topic < w[1].topic));
        debug_assert!(placements
            .iter()
            .all(|p| p.subscribers.windows(2).all(|w| w[0] < w[1])));
        VmAllocation { placements, used }
    }
}

impl VmAllocation {
    /// Bandwidth in use:
    /// `bw_b = Σ_pairs ev_t + Σ_unique-topics ev_t` (paper Eq. 2).
    #[inline]
    pub fn used(&self) -> Bandwidth {
        self.used
    }

    /// The topic placements on this VM, ordered by topic id.
    #[inline]
    pub fn placements(&self) -> &[TopicPlacement] {
        &self.placements
    }

    /// Number of distinct topics (each contributes one incoming stream).
    pub fn topic_count(&self) -> usize {
        self.placements.len()
    }

    /// Number of pairs (outgoing delivery streams).
    pub fn pair_count(&self) -> u64 {
        self.placements
            .iter()
            .map(|p| p.subscribers.len() as u64)
            .sum()
    }

    /// Recomputes outgoing volume from the placements.
    pub fn outgoing_volume(&self, workload: &Workload) -> Bandwidth {
        self.placements
            .iter()
            .map(|p| workload.rate(p.topic) * p.subscribers.len() as u64)
            .sum()
    }

    /// Recomputes incoming volume (one stream per distinct topic).
    pub fn incoming_volume(&self, workload: &Workload) -> Bandwidth {
        self.placements
            .iter()
            .map(|p| Bandwidth::from(workload.rate(p.topic)))
            .sum()
    }
}

/// Why an allocation failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocationError {
    /// A VM's bandwidth exceeds the capacity constraint `bw_b ≤ BC`.
    CapacityExceeded {
        /// Index of the offending VM.
        vm: usize,
        /// Its recomputed bandwidth.
        used: Bandwidth,
        /// The capacity it violates.
        capacity: Bandwidth,
    },
    /// A VM's recorded bandwidth disagrees with its placements (internal
    /// accounting bug).
    BandwidthMismatch {
        /// Index of the offending VM.
        vm: usize,
        /// The value stored during packing.
        recorded: Bandwidth,
        /// The value recomputed from placements.
        actual: Bandwidth,
    },
    /// The same pair appears twice on one VM.
    DuplicatePair {
        /// Index of the offending VM.
        vm: usize,
        /// The duplicated topic.
        topic: TopicId,
        /// The duplicated subscriber.
        subscriber: SubscriberId,
    },
    /// A subscriber receives less than `τ_v` across all VMs.
    UnsatisfiedSubscriber {
        /// The starved subscriber.
        subscriber: SubscriberId,
        /// Rate actually delivered.
        delivered: Rate,
        /// Rate required (`τ_v`).
        required: Rate,
    },
    /// A placement references a pair that is not in the workload (the
    /// subscriber is not interested in the topic).
    ForeignPair {
        /// Index of the offending VM.
        vm: usize,
        /// The topic placed.
        topic: TopicId,
        /// The subscriber that never subscribed to it.
        subscriber: SubscriberId,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::CapacityExceeded { vm, used, capacity } => {
                write!(f, "vm {vm} uses {used} but capacity is {capacity}")
            }
            AllocationError::BandwidthMismatch {
                vm,
                recorded,
                actual,
            } => {
                write!(
                    f,
                    "vm {vm} recorded {recorded} but placements total {actual}"
                )
            }
            AllocationError::DuplicatePair {
                vm,
                topic,
                subscriber,
            } => {
                write!(f, "vm {vm} holds pair ({topic}, {subscriber}) twice")
            }
            AllocationError::UnsatisfiedSubscriber {
                subscriber,
                delivered,
                required,
            } => {
                write!(f, "{subscriber} receives {delivered}, needs {required}")
            }
            AllocationError::ForeignPair {
                vm,
                topic,
                subscriber,
            } => {
                write!(f, "vm {vm} serves ({topic}, {subscriber}) but {subscriber} never subscribed to {topic}")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// A complete Stage-2 output: the VM set `B` with all pair placements.
///
/// See [`Allocation::validate`] for the invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    vms: Vec<VmAllocation>,
    capacity: Bandwidth,
    /// Per-VM instance typing for mixed fleets; `None` means every VM has
    /// capacity [`Allocation::capacity`] (the homogeneous case).
    typing: Option<FleetTyping>,
}

impl Allocation {
    /// Assembles an allocation from per-VM topic→subscribers tables — the
    /// hash-map twin of [`Allocation::from_groups`], kept for external
    /// packers (and tests) that produce their own placements.
    ///
    /// Per-VM bandwidth is recomputed from the tables and placements are
    /// sorted for deterministic output. No constraint is checked here;
    /// call [`Allocation::validate`] afterwards.
    pub fn from_tables(
        tables: Vec<HashMap<TopicId, Vec<SubscriberId>>>,
        workload: &Workload,
        capacity: Bandwidth,
    ) -> Allocation {
        Allocation::from_groups(
            tables
                .into_iter()
                .map(|table| table.into_iter().collect())
                .collect(),
            workload,
            capacity,
        )
    }

    /// Wraps pre-assembled VMs without re-sorting or recomputing
    /// bandwidth (see [`VmAllocation::from_sorted_parts`]).
    pub(crate) fn from_vm_allocations(vms: Vec<VmAllocation>, capacity: Bandwidth) -> Allocation {
        Allocation {
            vms,
            capacity,
            typing: None,
        }
    }

    /// Attaches per-VM instance typing (heterogeneous fleets). The
    /// `capacity` the allocation was built with remains the *fleet-wide*
    /// bound (the largest tier); [`Allocation::validate`] then enforces
    /// each VM's own tier capacity instead.
    ///
    /// # Panics
    ///
    /// Panics if the typing's assignment length differs from the VM count.
    pub fn with_typing(mut self, typing: FleetTyping) -> Allocation {
        assert_eq!(
            typing.assignment().len(),
            self.vms.len(),
            "typing must assign a tier to every VM"
        );
        self.typing = Some(typing);
        self
    }

    /// The per-VM instance typing, if this is a mixed-fleet allocation.
    #[inline]
    pub fn typing(&self) -> Option<&FleetTyping> {
        self.typing.as_ref()
    }

    /// The capacity constraint of VM `vm`: its tier's capacity for typed
    /// fleets, the homogeneous [`Allocation::capacity`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range on a typed allocation.
    #[inline]
    pub fn vm_capacity(&self, vm: usize) -> Bandwidth {
        match &self.typing {
            Some(typing) => typing.tier_of(vm).1,
            None => self.capacity,
        }
    }

    /// The mixed-fleet objective `Σ_i C1_i(n_i) + C2(Σ_b bw_b)` under a
    /// [`FleetCostModel`]: each VM is priced at its own tier's window
    /// rate; bandwidth is priced once, fleet-wide. Untyped allocations are
    /// priced as a homogeneous fleet of the fleet's tier whose capacity
    /// equals [`Allocation::capacity`].
    ///
    /// # Panics
    ///
    /// Panics if a typed VM's instance name is missing from `fleet`, or if
    /// an untyped allocation's capacity matches no tier.
    pub fn cost_on_fleet(&self, fleet: &FleetCostModel) -> Money {
        let vm_cost: Money = match &self.typing {
            Some(typing) => typing
                .tiers()
                .iter()
                .zip(typing.tier_counts())
                .map(|((ty, _), count)| {
                    let tier = fleet
                        .tiers()
                        .iter()
                        .position(|t| t.instance().name() == ty.name())
                        .unwrap_or_else(|| panic!("tier {:?} not in fleet", ty.name()));
                    fleet.tier(tier).vm_cost(count)
                })
                .sum(),
            None => {
                let tier = fleet
                    .tiers()
                    .iter()
                    .position(|t| t.capacity() == self.capacity)
                    .expect("no fleet tier matches the homogeneous capacity");
                fleet.tier(tier).vm_cost(self.vm_count())
            }
        };
        vm_cost + fleet.bandwidth_cost(self.total_bandwidth())
    }

    /// The VMs in deployment order.
    #[inline]
    pub fn vms(&self) -> &[VmAllocation] {
        &self.vms
    }

    /// Consumes the allocation, yielding per-VM `(topic, subscribers)`
    /// rows sorted by topic id (used by the sharded solver to merge shard
    /// fleets without cloning or re-hashing the placement lists).
    pub(crate) fn into_vm_groups(self) -> Vec<Vec<(TopicId, Vec<SubscriberId>)>> {
        self.vms
            .into_iter()
            .map(|vm| {
                vm.placements
                    .into_iter()
                    .map(|p| (p.topic, p.subscribers))
                    .collect()
            })
            .collect()
    }

    /// Assembles an allocation from per-VM `(topic, subscribers)` rows —
    /// the ledger-native constructor: the Stage-2 allocators, the sharded
    /// merge, and the incremental [`FleetLedger`](crate::FleetLedger) all
    /// keep their fleets in this layout, so assembly is a sort + bandwidth
    /// recompute with no hashing pass. No constraint is checked here; call
    /// [`Allocation::validate`] afterwards.
    ///
    /// ```
    /// use mcss_core::Allocation;
    /// use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = Workload::builder();
    /// let t = b.add_topic(Rate::new(10))?;
    /// let v = b.add_subscriber([t])?;
    /// let w = b.build();
    ///
    /// let a = Allocation::from_groups(vec![vec![(t, vec![v])]], &w, Bandwidth::new(100));
    /// assert_eq!(a.vm_count(), 1);
    /// assert_eq!(a.total_bandwidth(), Bandwidth::new(20)); // in + out
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_groups(
        groups: Vec<Vec<(TopicId, Vec<SubscriberId>)>>,
        workload: &Workload,
        capacity: Bandwidth,
    ) -> Allocation {
        let vms = groups
            .into_iter()
            .map(|rows| {
                let mut placements: Vec<TopicPlacement> = rows
                    .into_iter()
                    .map(|(topic, mut subscribers)| {
                        subscribers.sort_unstable();
                        TopicPlacement { topic, subscribers }
                    })
                    .collect();
                placements.sort_unstable_by_key(|p| p.topic);
                let mut used = Bandwidth::ZERO;
                for p in &placements {
                    let rate = workload.rate(p.topic);
                    used += rate * (p.subscribers.len() as u64 + 1);
                }
                VmAllocation { placements, used }
            })
            .collect();
        Allocation {
            vms,
            capacity,
            typing: None,
        }
    }

    /// `|B|` — the number of VMs deployed.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The fleet-wide capacity bound this allocation was packed under —
    /// every VM's capacity in the homogeneous case, the largest tier's
    /// capacity for a typed (mixed) fleet. Per-VM bounds come from
    /// [`Allocation::vm_capacity`].
    #[inline]
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// `Σ_b bw_b` — total bandwidth consumption.
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.vms.iter().map(VmAllocation::used).sum()
    }

    /// Total outgoing delivery volume across VMs.
    pub fn outgoing_volume(&self, workload: &Workload) -> Bandwidth {
        self.vms.iter().map(|vm| vm.outgoing_volume(workload)).sum()
    }

    /// Total incoming publication volume across VMs. Splitting a topic
    /// over `k` VMs counts its rate `k` times — the replication overhead
    /// the Stage-2 optimizations fight (§II-A).
    pub fn incoming_volume(&self, workload: &Workload) -> Bandwidth {
        self.vms.iter().map(|vm| vm.incoming_volume(workload)).sum()
    }

    /// Total pairs placed.
    pub fn pair_count(&self) -> u64 {
        self.vms.iter().map(VmAllocation::pair_count).sum()
    }

    /// The objective value `C1(|B|) + C2(Σ_b bw_b)` under a cost model.
    pub fn cost(&self, model: &dyn CostModel) -> Money {
        model.total_cost(self.vm_count(), self.total_bandwidth())
    }

    /// Rate delivered to each subscriber, counting a pair once even if
    /// (contrary to our packers' behaviour) it appears on several VMs —
    /// the `max_b x_tvb` semantics of Eq. 3.
    ///
    /// Cross-VM dedup is one bit per workload interest pair, indexed
    /// through [`Workload::pair_index`] — a flat bitmap over the interest
    /// arena instead of a hash set per subscriber. Pairs outside the
    /// interest relation (possible only on invalid input; `validate`
    /// rejects them separately) fall back to a sorted list so they still
    /// count exactly once.
    pub fn delivered_rates(&self, workload: &Workload) -> Vec<Rate> {
        let mut seen = vec![false; workload.pair_count() as usize];
        let mut foreign: Vec<(SubscriberId, TopicId)> = Vec::new();
        let mut delivered = vec![Rate::ZERO; workload.num_subscribers()];
        for vm in &self.vms {
            for p in vm.placements() {
                for &v in &p.subscribers {
                    match workload.pair_index(v, p.topic) {
                        Some(i) => {
                            if !seen[i] {
                                seen[i] = true;
                                delivered[v.index()] += workload.rate(p.topic);
                            }
                        }
                        None => foreign.push((v, p.topic)),
                    }
                }
            }
        }
        foreign.sort_unstable();
        foreign.dedup();
        for (v, t) in foreign {
            delivered[v.index()] += workload.rate(t);
        }
        delivered
    }

    /// Verifies every MCSS constraint (paper Eq. 2–3) plus internal
    /// accounting:
    ///
    /// 1. each pair references a real interest (no foreign pairs);
    /// 2. no pair is duplicated within a VM;
    /// 3. recorded per-VM bandwidth equals the recomputed value;
    /// 4. `bw_b ≤ BC` for every VM — each VM's *own tier* capacity on a
    ///    typed (mixed-fleet) allocation, the shared capacity otherwise;
    /// 5. every subscriber receives at least `τ_v`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in the order above.
    pub fn validate(&self, workload: &Workload, tau: Rate) -> Result<(), AllocationError> {
        for (i, vm) in self.vms.iter().enumerate() {
            let mut prev: Option<TopicId> = None;
            for p in vm.placements() {
                if prev == Some(p.topic) {
                    return Err(AllocationError::DuplicatePair {
                        vm: i,
                        topic: p.topic,
                        subscriber: p
                            .subscribers
                            .first()
                            .copied()
                            .unwrap_or(SubscriberId::new(0)),
                    });
                }
                prev = Some(p.topic);
                for pair in p.subscribers.windows(2) {
                    if pair[0] == pair[1] {
                        return Err(AllocationError::DuplicatePair {
                            vm: i,
                            topic: p.topic,
                            subscriber: pair[0],
                        });
                    }
                }
                for &v in &p.subscribers {
                    if workload.interests(v).binary_search(&p.topic).is_err() {
                        return Err(AllocationError::ForeignPair {
                            vm: i,
                            topic: p.topic,
                            subscriber: v,
                        });
                    }
                }
            }
            let actual = vm.outgoing_volume(workload) + vm.incoming_volume(workload);
            if actual != vm.used() {
                return Err(AllocationError::BandwidthMismatch {
                    vm: i,
                    recorded: vm.used(),
                    actual,
                });
            }
            let vm_capacity = self.vm_capacity(i);
            if vm.used() > vm_capacity {
                return Err(AllocationError::CapacityExceeded {
                    vm: i,
                    used: vm.used(),
                    capacity: vm_capacity,
                });
            }
        }
        let delivered = self.delivered_rates(workload);
        for v in workload.subscribers() {
            let required = workload.tau_v(v, tau);
            if delivered[v.index()] < required {
                return Err(AllocationError::UnsatisfiedSubscriber {
                    subscriber: v,
                    delivered: delivered[v.index()],
                    required,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(20)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        b.add_subscriber([t0, t1]).unwrap(); // v0
        b.add_subscriber([t1]).unwrap(); // v1
        b.build()
    }

    fn table(entries: &[(u32, &[u32])]) -> HashMap<TopicId, Vec<SubscriberId>> {
        entries
            .iter()
            .map(|&(t, vs)| {
                (
                    TopicId::new(t),
                    vs.iter().map(|&v| SubscriberId::new(v)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn bandwidth_accounting_matches_eq2() {
        let w = workload();
        // One VM with both pairs of t1 and the single pair of t0:
        // outgoing 20+10+10 = 40, incoming 20+10 = 30, total 70.
        let a = Allocation::from_tables(
            vec![table(&[(0, &[0]), (1, &[0, 1])])],
            &w,
            Bandwidth::new(100),
        );
        assert_eq!(a.vm_count(), 1);
        assert_eq!(a.total_bandwidth(), Bandwidth::new(70));
        assert_eq!(a.outgoing_volume(&w), Bandwidth::new(40));
        assert_eq!(a.incoming_volume(&w), Bandwidth::new(30));
        assert_eq!(a.pair_count(), 3);
        assert!(a.validate(&w, Rate::new(30)).is_ok());
    }

    #[test]
    fn splitting_topic_doubles_incoming() {
        let w = workload();
        let a = Allocation::from_tables(
            vec![table(&[(1, &[0])]), table(&[(1, &[1])])],
            &w,
            Bandwidth::new(100),
        );
        // Each VM: 10 out + 10 in = 20.
        assert_eq!(a.total_bandwidth(), Bandwidth::new(40));
        assert_eq!(a.incoming_volume(&w), Bandwidth::new(20));
    }

    #[test]
    fn validate_catches_capacity_violation() {
        let w = workload();
        let a = Allocation::from_tables(
            vec![table(&[(0, &[0]), (1, &[0, 1])])],
            &w,
            Bandwidth::new(69),
        );
        assert_eq!(
            a.validate(&w, Rate::ZERO),
            Err(AllocationError::CapacityExceeded {
                vm: 0,
                used: Bandwidth::new(70),
                capacity: Bandwidth::new(69),
            })
        );
    }

    #[test]
    fn validate_catches_starvation() {
        let w = workload();
        // Only v0 served; v1 needs 10 (τ_v = min(30, 10)).
        let a = Allocation::from_tables(
            vec![table(&[(0, &[0]), (1, &[0])])],
            &w,
            Bandwidth::new(100),
        );
        assert_eq!(
            a.validate(&w, Rate::new(30)),
            Err(AllocationError::UnsatisfiedSubscriber {
                subscriber: SubscriberId::new(1),
                delivered: Rate::ZERO,
                required: Rate::new(10),
            })
        );
    }

    #[test]
    fn validate_catches_duplicate_subscriber() {
        let w = workload();
        let mut t = table(&[(1, &[0])]);
        t.get_mut(&TopicId::new(1))
            .unwrap()
            .push(SubscriberId::new(0));
        let a = Allocation::from_tables(vec![t], &w, Bandwidth::new(100));
        assert!(matches!(
            a.validate(&w, Rate::ZERO),
            Err(AllocationError::DuplicatePair { .. })
        ));
    }

    #[test]
    fn validate_catches_foreign_pair() {
        let w = workload();
        // v1 never subscribed to t0.
        let a = Allocation::from_tables(vec![table(&[(0, &[1])])], &w, Bandwidth::new(100));
        assert!(matches!(
            a.validate(&w, Rate::ZERO),
            Err(AllocationError::ForeignPair { vm: 0, .. })
        ));
    }

    #[test]
    fn cross_vm_duplicates_count_once_for_delivery() {
        let w = workload();
        let a = Allocation::from_tables(
            vec![table(&[(1, &[1])]), table(&[(1, &[1])])],
            &w,
            Bandwidth::new(100),
        );
        // (t1, v1) on two VMs: delivered rate counts it once (Eq. 3's max).
        assert_eq!(a.delivered_rates(&w)[1], Rate::new(10));
        // But both VMs pay bandwidth for it.
        assert_eq!(a.total_bandwidth(), Bandwidth::new(40));
    }

    #[test]
    fn cost_uses_model() {
        use cloud_cost::LinearCostModel;
        let w = workload();
        let a = Allocation::from_tables(
            vec![table(&[(1, &[0, 1])]), table(&[(0, &[0])])],
            &w,
            Bandwidth::new(100),
        );
        let m = LinearCostModel::new(Money::from_dollars(10), Money::from_micros(1));
        // 2 VMs, bandwidth = (10in + 20out) + (20in + 20out) = 70... compute:
        // vm0: t1 pairs v0,v1: out 20, in 10 => 30; vm1: t0 pair v0: out 20, in 20 => 40.
        assert_eq!(a.total_bandwidth(), Bandwidth::new(70));
        assert_eq!(a.cost(&m), Money::from_dollars(20) + Money::from_micros(70));
    }

    #[test]
    fn typed_allocation_enforces_per_vm_capacity() {
        use cloud_cost::instances;
        let w = workload();
        // VM0 uses 70 (needs the big tier), VM1 uses 20 (fits the small).
        let a = Allocation::from_tables(
            vec![table(&[(0, &[0]), (1, &[0, 1])]), table(&[(1, &[1])])],
            &w,
            Bandwidth::new(100),
        );
        let tiers = vec![
            (instances::C3_LARGE, Bandwidth::new(25)),
            (instances::C3_XLARGE, Bandwidth::new(100)),
        ];
        let good = a
            .clone()
            .with_typing(FleetTyping::new(tiers.clone(), vec![1, 0]));
        assert!(good.validate(&w, Rate::new(30)).is_ok());
        assert_eq!(good.vm_capacity(0), Bandwidth::new(100));
        assert_eq!(good.vm_capacity(1), Bandwidth::new(25));
        assert_eq!(good.typing().unwrap().tier_counts(), vec![1, 1]);
        assert_eq!(
            good.typing().unwrap().mix(),
            "1\u{d7}c3.large + 1\u{d7}c3.xlarge"
        );

        // Assigning the 70-unit VM to the 25-unit tier must fail.
        let bad = a.with_typing(FleetTyping::new(tiers, vec![0, 1]));
        assert_eq!(
            bad.validate(&w, Rate::new(30)),
            Err(AllocationError::CapacityExceeded {
                vm: 0,
                used: Bandwidth::new(70),
                capacity: Bandwidth::new(25),
            })
        );
    }

    #[test]
    fn cost_on_fleet_prices_each_tier() {
        use cloud_cost::{instances, Ec2CostModel, FleetCostModel};
        let w = workload();
        let a = Allocation::from_tables(
            vec![table(&[(0, &[0]), (1, &[0, 1])]), table(&[(1, &[1])])],
            &w,
            Bandwidth::new(100),
        );
        let fleet = FleetCostModel::new(vec![
            Ec2CostModel::paper_default(instances::C3_LARGE).with_capacity_events(25),
            Ec2CostModel::paper_default(instances::C3_XLARGE).with_capacity_events(100),
        ]);
        let typed = a.with_typing(FleetTyping::new(
            vec![
                (instances::C3_LARGE, Bandwidth::new(25)),
                (instances::C3_XLARGE, Bandwidth::new(100)),
            ],
            vec![1, 0],
        ));
        // One c3.large ($36/window) + one c3.xlarge ($72) + bandwidth.
        let expected =
            cloud_cost::Money::from_dollars(108) + fleet.bandwidth_cost(typed.total_bandwidth());
        assert_eq!(typed.cost_on_fleet(&fleet), expected);
    }

    #[test]
    #[should_panic(expected = "tier to every VM")]
    fn typing_length_mismatch_panics() {
        use cloud_cost::instances;
        let w = workload();
        let a = Allocation::from_tables(vec![table(&[(1, &[0])])], &w, Bandwidth::new(100));
        let _ = a.with_typing(FleetTyping::new(
            vec![(instances::C3_LARGE, Bandwidth::new(100))],
            vec![0, 0],
        ));
    }

    #[test]
    fn empty_allocation_is_valid_for_zero_tau() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        let w = b.build(); // no subscribers
        let a = Allocation::from_tables(Vec::new(), &w, Bandwidth::new(10));
        assert_eq!(a.vm_count(), 0);
        assert!(a.validate(&w, Rate::new(100)).is_ok());
    }
}
