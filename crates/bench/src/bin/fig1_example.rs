//! E-FIG1: the worked allocation example of Fig. 1.
//!
//! Run with: `cargo run --release -p mcss_bench --bin fig1_example`

fn main() {
    print!("{}", mcss_bench::experiments::fig1_example());
}
