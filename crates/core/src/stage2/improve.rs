//! Anytime Stage-2 improvement — certificate-guided local search.
//!
//! Takes any feasible allocation (CBP, mixed-fleet, or ledger-exported)
//! and applies deterministic, cost-non-increasing moves until the cost
//! meets the Alg. 5 [`lower_bound`](crate::lower_bound) certificate, the
//! [`SearchBudget`] runs out, or no move improves:
//!
//! * **group re-home** — a topic split across VMs loses one incoming
//!   stream when its smallest group moves to a co-host with room (the
//!   same move the shard merge's phase 1 applies);
//! * **pairwise group swap** — two VMs that both host topics `t` and `u`
//!   exchange whole groups, saving both incoming streams even when
//!   neither single re-home fits on its own;
//! * **under-full VM dissolution** — relocate *every* group of a light
//!   VM (co-hosts preferred) and release it, exactly the shard merge's
//!   phase 2 generalized to per-VM tier capacities;
//! * **tier re-type** (mixed fleets) — re-run the mixed packer's
//!   downsize rule per VM after loads shrank.
//!
//! Every move strictly shrinks bandwidth, the fleet, or the rental bill
//! and never grows any of them, so cost is non-increasing under any
//! monotone cost model and the search terminates. Moves relocate whole
//! pair sets — the Stage-1 selection and every delivered rate are
//! bit-identical before and after. All scans visit VMs and topics in
//! sorted order: given the same input and step budget, the result is
//! identical on every run (wall-clock budgets stop early at a
//! machine-dependent point and are therefore kept out of replayed
//! contexts like `serve` compaction).

use super::mixed::{downsize, typing_for};
use crate::Allocation;
use cloud_cost::{CostModel, FleetCostModel, Money};
use pubsub_model::{Bandwidth, SubscriberId, TopicId, Workload};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// One VM of a fleet under search: `(topic, subscribers)` rows sorted by
/// topic id — the same layout `Allocation` placements use, so fleets move
/// in and out of the search without re-hashing. Shared with the shard
/// merge in [`crate::shard`].
pub(crate) type VmGroups = Vec<(TopicId, Vec<SubscriberId>)>;

/// Position of topic `t` in a VM's sorted rows, if hosted.
#[inline]
pub(crate) fn group_pos(vm: &VmGroups, t: TopicId) -> Option<usize> {
    vm.binary_search_by_key(&t, |&(tt, _)| tt).ok()
}

/// Recomputes a VM's bandwidth (Eq. 2) under current rates.
pub(crate) fn vm_usage(vm: &VmGroups, workload: &Workload) -> Bandwidth {
    let mut total = Bandwidth::ZERO;
    for (t, subs) in vm {
        total += workload.rate(*t) * (subs.len() as u64 + 1);
    }
    total
}

/// How long the anytime search may run. The default is unbounded (run to
/// local optimality); either limit alone stops the search early, and the
/// certificate can stop it earlier still.
///
/// Step budgets (`max_steps` = applied moves) are deterministic and safe
/// to replay; wall-clock budgets (`max_time`) stop at a machine-dependent
/// point and must not be used where bit-identical replay matters (the
/// serve daemon's compaction epochs use steps only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of applied moves; `None` = unlimited.
    pub max_steps: Option<u64>,
    /// Wall-clock limit; `None` = unlimited.
    pub max_time: Option<Duration>,
}

impl SearchBudget {
    /// No limits: search until the certificate or local optimality.
    pub const UNBOUNDED: SearchBudget = SearchBudget {
        max_steps: None,
        max_time: None,
    };

    /// A deterministic budget of at most `n` applied moves.
    pub fn steps(n: u64) -> SearchBudget {
        SearchBudget {
            max_steps: Some(n),
            max_time: None,
        }
    }

    /// A wall-clock budget (non-deterministic stopping point).
    pub fn time(limit: Duration) -> SearchBudget {
        SearchBudget {
            max_steps: None,
            max_time: Some(limit),
        }
    }
}

/// What one improvement run did: move counts, the cost trajectory, and
/// whether the certificate closed the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImproveReport {
    /// Total applied moves.
    pub steps: u64,
    /// Whole-group re-homes onto co-hosts.
    pub rehomed: u64,
    /// Pairwise group swaps.
    pub swapped: u64,
    /// VMs dissolved (wholesale relocation + release).
    pub dissolved: u64,
    /// VMs re-typed to a cheaper tier (mixed fleets only).
    pub retyped: u64,
    /// Objective before any move.
    pub initial_cost: Money,
    /// Objective after the last move.
    pub final_cost: Money,
    /// The lower-bound certificate the search ran against.
    pub certificate: Money,
    /// `final_cost ≤ certificate`: the solution is provably optimal and
    /// the search stopped early.
    pub certificate_met: bool,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl ImproveReport {
    fn new(certificate: Money) -> ImproveReport {
        ImproveReport {
            steps: 0,
            rehomed: 0,
            swapped: 0,
            dissolved: 0,
            retyped: 0,
            initial_cost: Money::ZERO,
            final_cost: Money::ZERO,
            certificate,
            certificate_met: false,
            elapsed: Duration::ZERO,
        }
    }

    /// `initial_cost − final_cost` (never negative).
    pub fn saved(&self) -> Money {
        self.initial_cost - self.final_cost
    }
}

impl fmt::Display for ImproveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} moves ({} rehome, {} swap, {} dissolve, {} retype): {} -> {} \
             in {:.3}s (certificate {}, {})",
            self.steps,
            self.rehomed,
            self.swapped,
            self.dissolved,
            self.retyped,
            self.initial_cost,
            self.final_cost,
            self.elapsed.as_secs_f64(),
            self.certificate,
            if self.certificate_met {
                "met: provably optimal"
            } else {
                "open"
            }
        )
    }
}

/// How the search prices the fleet and bounds each VM.
#[derive(Clone, Copy)]
enum Pricing<'a> {
    Homogeneous {
        capacity: Bandwidth,
        model: &'a dyn CostModel,
    },
    Mixed {
        fleet: &'a FleetCostModel,
    },
}

struct Search<'a> {
    workload: &'a Workload,
    fleet: Vec<VmGroups>,
    used: Vec<Bandwidth>,
    /// Per-VM fleet-tier index (parallel to `fleet`); empty when
    /// homogeneous.
    tier: Vec<u32>,
    /// Live (non-empty) VMs per tier; only maintained when mixed.
    tier_counts: Vec<usize>,
    live_vms: usize,
    total_bw: Bandwidth,
    pricing: Pricing<'a>,
    certificate: Money,
    deadline: Option<Instant>,
    steps_left: Option<u64>,
    report: ImproveReport,
    done: bool,
}

impl<'a> Search<'a> {
    fn new(
        workload: &'a Workload,
        fleet: Vec<VmGroups>,
        tier: Vec<u32>,
        pricing: Pricing<'a>,
        certificate: Money,
        budget: SearchBudget,
    ) -> Search<'a> {
        let used: Vec<Bandwidth> = fleet.iter().map(|vm| vm_usage(vm, workload)).collect();
        let total_bw = used.iter().fold(Bandwidth::ZERO, |acc, &u| acc + u);
        let live_vms = fleet.iter().filter(|vm| !vm.is_empty()).count();
        let tier_counts = match pricing {
            Pricing::Homogeneous { .. } => Vec::new(),
            Pricing::Mixed { fleet: model } => {
                let mut counts = vec![0usize; model.tier_count()];
                for (vm, &t) in fleet.iter().zip(&tier) {
                    if !vm.is_empty() {
                        counts[t as usize] += 1;
                    }
                }
                counts
            }
        };
        Search {
            workload,
            fleet,
            used,
            tier,
            tier_counts,
            live_vms,
            total_bw,
            pricing,
            certificate,
            deadline: budget.max_time.map(|limit| Instant::now() + limit),
            steps_left: budget.max_steps,
            done: budget.max_steps == Some(0),
            report: ImproveReport::new(certificate),
        }
    }

    #[inline]
    fn cap(&self, i: usize) -> Bandwidth {
        match self.pricing {
            Pricing::Homogeneous { capacity, .. } => capacity,
            Pricing::Mixed { fleet } => fleet.capacity(self.tier[i] as usize),
        }
    }

    #[inline]
    fn free(&self, i: usize) -> Bandwidth {
        self.cap(i).saturating_sub(self.used[i])
    }

    fn current_cost(&self) -> Money {
        match self.pricing {
            Pricing::Homogeneous { model, .. } => model.total_cost(self.live_vms, self.total_bw),
            Pricing::Mixed { fleet } => fleet.fleet_cost(&self.tier_counts, self.total_bw),
        }
    }

    fn vm_emptied(&mut self, i: usize) {
        self.live_vms -= 1;
        if matches!(self.pricing, Pricing::Mixed { .. }) {
            self.tier_counts[self.tier[i] as usize] -= 1;
        }
    }

    fn check_certificate(&mut self) {
        if self.current_cost() <= self.certificate {
            self.report.certificate_met = true;
            self.done = true;
        }
    }

    fn check_time(&mut self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.done = true;
            }
        }
    }

    /// Bookkeeping after every applied move: step accounting, then the
    /// certificate and budget stop conditions.
    fn after_move(&mut self) {
        self.report.steps += 1;
        if let Some(left) = &mut self.steps_left {
            *left -= 1;
            if *left == 0 {
                self.done = true;
            }
        }
        self.check_certificate();
        self.check_time();
    }

    /// Topic → hosting VM indices in VM order (entries unique — a VM
    /// hosts each topic in at most one row).
    fn host_index(&self) -> HashMap<TopicId, Vec<usize>> {
        let mut index: HashMap<TopicId, Vec<usize>> = HashMap::new();
        for (i, vm) in self.fleet.iter().enumerate() {
            for &(t, _) in vm.iter() {
                index.entry(t).or_default().push(i);
            }
        }
        index
    }

    /// Topics hosted on more than one VM, ascending.
    fn split_topics(index: &HashMap<TopicId, Vec<usize>>) -> Vec<TopicId> {
        let mut split: Vec<TopicId> = index
            .iter()
            .filter(|(_, vms)| vms.len() > 1)
            .map(|(&t, _)| t)
            .collect();
        split.sort_unstable();
        split
    }

    fn run(&mut self) {
        self.report.initial_cost = self.current_cost();
        if !self.done {
            self.check_certificate();
        }
        while !self.done {
            let mut any = self.rehome_pass();
            if self.done {
                break;
            }
            any |= self.swap_pass();
            if self.done {
                break;
            }
            any |= self.dissolve_pass();
            if self.done {
                break;
            }
            any |= self.retype_pass();
            if !any {
                break;
            }
        }
        self.report.final_cost = self.current_cost();
        debug_assert!(
            self.report.final_cost <= self.report.initial_cost,
            "improvement moves must never raise cost"
        );
    }

    /// Phase-1 re-homing under per-VM capacities: while a topic is split
    /// and another of its hosts can absorb the whole smallest group, move
    /// it there — each move saves one incoming stream.
    fn rehome_pass(&mut self) -> bool {
        let host_index = self.host_index();
        let mut moved_any = false;
        for t in Self::split_topics(&host_index) {
            self.check_time();
            if self.done {
                break;
            }
            let rate = self.workload.rate(t);
            if rate.volume().is_zero() {
                continue; // nothing to save
            }
            loop {
                let mut live: Vec<(usize, usize)> = host_index[&t]
                    .iter()
                    .filter_map(|&i| group_pos(&self.fleet[i], t).map(|pos| (i, pos)))
                    .collect();
                if live.len() < 2 {
                    break;
                }
                live.sort_unstable_by_key(|&(i, pos)| (self.fleet[i][pos].1.len(), i));
                let (src, src_pos) = live[0];
                let group_out = rate * self.fleet[src][src_pos].1.len() as u64;
                let dst = live[1..]
                    .iter()
                    .copied()
                    .filter(|&(i, _)| self.free(i) >= group_out)
                    .max_by_key(|&(i, _)| (self.free(i), Reverse(i)));
                let Some((dst, dst_pos)) = dst else {
                    break; // nothing can take the smallest group whole
                };
                let (_, moved) = self.fleet[src].remove(src_pos);
                self.used[src] = self.used[src].saturating_sub(group_out + rate.volume());
                self.used[dst] += group_out;
                self.fleet[dst][dst_pos].1.extend(moved);
                self.total_bw = self.total_bw.saturating_sub(rate.volume());
                if self.fleet[src].is_empty() {
                    self.vm_emptied(src);
                }
                self.report.rehomed += 1;
                moved_any = true;
                self.after_move();
                if self.done {
                    return moved_any;
                }
            }
        }
        moved_any
    }

    /// Pairwise group swap: VMs `a` and `b` both host topics `t` and `u`;
    /// exchanging `a`'s `t`-group for `b`'s `u`-group removes both
    /// incoming streams at once, succeeding where neither single re-home
    /// has room.
    fn swap_pass(&mut self) -> bool {
        let host_index = self.host_index();
        let mut moved_any = false;
        for t in Self::split_topics(&host_index) {
            self.check_time();
            if self.done {
                break;
            }
            loop {
                let hosts: Vec<usize> = host_index[&t]
                    .iter()
                    .copied()
                    .filter(|&i| group_pos(&self.fleet[i], t).is_some())
                    .collect();
                if hosts.len() < 2 {
                    break;
                }
                let mut applied = false;
                'pairs: for &a in &hosts {
                    for &b in &hosts {
                        if a == b {
                            continue;
                        }
                        if let Some((u, new_a, new_b)) = self.find_swap(t, a, b) {
                            self.apply_swap(t, u, a, b, new_a, new_b);
                            applied = true;
                            moved_any = true;
                            break 'pairs;
                        }
                    }
                }
                if !applied {
                    break;
                }
                self.after_move();
                if self.done {
                    return moved_any;
                }
            }
        }
        moved_any
    }

    /// First topic `u` (ascending) such that swapping `a`'s `t`-group for
    /// `b`'s `u`-group is feasible, with both VMs' new loads.
    fn find_swap(&self, t: TopicId, a: usize, b: usize) -> Option<(TopicId, Bandwidth, Bandwidth)> {
        let pa_t = group_pos(&self.fleet[a], t)?;
        group_pos(&self.fleet[b], t)?;
        let ev_t = self.workload.rate(t);
        let nt = self.fleet[a][pa_t].1.len() as u64;
        for (u, subs_u) in &self.fleet[b] {
            let u = *u;
            if u == t || group_pos(&self.fleet[a], u).is_none() {
                continue;
            }
            let ev_u = self.workload.rate(u);
            if ev_t.volume().is_zero() && ev_u.volume().is_zero() {
                continue; // no saving
            }
            let nu = subs_u.len() as u64;
            // a drops its whole t-group ((nt+1)·ev_t) and absorbs b's u
            // pairs (nu·ev_u, incoming already paid); b mirrors this.
            let new_a = (self.used[a] + ev_u * nu).saturating_sub(ev_t * (nt + 1));
            let new_b = (self.used[b] + ev_t * nt).saturating_sub(ev_u * (nu + 1));
            if new_a <= self.cap(a) && new_b <= self.cap(b) {
                return Some((u, new_a, new_b));
            }
        }
        None
    }

    fn apply_swap(
        &mut self,
        t: TopicId,
        u: TopicId,
        a: usize,
        b: usize,
        new_a: Bandwidth,
        new_b: Bandwidth,
    ) {
        let pa_t = group_pos(&self.fleet[a], t).expect("a hosts t");
        let (_, subs_t) = self.fleet[a].remove(pa_t);
        let pb_t = group_pos(&self.fleet[b], t).expect("b hosts t");
        self.fleet[b][pb_t].1.extend(subs_t);
        let pb_u = group_pos(&self.fleet[b], u).expect("b hosts u");
        let (_, subs_u) = self.fleet[b].remove(pb_u);
        let pa_u = group_pos(&self.fleet[a], u).expect("a hosts u");
        self.fleet[a][pa_u].1.extend(subs_u);
        self.used[a] = new_a;
        self.used[b] = new_b;
        let saved = self.workload.rate(t).volume() + self.workload.rate(u).volume();
        self.total_bw = self.total_bw.saturating_sub(saved);
        // Neither VM empties: a keeps its u-group, b keeps its t-group.
        self.report.swapped += 1;
    }

    /// Phase-2 dissolution under per-VM capacities: lightest candidates
    /// first, plan a home for every group (co-hosts save an incoming
    /// stream, any other VM is bandwidth-neutral), commit only when the
    /// whole VM empties. Same candidate discipline as the shard merge:
    /// ≤ 75% utilization, the 16 lightest, stop after 4 consecutive
    /// infeasible plans.
    fn dissolve_pass(&mut self) -> bool {
        let mut host_index = self.host_index();
        let mut total_free: u128 = (0..self.fleet.len())
            .filter(|&i| !self.fleet[i].is_empty())
            .map(|i| u128::from(self.free(i).get()))
            .sum();
        let mut order: Vec<usize> = (0..self.fleet.len())
            .filter(|&i| {
                !self.fleet[i].is_empty()
                    && u128::from(self.used[i].get()) * 4 <= u128::from(self.cap(i).get()) * 3
            })
            .collect();
        order.sort_unstable_by_key(|&i| (self.used[i], i));
        order.truncate(16);
        const MAX_CONSECUTIVE_FAILURES: usize = 4;
        let mut consecutive_failures = 0usize;
        let mut any = false;
        for &src in &order {
            self.check_time();
            if self.done || consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                break;
            }
            // Cheap necessary condition: the rest of the fleet must have
            // at least the source's volume free.
            let src_free = u128::from(self.free(src).get());
            if u128::from(self.used[src].get()) > total_free - src_free {
                consecutive_failures += 1;
                continue;
            }
            // Plan with tentative headroom so one destination is not
            // promised to two groups; rows are topic-sorted, so the plan
            // is deterministic.
            let mut claimed: HashMap<usize, Bandwidth> = HashMap::new();
            let mut plan: Vec<(usize, bool)> = Vec::with_capacity(self.fleet[src].len());
            let mut feasible = true;
            for &(t, ref subs) in &self.fleet[src] {
                let rate = self.workload.rate(t);
                let pairs = subs.len() as u64;
                let free_at = |i: usize, claimed: &HashMap<usize, Bandwidth>| {
                    self.free(i)
                        .saturating_sub(claimed.get(&i).copied().unwrap_or(Bandwidth::ZERO))
                };
                let cohost = host_index
                    .get(&t)
                    .into_iter()
                    .flatten()
                    .copied()
                    // Skip stale index entries (topic lost to an earlier
                    // move or dissolution).
                    .filter(|&i| i != src && group_pos(&self.fleet[i], t).is_some())
                    .filter(|&i| free_at(i, &claimed) >= rate * pairs)
                    .max_by_key(|&i| (free_at(i, &claimed), Reverse(i)));
                let (dst, is_cohost) = match cohost {
                    Some(i) => {
                        *claimed.entry(i).or_insert(Bandwidth::ZERO) += rate * pairs;
                        (i, true)
                    }
                    None => {
                        let other = (0..self.fleet.len())
                            .filter(|&i| i != src && !self.fleet[i].is_empty())
                            .filter(|&i| free_at(i, &claimed) >= rate * (pairs + 1))
                            .max_by_key(|&i| (free_at(i, &claimed), Reverse(i)));
                        let Some(i) = other else {
                            feasible = false;
                            break;
                        };
                        *claimed.entry(i).or_insert(Bandwidth::ZERO) += rate * (pairs + 1);
                        (i, false)
                    }
                };
                plan.push((dst, is_cohost));
            }
            if !feasible {
                consecutive_failures += 1;
                continue;
            }
            consecutive_failures = 0;
            let rows = std::mem::take(&mut self.fleet[src]);
            total_free -= src_free;
            self.used[src] = Bandwidth::ZERO;
            for ((t, moved), (dst, is_cohost)) in rows.into_iter().zip(plan) {
                let rate = self.workload.rate(t);
                let pairs = moved.len() as u64;
                if is_cohost {
                    self.used[dst] += rate * pairs;
                    total_free -= u128::from((rate * pairs).get());
                    let pos =
                        group_pos(&self.fleet[dst], t).expect("co-host still hosts the topic");
                    self.fleet[dst][pos].1.extend(moved);
                    self.total_bw = self.total_bw.saturating_sub(rate.volume());
                } else {
                    self.used[dst] += rate * (pairs + 1);
                    total_free -= u128::from((rate * (pairs + 1)).get());
                    let pos = self.fleet[dst]
                        .binary_search_by_key(&t, |&(tt, _)| tt)
                        .expect_err("dst does not host the topic");
                    self.fleet[dst].insert(pos, (t, moved));
                    host_index.entry(t).or_default().push(dst);
                }
            }
            self.vm_emptied(src);
            self.report.dissolved += 1;
            any = true;
            self.after_move();
            if self.done {
                break;
            }
        }
        any
    }

    /// Mixed fleets only: re-apply the packer's downsize rule — after
    /// moves shrank a VM's load, a strictly cheaper tier may now fit it.
    fn retype_pass(&mut self) -> bool {
        let Pricing::Mixed { fleet } = self.pricing else {
            return false;
        };
        let mut any = false;
        for i in 0..self.fleet.len() {
            if self.done {
                break;
            }
            if self.fleet[i].is_empty() {
                continue;
            }
            let current = self.tier[i] as usize;
            let new = downsize(current, self.used[i], fleet);
            if new as usize != current {
                self.tier_counts[current] -= 1;
                self.tier_counts[new as usize] += 1;
                self.tier[i] = new;
                self.report.retyped += 1;
                any = true;
                self.after_move();
            }
        }
        self.check_time();
        any
    }
}

/// Refines a homogeneous allocation in place of re-solving: runs the
/// move set under `budget`, stopping early when the objective reaches
/// `certificate` (use [`lower_bound`](crate::lower_bound)`.cost(...)`).
/// Returns the refined allocation and what the search did.
///
/// Pair placement is permuted, never changed: the refined allocation
/// serves exactly the input's `(topic, subscriber)` pairs, so Stage-1
/// selection and delivered rates are bit-identical.
///
/// # Panics
///
/// Panics if the allocation carries a [`FleetTyping`](crate::FleetTyping)
/// — use [`improve_mixed`] for heterogeneous fleets.
pub fn improve(
    allocation: Allocation,
    workload: &Workload,
    cost: &dyn CostModel,
    certificate: Money,
    budget: SearchBudget,
) -> (Allocation, ImproveReport) {
    assert!(
        allocation.typing().is_none(),
        "improve() is homogeneous; use improve_mixed() for typed allocations"
    );
    let start = Instant::now();
    let capacity = allocation.capacity();
    let groups = allocation.into_vm_groups();
    let mut search = Search::new(
        workload,
        groups,
        Vec::new(),
        Pricing::Homogeneous {
            capacity,
            model: cost,
        },
        certificate,
        budget,
    );
    search.run();
    let mut report = search.report;
    let fleet: Vec<VmGroups> = search
        .fleet
        .into_iter()
        .filter(|vm| !vm.is_empty())
        .collect();
    report.elapsed = start.elapsed();
    (Allocation::from_groups(fleet, workload, capacity), report)
}

/// The mixed-fleet twin of [`improve`]: per-VM tier capacities bound
/// every move, dissolution releases the VM's own tier rental, and the
/// downsize re-type pass runs after loads shrink. Use
/// [`LowerBound::cost_on_fleet`](crate::LowerBound::cost_on_fleet) for
/// the certificate.
///
/// # Panics
///
/// Panics if the allocation is untyped, or typed with an instance the
/// fleet catalogue does not carry.
pub fn improve_mixed(
    allocation: Allocation,
    workload: &Workload,
    fleet: &FleetCostModel,
    certificate: Money,
    budget: SearchBudget,
) -> (Allocation, ImproveReport) {
    let start = Instant::now();
    let typing = allocation
        .typing()
        .expect("improve_mixed() needs a typed allocation; use improve() for homogeneous fleets")
        .clone();
    // Map the allocation's tier table onto the catalogue by instance
    // name — robust to orderings that differ from the fleet's.
    let tier_map: Vec<u32> = typing
        .tiers()
        .iter()
        .map(|(ty, _)| {
            fleet
                .tiers()
                .iter()
                .position(|m| m.instance().name() == ty.name())
                .unwrap_or_else(|| {
                    panic!(
                        "allocation typed with {} outside the fleet catalogue",
                        ty.name()
                    )
                }) as u32
        })
        .collect();
    let tier: Vec<u32> = typing
        .assignment()
        .iter()
        .map(|&t| tier_map[t as usize])
        .collect();
    let capacity = allocation.capacity();
    let groups = allocation.into_vm_groups();
    let mut search = Search::new(
        workload,
        groups,
        tier,
        Pricing::Mixed { fleet },
        certificate,
        budget,
    );
    search.run();
    let mut report = search.report;
    let mut kept: Vec<VmGroups> = Vec::with_capacity(search.fleet.len());
    let mut assignment: Vec<u32> = Vec::with_capacity(search.fleet.len());
    for (vm, t) in search.fleet.into_iter().zip(search.tier) {
        if !vm.is_empty() {
            kept.push(vm);
            assignment.push(t);
        }
    }
    report.elapsed = start.elapsed();
    (
        Allocation::from_groups(kept, workload, capacity)
            .with_typing(typing_for(fleet, assignment)),
        report,
    )
}
