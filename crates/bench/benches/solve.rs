//! Cold-solve benchmark: the full Stage-1 → grouping → Stage-2 pipeline,
//! the sort-free arena path (rate-ranked GSP sweep + `TopicGroups`
//! counting-sort grouping) versus the preserved pre-arena baseline
//! (`mcss_bench::legacy::legacy_solve`: a `sort_unstable_by` per
//! subscriber, a `Vec` per topic), on Spotify-like and Twitter-like
//! traces.
//!
//! Output equivalence is asserted once per configuration before timing,
//! so the comparison can never drift into measuring different algorithms.
//!
//! Size override: `MCSS_SOLVE_SUBS` (default 20000).

use cloud_cost::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::legacy::legacy_solve;
use mcss_bench::scenario::{env_size, Scenario};
use mcss_core::stage1::{GreedySelectPairs, PairSelector};
use mcss_core::stage2::{Allocator, CbpConfig, CustomBinPacking};
use std::hint::black_box;

fn bench_solve(c: &mut Criterion) {
    let subs = env_size("MCSS_SOLVE_SUBS", 20_000);
    let scenarios = [
        Scenario::spotify(subs, 20140113),
        Scenario::twitter(subs / 2, 20131030),
    ];
    for scenario in &scenarios {
        let cost = scenario.cost_model(instances::C3_LARGE);
        let mut group = c.benchmark_group(format!("solve/{}", scenario.name));
        group.sample_size(10);
        for tau in [100u64, 1000] {
            let inst = scenario
                .instance(tau, instances::C3_LARGE)
                .expect("valid capacity");
            let selector = GreedySelectPairs::new();
            let packer = CustomBinPacking::new(CbpConfig::full());

            // Equivalence gate: the two paths must agree bit for bit.
            let (legacy_sel, legacy_alloc) = legacy_solve(&inst, &cost).expect("feasible");
            let arena_sel = selector.select(&inst).expect("gsp");
            let arena_alloc = packer
                .allocate(inst.workload(), &arena_sel, inst.capacity(), &cost)
                .expect("feasible");
            assert_eq!(arena_sel, legacy_sel, "selection diverged at τ={tau}");
            assert_eq!(arena_alloc, legacy_alloc, "allocation diverged at τ={tau}");

            group.bench_with_input(BenchmarkId::new("legacy", tau), &inst, |b, inst| {
                b.iter(|| black_box(legacy_solve(inst, &cost).expect("feasible")));
            });
            group.bench_with_input(BenchmarkId::new("arena", tau), &inst, |b, inst| {
                b.iter(|| {
                    let sel = selector.select(inst).expect("gsp");
                    let alloc = packer
                        .allocate(inst.workload(), &sel, inst.capacity(), &cost)
                        .expect("feasible");
                    black_box((sel, alloc))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
