//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ with
/// SplitMix64 seeding (Blackman & Vigna's recommended construction).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
