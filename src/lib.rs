//! Umbrella crate for the ICDCS 2014 MCSS reproduction.
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`model`] — pub/sub workload model (topics, subscribers, rates);
//! * [`traces`] — synthetic Spotify-like / Twitter-like trace generators and
//!   trace analysis;
//! * [`cost`] — EC2-style cost model (`C1`, `C2`, instance catalogue);
//! * [`solver`] — the MCSS two-stage heuristic, lower bound, exact solver,
//!   and NP-hardness reduction;
//! * [`sim`] — discrete-event pub/sub broker simulation for validating
//!   allocations operationally.

#![warn(missing_docs)]

pub use cloud_cost as cost;
pub use mcss_core as solver;
pub use pubsub_model as model;
pub use pubsub_sim as sim;
pub use pubsub_traces as traces;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use cloud_cost::{
        CostModel, Ec2CostModel, FleetCostModel, InstanceType, LinearCostModel, Money,
    };
    pub use mcss_core::{
        Allocation, AllocatorKind, FleetTyping, LowerBound, McssInstance, MixedSolveOutcome,
        PartitionerKind, SelectorKind, ShardedSolver, ShardingConfig, SolveReport, Solver,
        SolverParams,
    };
    pub use pubsub_model::{Bandwidth, Pair, Rate, SubscriberId, TopicId, Workload};
    pub use pubsub_sim::{SimConfig, Simulation};
    pub use pubsub_traces::{SpotifyLike, TwitterLike};
}
