//! Synthetic trace substrate for the MCSS reproduction.
//!
//! The paper evaluates on two proprietary traces (§IV-B): a Spotify trace
//! (1.1 M topics, 4.9 M subscribers, 12 M pairs) and a Twitter trace (8 M
//! active users, 30 M subscribers, 683.5 M pairs). Neither is available
//! offline, so this crate builds generators that reproduce their *published
//! shape* — the degree and rate distributions of §IV-B and Appendix D — at a
//! configurable scale:
//!
//! * [`TwitterLike`] — follower/following power laws with the documented
//!   anomaly spikes at 20 and 2000 followings, event rates growing roughly
//!   linearly with follower count and damped for celebrities, bot-like heavy
//!   tails, and active-user filtering (Figs. 8–12);
//! * [`SpotifyLike`] — low-degree interest sets (mean ≈ 2.45
//!   topics/subscriber), Zipf topic popularity, log-normal playback rates;
//! * [`analysis`] — CCDF, bucketed means, and subscription-cardinality
//!   computations used to regenerate Figs. 8–12;
//! * [`dist`] — hand-built samplers (bounded Zipf, log-normal, alias
//!   tables) so the only external dependency is `rand` itself;
//! * [`io`] — a line-oriented TSV trace format for persisting workloads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod dist;
pub mod fit;
pub mod io;
pub mod sample;
mod spotify;
mod twitter;

pub use spotify::SpotifyLike;
pub use twitter::{TwitterLike, TwitterTrace};
