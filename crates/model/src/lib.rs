//! Domain model for topic-based publish/subscribe workloads.
//!
//! This crate is the foundational substrate for the MCSS (Minimum Cost
//! Subscriber Satisfaction) reproduction of Setty et al., *"Cost-Effective
//! Resource Allocation for Deploying Pub/Sub on Cloud"* (ICDCS 2014). It
//! defines the vocabulary of the paper's §II-B model:
//!
//! * [`TopicId`], [`SubscriberId`], [`Pair`] — identities for the topic set
//!   `T`, the subscriber set `V`, and topic-subscriber pairs `(t, v)`;
//! * [`Rate`] — the per-topic event rate `ev_t` (events per evaluation
//!   window) and [`Bandwidth`] — aggregated event volume;
//! * [`Workload`] — an immutable instance of `(T, V, ev, Int)` with the
//!   derived subscriber sets `V_t`, built through [`WorkloadBuilder`] and
//!   stored as flat CSR (compressed sparse row) adjacency arenas;
//! * [`WorkloadView`] — a zero-copy, possibly subscriber-restricted window
//!   over a workload's arenas, the unit sharded solvers operate on;
//! * [`WorkloadStats`] — summary statistics used by trace analysis and the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use pubsub_model::{Rate, Workload};
//!
//! # fn main() -> Result<(), pubsub_model::WorkloadError> {
//! let mut b = Workload::builder();
//! let rock = b.add_topic(Rate::new(20))?;
//! let jazz = b.add_topic(Rate::new(10))?;
//! let alice = b.add_subscriber([rock, jazz])?;
//! let bob = b.add_subscriber([jazz])?;
//! let w = b.build();
//!
//! assert_eq!(w.num_topics(), 2);
//! assert_eq!(w.num_subscribers(), 2);
//! assert_eq!(w.pair_count(), 3);
//! assert_eq!(w.subscriber_total_rate(alice), Rate::new(30));
//! assert_eq!(w.subscribers_of(rock), &[alice]);
//! assert_eq!(w.subscribers_of(jazz), &[alice, bob]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod edit;
mod ids;
mod stats;
mod units;
mod view;
mod workload;

pub use edit::WorkloadEdit;
pub use ids::{Pair, SubscriberId, TopicId};
pub use stats::WorkloadStats;
pub use units::{Bandwidth, Rate, MAX_RATE};
pub use view::WorkloadView;
pub use workload::{
    ValidationIssue, Workload, WorkloadArenas, WorkloadBuilder, WorkloadError, WorkloadFootprint,
};
