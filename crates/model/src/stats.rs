//! Summary statistics over a workload, mirroring the trace characteristics
//! the paper reports in §IV-B and Appendix D.

use crate::{SubscriberId, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of a [`Workload`].
///
/// ```
/// use pubsub_model::{Rate, Workload};
/// # fn main() -> Result<(), pubsub_model::WorkloadError> {
/// let mut b = Workload::builder();
/// let t = b.add_topic(Rate::new(10))?;
/// b.add_subscriber([t])?;
/// let stats = b.build().stats();
/// assert_eq!(stats.pair_count, 1);
/// assert_eq!(stats.mean_interests, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// `|T|`.
    pub num_topics: usize,
    /// `|V|`.
    pub num_subscribers: usize,
    /// Total `(t, v)` pairs.
    pub pair_count: u64,
    /// `Σ_t ev_t`.
    pub total_event_rate: u64,
    /// Mean interests per subscriber (`pairs / |V|`; the paper's Twitter
    /// trace has ≈ 22.8, Spotify ≈ 2.45).
    pub mean_interests: f64,
    /// Largest interest set.
    pub max_interests: usize,
    /// Mean subscribers per topic (followers).
    pub mean_followers: f64,
    /// Largest subscriber set.
    pub max_followers: usize,
    /// Mean event rate per topic.
    pub mean_rate: f64,
    /// Largest event rate.
    pub max_rate: u64,
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "topics:            {}", self.num_topics)?;
        writeln!(f, "subscribers:       {}", self.num_subscribers)?;
        writeln!(f, "pairs:             {}", self.pair_count)?;
        writeln!(f, "total event rate:  {}", self.total_event_rate)?;
        writeln!(
            f,
            "interests/sub:     mean {:.2}, max {}",
            self.mean_interests, self.max_interests
        )?;
        writeln!(
            f,
            "followers/topic:   mean {:.2}, max {}",
            self.mean_followers, self.max_followers
        )?;
        write!(
            f,
            "event rate/topic:  mean {:.2}, max {}",
            self.mean_rate, self.max_rate
        )
    }
}

impl Workload {
    /// Computes summary statistics for this workload.
    pub fn stats(&self) -> WorkloadStats {
        let num_topics = self.num_topics();
        let num_subscribers = self.num_subscribers();
        let pair_count = self.pair_count();
        let max_interests = self
            .subscribers()
            .map(|v| self.interests(v).len())
            .max()
            .unwrap_or(0);
        let max_followers = self
            .topics()
            .map(|t| self.subscribers_of(t).len())
            .max()
            .unwrap_or(0);
        let max_rate = self.rates().iter().map(|r| r.get()).max().unwrap_or(0);
        let total_event_rate = self.total_rate().get();
        WorkloadStats {
            num_topics,
            num_subscribers,
            pair_count,
            total_event_rate,
            mean_interests: ratio(pair_count, num_subscribers as u64),
            max_interests,
            mean_followers: ratio(pair_count, num_topics as u64),
            max_followers,
            mean_rate: ratio(total_event_rate, num_topics as u64),
            max_rate,
        }
    }

    /// Subscription Cardinality of a subscriber (Appendix D):
    /// `SC_v = 100 · Σ_{t∈T_v} ev_t / Σ_{t∈T} ev_t`.
    ///
    /// Returns 0 when the workload has no publication volume at all.
    pub fn subscription_cardinality(&self, v: SubscriberId) -> f64 {
        let total = self.total_rate();
        if total.is_zero() {
            return 0.0;
        }
        100.0 * self.subscriber_total_rate(v).get() as f64 / total.get() as f64
    }

    /// Interest-set sizes for every subscriber (the "#followings"
    /// distribution of Fig. 8).
    pub fn interest_degrees(&self) -> Vec<u64> {
        self.subscribers()
            .map(|v| self.interests(v).len() as u64)
            .collect()
    }

    /// Subscriber counts for every topic (the "#followers" distribution of
    /// Fig. 8).
    pub fn follower_counts(&self) -> Vec<u64> {
        self.topics()
            .map(|t| self.subscribers_of(t).len() as u64)
            .collect()
    }

    /// Event rates as raw integers (the Fig. 9 distribution).
    pub fn rate_values(&self) -> Vec<u64> {
        self.rates().iter().map(|r| r.get()).collect()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rate, TopicId};

    fn sample() -> Workload {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(30)).unwrap();
        let t1 = b.add_topic(Rate::new(10)).unwrap();
        let t2 = b.add_topic(Rate::new(60)).unwrap();
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t2]).unwrap();
        b.build()
    }

    #[test]
    fn stats_basics() {
        let s = sample().stats();
        assert_eq!(s.num_topics, 3);
        assert_eq!(s.num_subscribers, 2);
        assert_eq!(s.pair_count, 3);
        assert_eq!(s.total_event_rate, 100);
        assert!((s.mean_interests - 1.5).abs() < 1e-12);
        assert_eq!(s.max_interests, 2);
        assert_eq!(s.max_followers, 1);
        assert_eq!(s.max_rate, 60);
        assert!((s.mean_rate - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty_workload() {
        let w = Workload::from_parts(Vec::new(), Vec::new());
        let s = w.stats();
        assert_eq!(s.num_topics, 0);
        assert_eq!(s.mean_interests, 0.0);
        assert_eq!(s.mean_rate, 0.0);
    }

    #[test]
    fn subscription_cardinality_matches_definition() {
        let w = sample();
        // v0 receives 40 of 100 total => SC = 40%
        assert!((w.subscription_cardinality(SubscriberId::new(0)) - 40.0).abs() < 1e-12);
        assert!((w.subscription_cardinality(SubscriberId::new(1)) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn degree_vectors() {
        let w = sample();
        assert_eq!(w.interest_degrees(), vec![2, 1]);
        assert_eq!(w.follower_counts(), vec![1, 1, 1]);
        assert_eq!(w.rate_values(), vec![30, 10, 60]);
        assert_eq!(w.subscribers_of(TopicId::new(2)).len(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let text = sample().stats().to_string();
        assert!(text.contains("topics"));
        assert!(text.contains("pairs"));
    }
}
