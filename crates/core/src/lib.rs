//! MCSS — Minimum Cost Subscriber Satisfaction.
//!
//! This crate implements the contribution of Setty, Vitenberg, Kreitz,
//! Urdaneta & van Steen, *"Cost-Effective Resource Allocation for Deploying
//! Pub/Sub on Cloud"* (ICDCS 2014): given a pub/sub workload, a
//! per-subscriber satisfaction threshold `τ`, per-VM bandwidth capacity
//! `BC`, and IaaS cost functions `C1`/`C2`, allocate topic-subscriber pairs
//! to virtual machines so that every subscriber stays satisfied, no VM
//! exceeds its capacity, and `C1(|B|) + C2(Σ_b bw_b)` is minimized.
//!
//! # Layout (paper artifact → module)
//!
//! | Paper | Module |
//! |---|---|
//! | Problem definition §II | [`McssInstance`], [`Selection`], [`Allocation`] |
//! | Alg. 1–2 GreedySelectPairs | [`stage1::GreedySelectPairs`] |
//! | Alg. 6 RandomSelectPairs | [`stage1::RandomSelectPairs`] |
//! | per-subscriber optimum (knapsack remark, §III-A) | [`stage1::OptimalSelectPairs`] |
//! | Alg. 3 FFBinPacking | [`stage2::FirstFitBinPacking`] |
//! | Alg. 4 CustomBinPacking + opts (b)–(e) | [`stage2::CustomBinPacking`], [`stage2::CbpConfig`] |
//! | Alg. 7 CheaperToDistribute | [`stage2::cheaper_to_distribute`] |
//! | Alg. 5 / Thm. A.1 lower bound | [`lower_bound`], [`LowerBound::cost_on_fleet`] |
//! | FFD baseline, Dósa 2007 `11/9·OPT + 6/9` bound (extension) | [`stage2::FfdBinPacking`] |
//! | anytime Stage-2 local search with LB certificate (extension) | [`stage2::improve`], [`SearchBudget`] |
//! | Thm. II.2 NP-hardness reduction | [`reduction`] |
//! | exact baseline for tiny instances | [`exact`] |
//! | §VI dynamic re-provisioning (future work) | [`dynamic`] |
//! | §VI online repair (future work, extension) | [`incremental`] |
//! | O(Δ) churn ledger (extension) | [`FleetLedger`] |
//! | event-sourced serving + crash recovery (extension) | [`serve`] |
//! | zero-rebuild single-file store (extension) | [`store`], `mcss_store` |
//! | shard-parallel solving + fleet merge (extension) | [`ShardedSolver`], [`ShardingConfig`] |
//! | Best-/Next-Fit baselines (extension) | [`stage2::BestFitBinPacking`], [`stage2::NextFitBinPacking`] |
//! | heterogeneous (mixed) fleets (extension) | [`stage2::MixedFleetPacker`], [`FleetTyping`], [`Solver::solve_mixed`] |
//! | instance-type planning (conclusion's "provisioning tool") | [`planner::plan_instance_type`], [`planner::plan_mixed`] |
//!
//! # Quick start
//!
//! ```
//! use cloud_cost::{instances, Ec2CostModel};
//! use mcss_core::{AllocatorKind, McssInstance, SelectorKind, Solver, SolverParams};
//! use pubsub_model::{Rate, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Workload::builder();
//! let news = b.add_topic(Rate::new(20))?;
//! let music = b.add_topic(Rate::new(10))?;
//! b.add_subscriber([news, music])?;
//! b.add_subscriber([music])?;
//! let workload = b.build();
//!
//! let cost = Ec2CostModel::paper_default(instances::C3_LARGE);
//! let instance = McssInstance::new(workload, Rate::new(15), cost.capacity())?;
//! let solver = Solver::new(SolverParams {
//!     selector: SelectorKind::Greedy,
//!     allocator: AllocatorKind::custom_full(),
//!     ..SolverParams::default()
//! });
//! let outcome = solver.solve(&instance, &cost)?;
//! assert!(outcome.allocation.validate(instance.workload(), instance.tau()).is_ok());
//! println!("{}", outcome.report);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocation;
pub mod dynamic;
mod error;
pub mod exact;
mod footprint;
pub mod ilp;
pub mod incremental;
mod ledger;
mod lower_bound;
mod pipeline;
pub mod planner;
mod problem;
pub mod reduction;
mod selection;
pub mod serve;
mod shard;
pub mod stage1;
pub mod stage2;
pub mod store;

pub use allocation::{Allocation, AllocationError, FleetTyping, TopicPlacement, VmAllocation};
pub use error::McssError;
pub use footprint::MemoryFootprint;
pub use ledger::{FailedSlots, FleetLedger, LedgerSlot};
pub use lower_bound::{lower_bound, LowerBound};
pub use pipeline::{
    AllocatorKind, MixedSolveOutcome, MixedSolveReport, SelectorKind, SolveOutcome, SolveReport,
    Solver, SolverParams,
};
pub use problem::McssInstance;
pub use selection::{Selection, SelectionBuilder, SelectionDiff, TopicGroups};
pub use shard::{
    partition_subscriber_set, partition_subscribers, MergeStats, PartitionerKind, ShardedOutcome,
    ShardedSolver, ShardingConfig,
};
pub use stage2::{ImproveReport, SearchBudget};
