//! The `C1`/`C2` cost functions and concrete pricing models.
//!
//! The MCSS objective is `C1(|B|) + C2(Σ_b bw_b)` (paper §II-B): a VM
//! rental term and a bandwidth term. [`CostModel`] is the abstraction
//! the solver consumes; [`Ec2CostModel`] is the paper's concrete EC2
//! pricing, [`LinearCostModel`] the affine stand-in for tests and the
//! NP-hardness reduction.
//!
//! ```
//! use cloud_cost::{instances, CostModel, Ec2CostModel};
//! use pubsub_model::Bandwidth;
//!
//! let model = Ec2CostModel::paper_default(instances::C3_LARGE);
//! // 10 VMs for the 10-day window plus 1 GB of deliveries.
//! let bill = model.total_cost(10, Bandwidth::new(5_000_000));
//! assert_eq!(bill.to_string(), "$360.12");
//! ```

use crate::{InstanceType, Money};
use pubsub_model::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The billing period over which a deployment is evaluated.
///
/// The paper evaluates 10-day traces billed hourly (§IV-A/B); VMs rented for
/// the whole window cost `hourly × hours`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BillingWindow {
    seconds: u64,
}

impl BillingWindow {
    /// The paper's evaluation window: 10 days.
    pub const PAPER: BillingWindow = BillingWindow::from_days(10);

    /// A window of whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        BillingWindow {
            seconds: hours * 3600,
        }
    }

    /// A window of whole days.
    pub const fn from_days(days: u64) -> Self {
        BillingWindow {
            seconds: days * 86_400,
        }
    }

    /// Window length in seconds.
    #[inline]
    pub const fn seconds(self) -> u64 {
        self.seconds
    }

    /// Window length in whole hours (rounded up — IaaS providers bill
    /// started hours).
    #[inline]
    pub const fn billed_hours(self) -> u64 {
        self.seconds.div_ceil(3600)
    }
}

impl fmt::Display for BillingWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} h", self.billed_hours())
    }
}

/// The cost abstraction of the MCSS objective:
/// `C1(|B|) + C2(Σ_b bw_b)` (paper §II-B).
///
/// Implementations must be deterministic and monotone in both arguments —
/// the solver's `CheaperToDistribute` decision (Alg. 7) compares these
/// outputs directly.
pub trait CostModel: fmt::Debug + Send + Sync {
    /// `C1`: price of renting `vms` virtual machines for the billing window.
    fn vm_cost(&self, vms: usize) -> Money;

    /// `C2`: price of moving `volume` event-units in and out of the cloud.
    fn bandwidth_cost(&self, volume: Bandwidth) -> Money;

    /// The full objective `C1(vms) + C2(volume)`.
    fn total_cost(&self, vms: usize, volume: Bandwidth) -> Money {
        self.vm_cost(vms) + self.bandwidth_cost(volume)
    }
}

/// The paper's Amazon EC2 pricing (§IV-A): on-demand hourly VM rental plus
/// $0.12/GB transfer (incoming and outgoing priced identically), with
/// event-volume↔bytes conversion via a fixed message size.
///
/// # Scaled-down experiments
///
/// The paper's traces have 4.9–30 M subscribers; the default reproduction
/// scale is a few percent of that. To preserve the *shape* of the
/// VM-count-vs-bandwidth trade-off, [`Ec2CostModel::with_volume_scale`]
/// declares that one synthetic subscriber stands for `paper/synthetic` real
/// ones: per-VM capacity shrinks by that factor while each transferred byte
/// is priced up by it, so VM counts, total dollar costs, and the
/// cost-model-driven decisions inside the solver all match the full-scale
/// system. See `DESIGN.md` §3.
///
/// ```
/// use cloud_cost::{instances, CostModel, Ec2CostModel};
/// use pubsub_model::Bandwidth;
///
/// let m = Ec2CostModel::paper_default(instances::C3_LARGE);
/// assert_eq!(m.vm_cost(1).to_string(), "$36.00");          // $0.15 × 240 h
/// // 5_000_000 events × 200 B = 1 GB  =>  $0.12
/// assert_eq!(m.bandwidth_cost(Bandwidth::new(5_000_000)).to_string(), "$0.12");
/// // 64 mbps over 240 h at 200 B/event:
/// assert_eq!(m.capacity().get(), 34_560_000_000);
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct Ec2CostModel {
    instance: InstanceType,
    window: BillingWindow,
    message_bytes: u64,
    transfer_per_gb: Money,
    /// One synthetic event represents `scale_paper / scale_synth` real events.
    scale_paper: u64,
    scale_synth: u64,
    /// When set, `capacity()` uses this events-per-window figure (before
    /// scale adjustment) instead of the nominal line-rate conversion.
    capacity_events_override: Option<u64>,
}

impl Ec2CostModel {
    /// Transfer price from the paper: $0.12 per GB, both directions.
    pub const PAPER_TRANSFER_PER_GB: Money = Money::from_micros(120_000);

    /// Message size used for both traces in the paper: 200 bytes.
    pub const PAPER_MESSAGE_BYTES: u64 = 200;

    /// Effective per-VM capacity implied by the paper's evaluation, in
    /// events per 10-day window per 64 mbps of nominal bandwidth.
    ///
    /// The nominal conversion (64 mbps × 240 h ÷ 200 B ≈ 3.5 × 10¹⁰
    /// events) would let one VM absorb either full trace, yet Figs. 2–3
    /// report 100–550 VMs. Dividing the figures' reported bandwidth
    /// volumes by their VM counts gives ≈ 5 × 10⁷ events per c3.large on
    /// *both* traces (Spotify: 9 × 10⁹ events / ~180 VMs; Twitter:
    /// 2.75 × 10¹⁰ / ~550) and twice that per c3.xlarge — so this is the
    /// capacity the authors' implementation effectively enforced. See
    /// DESIGN.md §3.
    pub const PAPER_EFFECTIVE_EVENTS_PER_64MBPS: u64 = 50_000_000;

    /// The paper's configuration for a given instance type: 10-day window,
    /// 200-byte messages, $0.12/GB, nominal line-rate capacity.
    pub fn paper_default(instance: InstanceType) -> Self {
        Ec2CostModel {
            instance,
            window: BillingWindow::PAPER,
            message_bytes: Self::PAPER_MESSAGE_BYTES,
            transfer_per_gb: Self::PAPER_TRANSFER_PER_GB,
            scale_paper: 1,
            scale_synth: 1,
            capacity_events_override: None,
        }
    }

    /// Like [`Ec2CostModel::paper_default`] but with the *effective*
    /// capacity implied by the paper's reported VM counts
    /// ([`Ec2CostModel::PAPER_EFFECTIVE_EVENTS_PER_64MBPS`], scaled
    /// linearly in the instance's nominal mbps). This is the model to use
    /// when reproducing Figs. 2–7.
    pub fn paper_effective(instance: InstanceType) -> Self {
        let events = Self::PAPER_EFFECTIVE_EVENTS_PER_64MBPS * instance.bandwidth_mbps() / 64;
        Self::paper_default(instance).with_capacity_events(events)
    }

    /// Overrides the per-VM capacity in events per window (before scale
    /// adjustment).
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn with_capacity_events(mut self, events: u64) -> Self {
        assert!(events > 0, "capacity must be positive");
        self.capacity_events_override = Some(events);
        self
    }

    /// Replaces the billing window.
    pub fn with_window(mut self, window: BillingWindow) -> Self {
        self.window = window;
        self
    }

    /// Replaces the per-event message size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_message_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "message size must be positive");
        self.message_bytes = bytes;
        self
    }

    /// Replaces the transfer price per GB.
    pub fn with_transfer_price(mut self, per_gb: Money) -> Self {
        self.transfer_per_gb = per_gb;
        self
    }

    /// Declares the experiment scale: the synthetic workload has
    /// `synthetic` subscribers standing in for `paper` real ones.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_volume_scale(mut self, synthetic: u64, paper: u64) -> Self {
        assert!(synthetic > 0 && paper > 0, "scale counts must be positive");
        self.scale_synth = synthetic;
        self.scale_paper = paper;
        self
    }

    /// The instance type being priced.
    pub fn instance(&self) -> InstanceType {
        self.instance
    }

    /// The billing window.
    pub fn window(&self) -> BillingWindow {
        self.window
    }

    /// The per-event message size in bytes.
    pub fn message_bytes(&self) -> u64 {
        self.message_bytes
    }

    /// The transfer price per GB.
    pub fn transfer_price(&self) -> Money {
        self.transfer_per_gb
    }

    /// The declared `(synthetic, paper)` volume scale (see
    /// [`Ec2CostModel::with_volume_scale`]); `(1, 1)` means full scale.
    pub fn volume_scale(&self) -> (u64, u64) {
        (self.scale_synth, self.scale_paper)
    }

    /// Per-VM bandwidth capacity `BC` in event-units per window, after
    /// scale adjustment (scaled *down* by `synthetic/paper` so that VM
    /// counts match the full-scale deployment).
    ///
    /// Saturates at one event-unit — a capacity of zero would make every
    /// instance infeasible.
    pub fn capacity(&self) -> Bandwidth {
        let events = match self.capacity_events_override {
            Some(e) => u128::from(e),
            None => {
                self.instance.capacity_bytes(self.window.seconds()) / u128::from(self.message_bytes)
            }
        };
        let scaled = events * u128::from(self.scale_synth) / u128::from(self.scale_paper);
        Bandwidth::new(u64::try_from(scaled).unwrap_or(u64::MAX).max(1))
    }

    /// Bytes represented by an event volume at full (paper) scale.
    pub fn volume_to_bytes(&self, volume: Bandwidth) -> u128 {
        u128::from(volume.get()) * u128::from(self.message_bytes) * u128::from(self.scale_paper)
            / u128::from(self.scale_synth)
    }

    /// GB represented by an event volume at full scale (for reporting).
    pub fn volume_to_gb(&self, volume: Bandwidth) -> f64 {
        self.volume_to_bytes(volume) as f64 / 1e9
    }
}

impl CostModel for Ec2CostModel {
    fn vm_cost(&self, vms: usize) -> Money {
        self.instance.hourly_price() * (vms as u64) * self.window.billed_hours()
    }

    fn bandwidth_cost(&self, volume: Bandwidth) -> Money {
        self.transfer_per_gb
            .mul_ratio(self.volume_to_bytes(volume), 1_000_000_000)
    }
}

/// Affine cost functions for tests and the NP-hardness reduction:
/// `C1(x) = per_vm · x`, `C2(v) = per_event · v`.
///
/// The Partition reduction of Theorem II.2 uses `C1(x) = x` (dollars) and
/// `C2 = 0`, i.e. [`LinearCostModel::vm_only`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinearCostModel {
    per_vm: Money,
    per_event: Money,
}

impl LinearCostModel {
    /// Costs `per_vm` per VM and `per_event` per event-unit of bandwidth.
    pub const fn new(per_vm: Money, per_event: Money) -> Self {
        LinearCostModel { per_vm, per_event }
    }

    /// VM-count-only objective: `C1(x) = per_vm · x`, `C2 = 0`.
    pub const fn vm_only(per_vm: Money) -> Self {
        LinearCostModel {
            per_vm,
            per_event: Money::ZERO,
        }
    }

    /// Bandwidth-only objective: `C1 = 0`, `C2(v) = per_event · v`.
    pub const fn bandwidth_only(per_event: Money) -> Self {
        LinearCostModel {
            per_vm: Money::ZERO,
            per_event,
        }
    }
}

impl CostModel for LinearCostModel {
    fn vm_cost(&self, vms: usize) -> Money {
        self.per_vm * (vms as u64)
    }

    fn bandwidth_cost(&self, volume: Bandwidth) -> Money {
        self.per_event * volume.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    #[test]
    fn billing_window_hours() {
        assert_eq!(BillingWindow::PAPER.billed_hours(), 240);
        assert_eq!(BillingWindow::from_hours(5).seconds(), 18_000);
        // started hours are billed in full
        assert_eq!(BillingWindow { seconds: 3601 }.billed_hours(), 2);
    }

    #[test]
    fn paper_vm_cost() {
        let large = Ec2CostModel::paper_default(instances::C3_LARGE);
        assert_eq!(large.vm_cost(1), Money::from_dollars(36));
        assert_eq!(large.vm_cost(100), Money::from_dollars(3600));
        let xlarge = Ec2CostModel::paper_default(instances::C3_XLARGE);
        assert_eq!(xlarge.vm_cost(1), Money::from_dollars(72));
    }

    #[test]
    fn paper_bandwidth_cost() {
        let m = Ec2CostModel::paper_default(instances::C3_LARGE);
        // 5M events × 200 B = 1 GB => $0.12
        assert_eq!(
            m.bandwidth_cost(Bandwidth::new(5_000_000)),
            Money::from_micros(120_000)
        );
        assert_eq!(m.bandwidth_cost(Bandwidth::ZERO), Money::ZERO);
        assert!((m.volume_to_gb(Bandwidth::new(5_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_capacity() {
        let m = Ec2CostModel::paper_default(instances::C3_LARGE);
        // 64 mbps = 8e6 B/s; ×864000 s = 6.912e12 B; /200 B = 3.456e10 events
        assert_eq!(m.capacity(), Bandwidth::new(34_560_000_000));
        let x = Ec2CostModel::paper_default(instances::C3_XLARGE);
        assert_eq!(x.capacity().get(), 2 * m.capacity().get());
    }

    #[test]
    fn volume_scaling_preserves_dollar_figures() {
        let full = Ec2CostModel::paper_default(instances::C3_LARGE);
        let scaled = Ec2CostModel::paper_default(instances::C3_LARGE).with_volume_scale(1, 100);
        // capacity shrinks 100×
        assert_eq!(scaled.capacity().get(), full.capacity().get() / 100);
        // a 100×-smaller volume costs the same dollars
        let v_full = Bandwidth::new(5_000_000);
        let v_scaled = Bandwidth::new(50_000);
        assert_eq!(scaled.bandwidth_cost(v_scaled), full.bandwidth_cost(v_full));
        // VM cost is scale-independent
        assert_eq!(scaled.vm_cost(7), full.vm_cost(7));
    }

    #[test]
    fn effective_capacity_matches_figure_calibration() {
        let large = Ec2CostModel::paper_effective(instances::C3_LARGE);
        assert_eq!(large.capacity(), Bandwidth::new(50_000_000));
        let xlarge = Ec2CostModel::paper_effective(instances::C3_XLARGE);
        assert_eq!(xlarge.capacity(), Bandwidth::new(100_000_000));
        // Scale compensation applies to the override too.
        let scaled =
            Ec2CostModel::paper_effective(instances::C3_LARGE).with_volume_scale(49, 4_900_000);
        assert_eq!(scaled.capacity(), Bandwidth::new(500));
        // Pricing is unchanged by the capacity override.
        assert_eq!(large.vm_cost(1), Money::from_dollars(36));
    }

    #[test]
    fn capacity_never_zero() {
        let tiny = Ec2CostModel::paper_default(instances::C3_LARGE).with_volume_scale(1, u64::MAX);
        assert!(tiny.capacity().get() >= 1);
    }

    #[test]
    fn total_cost_is_sum() {
        let m = Ec2CostModel::paper_default(instances::C3_LARGE);
        let v = Bandwidth::new(10_000_000);
        assert_eq!(m.total_cost(3, v), m.vm_cost(3) + m.bandwidth_cost(v));
    }

    #[test]
    fn linear_model() {
        let lm = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(2));
        assert_eq!(lm.vm_cost(5), Money::from_dollars(5));
        assert_eq!(
            lm.bandwidth_cost(Bandwidth::new(10)),
            Money::from_micros(20)
        );
        let vm_only = LinearCostModel::vm_only(Money::from_dollars(1));
        assert_eq!(
            vm_only.bandwidth_cost(Bandwidth::new(1_000_000)),
            Money::ZERO
        );
        let bw_only = LinearCostModel::bandwidth_only(Money::from_micros(1));
        assert_eq!(bw_only.vm_cost(99), Money::ZERO);
    }

    #[test]
    fn cost_model_is_object_safe() {
        let m = Ec2CostModel::paper_default(instances::C3_LARGE);
        let as_dyn: &dyn CostModel = &m;
        assert_eq!(as_dyn.vm_cost(1), Money::from_dollars(36));
    }
}
