//! Collection strategies.

use crate::strategy::Strategy;
use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        let s = vec(0u32..10, 2..5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len() - 2] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen.iter().all(|&b| b), "all lengths in 2..5 reachable");
    }

    #[test]
    fn nested_vec_and_exact_size() {
        let mut rng = StdRng::seed_from_u64(22);
        let s = vec(vec(0u32..3, 0..4), 3usize);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 3);
    }
}
