//! `mcss` — command-line front end for the MCSS solver.
//!
//! ```text
//! mcss generate spotify --size 50000 --seed 7 --out trace.tsv
//! mcss analyze trace.tsv
//! mcss solve trace.tsv --tau 100 --instance c3.large --effective --simulate
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency) and unit-tested;
//! see `mcss help` for the full grammar.

use cloud_cost::{instances, CostModel, Ec2CostModel, FleetCostModel, InstanceType};
use mcss_core::dynamic::{DriftModel, Reprovisioner, WorkloadDelta};
use mcss_core::ilp::{export_lp, IlpOptions};
use mcss_core::incremental::{IncrementalConfig, IncrementalReallocator, SlaBudget};
use mcss_core::planner::{plan_instance_type, plan_mixed};
use mcss_core::serve::{Daemon, Driver, EpochStats, Event, ServeConfig};
use mcss_core::{
    AllocatorKind, McssInstance, PartitionerKind, SearchBudget, SelectorKind, ShardingConfig,
    Solver, SolverParams,
};
use mcss_store::{StoreReader, WorkloadStoreExt};
use pubsub_model::{Rate, Workload};
use pubsub_sim::failure::{fail_vms, fragility_profile};
use pubsub_sim::{SimConfig, Simulation};
use pubsub_traces::io::{read_workload, write_workload};
use pubsub_traces::{SpotifyLike, TwitterLike};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const HELP: &str = "mcss — Minimum Cost Subscriber Satisfaction solver (ICDCS 2014)

USAGE:
  mcss solve <trace.tsv> --tau N [options]   solve MCSS over a trace file
  mcss pack <trace.tsv> --tau N [options]    compare Stage-2 packers (greedy
                                             CBP, FFD, anytime-refined)
                                             against the Alg. 5 lower bound
  mcss plan <trace.tsv> --tau N [options]    rank instance types by cost
  mcss reprovision <trace.tsv> --tau N [options]
                                             drift the workload and repair
                                             the fleet epoch by epoch
  mcss serve --trace <spotify|twitter> [options]
                                             run the event-sourced drift
                                             daemon against a synthetic
                                             subscription stream
  mcss drill <trace.tsv> --tau N --kill SPEC [options]
                                             kill VMs and repair the fleet
                                             under an SLA pairs budget
  mcss generate <spotify|twitter> [options]  write a synthetic trace
  mcss ingest <trace.tsv> --out <file.mcss>  convert a trace to the binary
                                             MCSSTOR1 store (load it back
                                             with --store, zero rebuild)
  mcss analyze <trace.tsv> [options]         print workload statistics
  mcss help                                  this text

Commands that take <trace.tsv> positionally (solve, reprovision,
analyze) accept --store FILE instead: the workload then loads from an
ingested MCSSTOR1 store — one read plus checksums, no per-row parsing.

SOLVE OPTIONS:
  --tau N                satisfaction threshold (required)
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --selector NAME        gsp | rsp | shared | optimal       [gsp]
  --allocator NAME       cbp | ffbp                         [cbp]
  --shards N             partition subscribers and solve shard-parallel [1]
  --threads N            worker threads (shard solves, or parallel GSP
                         when --shards is 1)                 [shards]
  --partitioner NAME     topic | hash                        [topic]
  --refine BUDGET        post-process the packing with the anytime local
                         search: \"500\" caps moves, \"100ms\"/\"2s\" caps
                         wall-clock (wall-clock runs are not
                         reproducible step for step)     [off]
  --store FILE           load the workload from an MCSSTOR1 store
                         instead of the positional trace path
  --effective            use the figure-calibrated capacity (DESIGN.md §3)
  --scale SYNTH/PAPER    volume-scale compensation ratio
  --simulate             replay the window through the broker simulation

PACK OPTIONS:
  --tau N                satisfaction threshold (required)
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --refine BUDGET        local-search budget, as in solve --refine
                         [unbounded: run until no move improves or the
                         lower-bound certificate is met]
  --mixed                pack onto the heterogeneous catalogue fleet
                         (FFD and --export-lp are homogeneous-only)
  --export-lp FILE       also write the exact integer program in CPLEX
                         LP format, sized by the greedy VM count
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio

PLAN OPTIONS:
  --tau N                satisfaction threshold (required)
  --mixed                also solve one heterogeneous fleet over the whole
                         catalogue and report it against the homogeneous
                         winner (never more expensive)
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio

REPROVISION OPTIONS:
  --tau N                satisfaction threshold (required)
  --epochs N             drift/repair epochs to run              [5]
  --churn P              per-subscriber interest-swap probability [0.1]
  --sigma S              log-std of per-epoch rate noise          [0.1]
  --drift-seed N         drift RNG seed                           [42]
  --fresh                re-solve from scratch each epoch instead of the
                         O(Δ) incremental repair
  --threads N            worker threads for shard-parallel epoch repair
                         (bit-identical selections)               [1]
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --mixed                deploy on a heterogeneous fleet over the whole
                         catalogue (--instance is ignored); selections
                         stay bit-identical to the homogeneous run
  --store FILE           load the workload from an MCSSTOR1 store
                         instead of the positional trace path
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio
  --simulate             replay each epoch through the broker simulation

SERVE OPTIONS:
  --trace FAMILY         spotify | twitter (required unless --store)
  --store FILE           seed the stream from an ingested MCSSTOR1
                         store instead of a generated --trace family
                         (--size and --seed are then ignored)
  --size N               subscribers (spotify) or users (twitter) [2000]
  --seed N               trace RNG seed                           [42]
  --tau N                satisfaction threshold                   [100]
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --epochs N             drift batches to stream                  [10]
  --epoch-events N       close an epoch every N buffered events
                         (watermark); default: one epoch per batch
  --epoch-ms N           close an epoch once N wall-clock ms have
                         elapsed, checked at batch boundaries
  --churn P              per-subscriber interest-swap probability [0.1]
  --sigma S              log-std of per-epoch rate noise          [0.1]
  --drift-seed N         drift RNG seed                           [42]
  --dir PATH             state directory (event log + snapshots)
                         [fresh directory under the system tmpdir]
  --snapshot-every N     snapshot every N applied epochs (0 = never) [8]
  --threads N            worker threads for shard-parallel epoch repair
                         (bit-identical selections)               [1]
  --resume               recover from --dir (snapshot load + log
                         replay), then continue the stream
  --drill SPEC           schedule VM failures: \"EPOCH:KILL;...\" where
                         KILL is a kill list (see drill --kill); e.g.
                         \"2:0-3;5:20%\" (incompatible with --resume)
  --repair-budget N      SLA budget: at most N orphaned pairs re-placed
                         per epoch; the rest carry over  [unbounded]
  --compact-every N      run a Stage-2 compaction pass every N applied
                         epochs (skipped while repairs are deferred or
                         failed VMs are down)            [off]
  --compact-steps N      local-search moves per compaction pass (steps,
                         never wall-clock — replay stays deterministic)
                         [2048]
  --sync-retries N       retry a failed epoch fsync N times       [0]
  --retry-backoff-ms N   sleep between fsync retries              [0]
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio
  --summary FILE         write a machine-readable run summary (JSON)
  --simulate             replay the final fleet through the broker sim

DRILL OPTIONS:
  --tau N                satisfaction threshold (required)
  --kill SPEC            kill list (required): indices \"0,3,9\", a range
                         \"0-7\", mixed \"0,4-6\", or a fleet share \"20%\"
  --sla-pairs N          repair at most N pairs per epoch   [unbounded]
  --max-epochs N         give up if not drained after N repair epochs [64]
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio

ANALYZE OPTIONS:
  --store FILE           analyze an MCSSTOR1 store instead of a trace;
                         also prints on-disk bytes per section next to
                         the resident footprint
  --blast-radius K       solve the trace and print the top-K VMs by
                         blast radius (subscribers starved if that VM
                         dies); needs --tau
  --tau N                satisfaction threshold (with --blast-radius)
  --instance NAME        c3.large | c3.xlarge | c3.2xlarge  [c3.large]
  --effective            use the figure-calibrated capacity
  --scale SYNTH/PAPER    volume-scale compensation ratio

GENERATE OPTIONS:
  --size N               subscribers (spotify) or users (twitter) [10000]
  --seed N               RNG seed                                 [42]
  --out FILE             output path                              [stdout]

INGEST OPTIONS:
  --out FILE             output store path (required)
";

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
enum Command {
    Solve {
        source: WorkloadSource,
        tau: u64,
        instance: InstanceType,
        selector: SelectorKind,
        allocator: AllocatorKind,
        shards: usize,
        threads: usize,
        partitioner: PartitionerKind,
        refine: Option<SearchBudget>,
        effective: bool,
        scale: Option<(u64, u64)>,
        simulate: bool,
    },
    Pack {
        trace: String,
        tau: u64,
        instance: InstanceType,
        mixed: bool,
        refine: SearchBudget,
        export_lp: Option<String>,
        effective: bool,
        scale: Option<(u64, u64)>,
    },
    Plan {
        trace: String,
        tau: u64,
        mixed: bool,
        effective: bool,
        scale: Option<(u64, u64)>,
    },
    Reprovision {
        source: WorkloadSource,
        tau: u64,
        instance: InstanceType,
        epochs: u64,
        churn: f64,
        sigma: f64,
        drift_seed: u64,
        fresh: bool,
        threads: usize,
        mixed: bool,
        effective: bool,
        scale: Option<(u64, u64)>,
        simulate: bool,
    },
    Generate {
        family: String,
        size: usize,
        seed: u64,
        out: Option<String>,
    },
    Ingest {
        trace: String,
        out: String,
    },
    Analyze {
        source: WorkloadSource,
        blast_radius: Option<usize>,
        tau: Option<u64>,
        instance: InstanceType,
        effective: bool,
        scale: Option<(u64, u64)>,
    },
    Drill {
        trace: String,
        tau: u64,
        kill: KillSpec,
        sla_pairs: Option<u64>,
        max_epochs: u64,
        instance: InstanceType,
        effective: bool,
        scale: Option<(u64, u64)>,
    },
    Serve {
        family: Option<String>,
        store: Option<String>,
        size: usize,
        seed: u64,
        tau: u64,
        instance: InstanceType,
        epochs: u64,
        epoch_events: Option<u64>,
        epoch_ms: Option<u64>,
        churn: f64,
        sigma: f64,
        drift_seed: u64,
        dir: Option<String>,
        snapshot_every: u64,
        threads: usize,
        resume: bool,
        drill: Vec<(u64, KillSpec)>,
        repair_budget: Option<u64>,
        compact_every: Option<u64>,
        compact_steps: u64,
        sync_retries: u32,
        retry_backoff_ms: u64,
        effective: bool,
        scale: Option<(u64, u64)>,
        summary: Option<String>,
        simulate: bool,
    },
    Help,
}

/// Where a command's workload comes from: a TSV trace (parsed row by
/// row) or an ingested `MCSSTOR1` store (one read plus checksums, zero
/// per-row work — see `docs/STORE.md`).
#[derive(Clone, Debug, PartialEq)]
enum WorkloadSource {
    /// A `pubsub-trace v1` TSV path (the positional argument).
    Trace(String),
    /// An `MCSSTOR1` store path (the `--store` flag).
    Store(String),
}

impl WorkloadSource {
    /// Resolves the optional positional trace and the `--store` flag
    /// into exactly one source, or explains what is missing.
    fn resolve(trace: Option<String>, store: Option<String>, cmd: &str) -> Result<Self, String> {
        match (trace, store) {
            (Some(t), None) => Ok(WorkloadSource::Trace(t)),
            (None, Some(s)) => Ok(WorkloadSource::Store(s)),
            (Some(_), Some(_)) => Err(format!(
                "{cmd} takes either a trace path or --store, not both"
            )),
            (None, None) => Err(format!("{cmd} needs a trace path or --store FILE")),
        }
    }
}

/// Consumes the optional positional path: present unless the argument
/// list is exhausted or the next token is a flag.
fn take_positional(it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>) -> Option<String> {
    match it.peek() {
        Some(arg) if !arg.starts_with("--") => Some(it.next().expect("peeked").clone()),
        _ => None,
    }
}

/// A parsed kill list: explicit VM indices or a share of the fleet.
#[derive(Clone, Debug, PartialEq)]
enum KillSpec {
    /// Explicit slot indices — `0,3,9`, `0-7`, or mixed `0,4-6`.
    List(Vec<usize>),
    /// A leading share of the fleet — `20%` kills the first ⌈20%·n⌉ VMs
    /// (a correlated-rack / region-outage stand-in).
    Percent(u32),
}

fn parse_kill(spec: &str) -> Result<KillSpec, String> {
    if let Some(pct) = spec.strip_suffix('%') {
        let pct: u32 = pct
            .parse()
            .map_err(|e| format!("bad kill share {spec:?}: {e}"))?;
        if pct == 0 || pct > 100 {
            return Err(format!("kill share {spec:?} must be in 1%..=100%"));
        }
        return Ok(KillSpec::Percent(pct));
    }
    let mut indices = Vec::new();
    for item in spec.split(',') {
        if let Some((a, b)) = item.split_once('-') {
            let a: usize = a
                .parse()
                .map_err(|e| format!("bad kill range {item:?}: {e}"))?;
            let b: usize = b
                .parse()
                .map_err(|e| format!("bad kill range {item:?}: {e}"))?;
            if a > b {
                return Err(format!("kill range {item:?} runs backwards"));
            }
            indices.extend(a..=b);
        } else {
            indices.push(
                item.parse()
                    .map_err(|e| format!("bad kill index {item:?}: {e}"))?,
            );
        }
    }
    if indices.is_empty() {
        return Err("empty kill list".into());
    }
    Ok(KillSpec::List(indices))
}

/// Turns a kill spec into concrete slot indices for an `n`-VM fleet.
fn resolve_kill(spec: &KillSpec, n: usize) -> Vec<usize> {
    match spec {
        KillSpec::List(indices) => indices.clone(),
        KillSpec::Percent(pct) => {
            let k = (n * *pct as usize).div_ceil(100).min(n);
            (0..k).collect()
        }
    }
}

/// Parses a serve drill schedule: `"EPOCH:KILL;EPOCH:KILL"`.
fn parse_drill_schedule(spec: &str) -> Result<Vec<(u64, KillSpec)>, String> {
    let mut schedule = Vec::new();
    for entry in spec.split(';') {
        let (epoch, kill) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad drill entry {entry:?}, want EPOCH:KILL"))?;
        let epoch: u64 = epoch
            .parse()
            .map_err(|e| format!("bad drill epoch {epoch:?}: {e}"))?;
        schedule.push((epoch, parse_kill(kill)?));
    }
    schedule.sort_by_key(|&(epoch, _)| epoch);
    Ok(schedule)
}

fn parse_instance(name: &str) -> Result<InstanceType, String> {
    instances::ALL
        .iter()
        .copied()
        .find(|i| i.name() == name)
        .ok_or_else(|| format!("unknown instance type {name:?}"))
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "analyze" => {
            let trace = take_positional(&mut it);
            let mut store: Option<String> = None;
            let mut blast_radius = None;
            let mut tau = None;
            let mut instance = instances::C3_LARGE;
            let mut effective = false;
            let mut scale = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--store" => {
                        store = Some(
                            it.next()
                                .ok_or_else(|| "--store needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--blast-radius" => {
                        let k: usize = next_num(&mut it, "--blast-radius")?;
                        if k == 0 {
                            return Err("--blast-radius must be at least 1".into());
                        }
                        blast_radius = Some(k);
                    }
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    other => return Err(format!("unknown analyze flag {other:?}")),
                }
            }
            if blast_radius.is_some() && tau.is_none() {
                return Err("--blast-radius needs --tau (it solves the trace)".into());
            }
            let source = WorkloadSource::resolve(trace, store, "analyze")?;
            Ok(Command::Analyze {
                source,
                blast_radius,
                tau,
                instance,
                effective,
                scale,
            })
        }
        "drill" => {
            let trace = it
                .next()
                .ok_or_else(|| "drill needs a trace path".to_string())?
                .clone();
            let mut tau: Option<u64> = None;
            let mut kill: Option<KillSpec> = None;
            let mut sla_pairs: Option<u64> = None;
            let mut max_epochs = 64u64;
            let mut instance = instances::C3_LARGE;
            let mut effective = false;
            let mut scale = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--kill" => {
                        let spec = it.next().ok_or_else(|| "--kill needs a spec".to_string())?;
                        kill = Some(parse_kill(spec)?);
                    }
                    "--sla-pairs" => {
                        let pairs: u64 = next_num(&mut it, "--sla-pairs")?;
                        if pairs == 0 {
                            return Err(
                                "--sla-pairs must be positive (omit it to drain unbounded)".into(),
                            );
                        }
                        sla_pairs = Some(pairs);
                    }
                    "--max-epochs" => {
                        max_epochs = next_num(&mut it, "--max-epochs")?;
                        if max_epochs == 0 {
                            return Err("--max-epochs must be at least 1".into());
                        }
                    }
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    other => return Err(format!("unknown drill flag {other:?}")),
                }
            }
            let tau = tau.ok_or_else(|| "--tau is required".to_string())?;
            let kill = kill.ok_or_else(|| "--kill is required".to_string())?;
            Ok(Command::Drill {
                trace,
                tau,
                kill,
                sla_pairs,
                max_epochs,
                instance,
                effective,
                scale,
            })
        }
        "generate" => {
            let family = it
                .next()
                .ok_or_else(|| "generate needs a family: spotify | twitter".to_string())?
                .clone();
            if family != "spotify" && family != "twitter" {
                return Err(format!("unknown trace family {family:?}"));
            }
            let mut size = 10_000usize;
            let mut seed = 42u64;
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--size" => size = next_num(&mut it, "--size")?,
                    "--seed" => seed = next_num(&mut it, "--seed")?,
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| "--out needs a path".to_string())?
                                .clone(),
                        )
                    }
                    other => return Err(format!("unknown generate flag {other:?}")),
                }
            }
            Ok(Command::Generate {
                family,
                size,
                seed,
                out,
            })
        }
        "ingest" => {
            let trace = it
                .next()
                .ok_or_else(|| "ingest needs a trace path".to_string())?
                .clone();
            let mut out: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| "--out needs a path".to_string())?
                                .clone(),
                        )
                    }
                    other => return Err(format!("unknown ingest flag {other:?}")),
                }
            }
            let out = out.ok_or_else(|| "--out is required (the store path)".to_string())?;
            Ok(Command::Ingest { trace, out })
        }
        "plan" => {
            let trace = it
                .next()
                .ok_or_else(|| "plan needs a trace path".to_string())?
                .clone();
            let mut tau: Option<u64> = None;
            let mut mixed = false;
            let mut effective = false;
            let mut scale = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--mixed" => mixed = true,
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    other => return Err(format!("unknown plan flag {other:?}")),
                }
            }
            let tau = tau.ok_or_else(|| "--tau is required".to_string())?;
            Ok(Command::Plan {
                trace,
                tau,
                mixed,
                effective,
                scale,
            })
        }
        "reprovision" => {
            let trace = take_positional(&mut it);
            let mut store: Option<String> = None;
            let mut tau: Option<u64> = None;
            let mut instance = instances::C3_LARGE;
            let mut epochs = 5u64;
            let mut churn = 0.1f64;
            let mut sigma = 0.1f64;
            let mut drift_seed = 42u64;
            let mut fresh = false;
            let mut threads = 1usize;
            let mut mixed = false;
            let mut effective = false;
            let mut scale = None;
            let mut simulate = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--mixed" => mixed = true,
                    "--threads" => {
                        threads = next_num(&mut it, "--threads")?;
                        if threads == 0 {
                            return Err("--threads must be at least 1".into());
                        }
                    }
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--epochs" => {
                        epochs = next_num(&mut it, "--epochs")?;
                        if epochs == 0 {
                            return Err("--epochs must be at least 1".into());
                        }
                    }
                    "--churn" => {
                        churn = next_num(&mut it, "--churn")?;
                        if !(0.0..=1.0).contains(&churn) {
                            return Err("--churn must be a probability in [0, 1]".into());
                        }
                    }
                    "--sigma" => {
                        sigma = next_num(&mut it, "--sigma")?;
                        if sigma < 0.0 {
                            return Err("--sigma must be non-negative".into());
                        }
                    }
                    "--drift-seed" => drift_seed = next_num(&mut it, "--drift-seed")?,
                    "--fresh" => fresh = true,
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--store" => {
                        store = Some(
                            it.next()
                                .ok_or_else(|| "--store needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    "--simulate" => simulate = true,
                    other => return Err(format!("unknown reprovision flag {other:?}")),
                }
            }
            let tau = tau.ok_or_else(|| "--tau is required".to_string())?;
            let source = WorkloadSource::resolve(trace, store, "reprovision")?;
            Ok(Command::Reprovision {
                source,
                tau,
                instance,
                epochs,
                churn,
                sigma,
                drift_seed,
                fresh,
                threads,
                mixed,
                effective,
                scale,
                simulate,
            })
        }
        "solve" => {
            let trace = take_positional(&mut it);
            let mut store: Option<String> = None;
            let mut tau: Option<u64> = None;
            let mut instance = instances::C3_LARGE;
            let mut selector = SelectorKind::Greedy;
            let mut allocator = AllocatorKind::custom_full();
            let mut shards = 1usize;
            let mut threads = 0usize;
            let mut partitioner = PartitionerKind::default();
            let mut refine: Option<SearchBudget> = None;
            let mut effective = false;
            let mut scale = None;
            let mut simulate = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--refine" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "--refine needs a budget".to_string())?;
                        refine = Some(parse_budget(spec)?);
                    }
                    "--shards" => {
                        shards = next_num(&mut it, "--shards")?;
                        if shards == 0 {
                            return Err("--shards must be at least 1".into());
                        }
                    }
                    "--threads" => {
                        threads = next_num(&mut it, "--threads")?;
                        if threads == 0 {
                            return Err("--threads must be at least 1".into());
                        }
                    }
                    "--partitioner" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--partitioner needs a name".to_string())?;
                        partitioner = match name.as_str() {
                            "topic" => PartitionerKind::TopicLocality,
                            "hash" => PartitionerKind::Hash { seed: 42 },
                            other => return Err(format!("unknown partitioner {other:?}")),
                        };
                    }
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--selector" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--selector needs a name".to_string())?;
                        selector = match name.as_str() {
                            "gsp" => SelectorKind::Greedy,
                            "rsp" => SelectorKind::Random { seed: 42 },
                            "shared" => SelectorKind::SharedAware,
                            "optimal" => SelectorKind::Optimal,
                            other => return Err(format!("unknown selector {other:?}")),
                        };
                    }
                    "--allocator" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--allocator needs a name".to_string())?;
                        allocator = match name.as_str() {
                            "cbp" => AllocatorKind::custom_full(),
                            "ffbp" => AllocatorKind::FirstFit,
                            other => return Err(format!("unknown allocator {other:?}")),
                        };
                    }
                    "--store" => {
                        store = Some(
                            it.next()
                                .ok_or_else(|| "--store needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--effective" => effective = true,
                    "--simulate" => simulate = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    other => return Err(format!("unknown solve flag {other:?}")),
                }
            }
            let tau = tau.ok_or_else(|| "--tau is required".to_string())?;
            let source = WorkloadSource::resolve(trace, store, "solve")?;
            Ok(Command::Solve {
                source,
                tau,
                instance,
                selector,
                allocator,
                shards,
                threads,
                partitioner,
                refine,
                effective,
                scale,
                simulate,
            })
        }
        "pack" => {
            let trace = it
                .next()
                .ok_or_else(|| "pack needs a trace path".to_string())?
                .clone();
            let mut tau: Option<u64> = None;
            let mut instance = instances::C3_LARGE;
            let mut mixed = false;
            let mut refine = SearchBudget::UNBOUNDED;
            let mut export_lp: Option<String> = None;
            let mut effective = false;
            let mut scale = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--tau" => tau = Some(next_num(&mut it, "--tau")?),
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--mixed" => mixed = true,
                    "--refine" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "--refine needs a budget".to_string())?;
                        refine = parse_budget(spec)?;
                    }
                    "--export-lp" => {
                        export_lp = Some(
                            it.next()
                                .ok_or_else(|| "--export-lp needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    other => return Err(format!("unknown pack flag {other:?}")),
                }
            }
            let tau = tau.ok_or_else(|| "--tau is required".to_string())?;
            if mixed && export_lp.is_some() {
                return Err(
                    "--export-lp cannot be combined with --mixed: the LP formulation is \
                     homogeneous (one capacity for every candidate VM)"
                        .into(),
                );
            }
            Ok(Command::Pack {
                trace,
                tau,
                instance,
                mixed,
                refine,
                export_lp,
                effective,
                scale,
            })
        }
        "serve" => {
            let mut family: Option<String> = None;
            let mut store: Option<String> = None;
            let mut size = 2_000usize;
            let mut seed = 42u64;
            let mut tau = 100u64;
            let mut instance = instances::C3_LARGE;
            let mut epochs = 10u64;
            let mut epoch_events: Option<u64> = None;
            let mut epoch_ms: Option<u64> = None;
            let mut churn = 0.1f64;
            let mut sigma = 0.1f64;
            let mut drift_seed = 42u64;
            let mut dir: Option<String> = None;
            let mut snapshot_every = 8u64;
            let mut threads = 1usize;
            let mut resume = false;
            let mut drill: Vec<(u64, KillSpec)> = Vec::new();
            let mut repair_budget: Option<u64> = None;
            let mut compact_every: Option<u64> = None;
            let mut compact_steps = 2_048u64;
            let mut saw_compact_steps = false;
            let mut sync_retries = 0u32;
            let mut retry_backoff_ms = 0u64;
            let mut effective = false;
            let mut scale = None;
            let mut summary: Option<String> = None;
            let mut simulate = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--trace" => {
                        let name = it.next().ok_or_else(|| {
                            "--trace needs a family: spotify | twitter".to_string()
                        })?;
                        if name != "spotify" && name != "twitter" {
                            return Err(format!("unknown trace family {name:?}"));
                        }
                        family = Some(name.clone());
                    }
                    "--store" => {
                        store = Some(
                            it.next()
                                .ok_or_else(|| "--store needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--size" => size = next_num(&mut it, "--size")?,
                    "--seed" => seed = next_num(&mut it, "--seed")?,
                    "--tau" => tau = next_num(&mut it, "--tau")?,
                    "--instance" => {
                        let name = it
                            .next()
                            .ok_or_else(|| "--instance needs a name".to_string())?;
                        instance = parse_instance(name)?;
                    }
                    "--epochs" => {
                        epochs = next_num(&mut it, "--epochs")?;
                        if epochs == 0 {
                            return Err("--epochs must be at least 1".into());
                        }
                    }
                    "--epoch-events" => {
                        let events: u64 = next_num(&mut it, "--epoch-events")?;
                        if events == 0 {
                            return Err("--epoch-events must be positive".into());
                        }
                        epoch_events = Some(events);
                    }
                    "--epoch-ms" => {
                        let ms: u64 = next_num(&mut it, "--epoch-ms")?;
                        if ms == 0 {
                            return Err("--epoch-ms must be positive".into());
                        }
                        epoch_ms = Some(ms);
                    }
                    "--churn" => {
                        churn = next_num(&mut it, "--churn")?;
                        if !(0.0..=1.0).contains(&churn) {
                            return Err("--churn must be a probability in [0, 1]".into());
                        }
                    }
                    "--sigma" => {
                        sigma = next_num(&mut it, "--sigma")?;
                        if sigma < 0.0 {
                            return Err("--sigma must be non-negative".into());
                        }
                    }
                    "--drift-seed" => drift_seed = next_num(&mut it, "--drift-seed")?,
                    "--dir" => {
                        dir = Some(
                            it.next()
                                .ok_or_else(|| "--dir needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--snapshot-every" => snapshot_every = next_num(&mut it, "--snapshot-every")?,
                    "--threads" => {
                        threads = next_num(&mut it, "--threads")?;
                        if threads == 0 {
                            return Err("--threads must be at least 1".into());
                        }
                    }
                    "--resume" => resume = true,
                    "--drill" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "--drill needs a schedule spec".to_string())?;
                        drill = parse_drill_schedule(spec)?;
                    }
                    "--repair-budget" => {
                        let pairs: u64 = next_num(&mut it, "--repair-budget")?;
                        if pairs == 0 {
                            return Err(
                                "--repair-budget must be positive (omit it to drain unbounded)"
                                    .into(),
                            );
                        }
                        repair_budget = Some(pairs);
                    }
                    "--compact-every" => {
                        let every: u64 = next_num(&mut it, "--compact-every")?;
                        if every == 0 {
                            return Err(
                                "--compact-every must be positive (omit it to disable compaction)"
                                    .into(),
                            );
                        }
                        compact_every = Some(every);
                    }
                    "--compact-steps" => {
                        compact_steps = next_num(&mut it, "--compact-steps")?;
                        if compact_steps == 0 {
                            return Err("--compact-steps must be positive".into());
                        }
                        saw_compact_steps = true;
                    }
                    "--sync-retries" => sync_retries = next_num(&mut it, "--sync-retries")?,
                    "--retry-backoff-ms" => {
                        retry_backoff_ms = next_num(&mut it, "--retry-backoff-ms")?
                    }
                    "--effective" => effective = true,
                    "--scale" => scale = Some(parse_scale(&mut it)?),
                    "--summary" => {
                        summary = Some(
                            it.next()
                                .ok_or_else(|| "--summary needs a path".to_string())?
                                .clone(),
                        )
                    }
                    "--simulate" => simulate = true,
                    other => return Err(format!("unknown serve flag {other:?}")),
                }
            }
            if family.is_some() && store.is_some() {
                return Err(
                    "--trace and --store are mutually exclusive (one initial workload)".into(),
                );
            }
            if family.is_none() && store.is_none() {
                return Err("--trace is required: spotify | twitter (or --store FILE)".into());
            }
            if epoch_events.is_some() && epoch_ms.is_some() {
                return Err("--epoch-events and --epoch-ms are mutually exclusive".into());
            }
            if resume && epoch_ms.is_some() {
                return Err(
                    "--resume cannot replay wall-clock epochs; use --epoch-events or the \
                     default one-epoch-per-batch mode"
                        .into(),
                );
            }
            if resume && dir.is_none() {
                return Err("--resume needs --dir (the state directory to recover)".into());
            }
            if resume && !drill.is_empty() {
                return Err(
                    "--drill cannot be combined with --resume: the drill's failure events \
                     are already in the recovered log"
                        .into(),
                );
            }
            if saw_compact_steps && compact_every.is_none() {
                return Err("--compact-steps needs --compact-every".into());
            }
            Ok(Command::Serve {
                family,
                store,
                size,
                seed,
                tau,
                instance,
                epochs,
                epoch_events,
                epoch_ms,
                churn,
                sigma,
                drift_seed,
                dir,
                snapshot_every,
                threads,
                resume,
                drill,
                repair_budget,
                compact_every,
                compact_steps,
                sync_retries,
                retry_backoff_ms,
                effective,
                scale,
                summary,
                simulate,
            })
        }
        other => Err(format!("unknown command {other:?}; try `mcss help`")),
    }
}

fn parse_scale<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<(u64, u64), String> {
    let spec = it
        .next()
        .ok_or_else(|| "--scale needs SYNTH/PAPER".to_string())?;
    let (a, b) = spec
        .split_once('/')
        .ok_or_else(|| format!("bad scale {spec:?}, want SYNTH/PAPER"))?;
    let a: u64 = a.parse().map_err(|e| format!("bad scale numerator: {e}"))?;
    let b: u64 = b
        .parse()
        .map_err(|e| format!("bad scale denominator: {e}"))?;
    if a == 0 || b == 0 {
        return Err("scale parts must be positive".into());
    }
    Ok((a, b))
}

/// Budget grammar for `--refine`: a bare integer caps local-search
/// moves (deterministic, replay-safe); an `ms`/`s` suffix caps
/// wall-clock instead.
fn parse_budget(spec: &str) -> Result<SearchBudget, String> {
    if let Some(ms) = spec.strip_suffix("ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|e| format!("bad --refine budget {spec:?}: {e}"))?;
        if ms == 0 {
            return Err(format!("--refine budget {spec:?} must be positive"));
        }
        return Ok(SearchBudget::time(std::time::Duration::from_millis(ms)));
    }
    if let Some(secs) = spec.strip_suffix('s') {
        let secs: u64 = secs
            .parse()
            .map_err(|e| format!("bad --refine budget {spec:?}: {e}"))?;
        if secs == 0 {
            return Err(format!("--refine budget {spec:?} must be positive"));
        }
        return Ok(SearchBudget::time(std::time::Duration::from_secs(secs)));
    }
    let steps: u64 = spec
        .parse()
        .map_err(|_| format!("bad --refine budget {spec:?}: want moves, Nms, or Ns"))?;
    Ok(SearchBudget::steps(steps))
}

fn next_num<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("bad {flag} value {raw:?}: {e}"))
}

fn load_trace(path: &str) -> Result<Workload, String> {
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    read_workload(BufReader::new(file)).map_err(|e| e.to_string())
}

fn load_source(source: &WorkloadSource) -> Result<Workload, String> {
    match source {
        WorkloadSource::Trace(path) => load_trace(path),
        WorkloadSource::Store(path) => {
            Workload::from_store(Path::new(path)).map_err(|e| format!("loading store {path}: {e}"))
        }
    }
}

/// The whole instance catalogue priced under the chosen calibration —
/// the candidate list for `plan` and the tier table for `--mixed`.
fn catalogue(effective: bool, scale: Option<(u64, u64)>) -> Vec<Ec2CostModel> {
    instances::ALL
        .iter()
        .map(|&i| {
            let mut cost = if effective {
                Ec2CostModel::paper_effective(i)
            } else {
                Ec2CostModel::paper_default(i)
            };
            if let Some((synth, paper)) = scale {
                cost = cost.with_volume_scale(synth, paper);
            }
            cost
        })
        .collect()
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Analyze {
            source,
            blast_radius,
            tau,
            instance,
            effective,
            scale,
        } => {
            let workload = load_source(&source)?;
            println!("{}", workload.stats());
            let issues = workload.validate();
            if issues.is_empty() {
                println!("structure:         regular (every topic followed, every subscriber interested)");
            } else {
                println!(
                    "structure:         {} irregularities (first: {})",
                    issues.len(),
                    issues[0]
                );
            }
            println!(
                "{}",
                mcss_core::MemoryFootprint::measure(&workload, None, None)
            );
            if let WorkloadSource::Store(path) = &source {
                // The on-disk shape of what we just loaded: one line
                // per section next to the resident footprint above.
                let reader = StoreReader::open(Path::new(path))
                    .map_err(|e| format!("reopening store {path}: {e}"))?;
                let subs = workload.num_subscribers().max(1) as f64;
                println!(
                    "\non-disk store:     {} bytes in {} sections ({:.1} bytes/subscriber)",
                    reader.file_len(),
                    reader.sections().len(),
                    reader.file_len() as f64 / subs
                );
                for info in reader.sections() {
                    println!("  {:<18} {:>12} bytes", info.name, info.len);
                }
            }
            if let Some(k) = blast_radius {
                let tau = tau.expect("parser enforces --tau with --blast-radius");
                let mut cost = if effective {
                    Ec2CostModel::paper_effective(instance)
                } else {
                    Ec2CostModel::paper_default(instance)
                };
                if let Some((synth, paper)) = scale {
                    cost = cost.with_volume_scale(synth, paper);
                }
                let inst = McssInstance::new(workload, Rate::new(tau), cost.capacity())
                    .map_err(|e| e.to_string())?;
                let outcome = Solver::default()
                    .solve(&inst, &cost)
                    .map_err(|e| e.to_string())?;
                let profile = fragility_profile(&inst, &outcome.allocation);
                let mut ranked: Vec<(usize, usize)> = profile.iter().copied().enumerate().collect();
                // Starved-count descending, VM index ascending for ties.
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                println!(
                    "\nblast radius (top {} of {} VMs — subscribers starved if that VM dies):",
                    k.min(ranked.len()),
                    ranked.len()
                );
                for &(vm, starved) in ranked.iter().take(k) {
                    let m = &outcome.allocation.vms()[vm];
                    println!(
                        "  vm {vm:>4}: {starved:>6} starved  ({} pairs, {} bandwidth)",
                        m.pair_count(),
                        m.used()
                    );
                }
            }
            Ok(())
        }
        Command::Drill {
            trace,
            tau,
            kill,
            sla_pairs,
            max_epochs,
            instance,
            effective,
            scale,
        } => {
            let workload = load_trace(&trace)?;
            let mut cost = if effective {
                Ec2CostModel::paper_effective(instance)
            } else {
                Ec2CostModel::paper_default(instance)
            };
            if let Some((synth, paper)) = scale {
                cost = cost.with_volume_scale(synth, paper);
            }
            let inst = McssInstance::new(workload, Rate::new(tau), cost.capacity())
                .map_err(|e| e.to_string())?;
            let mut realloc = IncrementalReallocator::new(IncrementalConfig::default());
            let outcome = realloc.step(&inst, &cost).map_err(|e| e.to_string())?;
            let baseline = outcome.allocation;
            let baseline_delivered = baseline.delivered_rates(inst.workload());
            let kills = resolve_kill(&kill, baseline.vm_count());
            println!(
                "baseline: {} VMs, {} pairs; killing {:?}",
                baseline.vm_count(),
                baseline.pair_count(),
                kills
            );

            // Blast radius first — what the outage looks like before any
            // repair runs.
            let impact = fail_vms(&inst, &baseline, &kills);
            if !impact.invalid.is_empty() {
                println!("  kill list names missing VMs: {:?}", impact.invalid);
            }
            println!(
                "impact: {} VMs down, {} pairs lost, {} delivery volume lost, {} starved",
                impact.vms_failed,
                impact.pairs_lost,
                impact.volume_lost,
                impact.starved.len()
            );

            // Repair under the SLA budget, epoch by epoch.
            let budget = match sla_pairs {
                Some(pairs) => SlaBudget::pairs(pairs),
                None => SlaBudget::UNBOUNDED,
            };
            let mut fails: &[usize] = &kills;
            let mut epoch = 0u64;
            let healed = loop {
                epoch += 1;
                let report = realloc
                    .repair_failures(&inst, fails, budget)
                    .map_err(|e| e.to_string())?;
                fails = &[];
                println!(
                    "repair epoch {epoch}: +{} pairs ({} deferred, {} starved, shortfall {}), {:.2} ms",
                    report.pairs_replaced,
                    report.pairs_deferred,
                    report.starved.len(),
                    report.shortfall,
                    report.elapsed.as_secs_f64() * 1e3
                );
                if report.drained {
                    break report.allocation;
                }
                if epoch >= max_epochs {
                    return Err(format!(
                        "SLA budget left {} pairs unplaced after {max_epochs} epochs; raise \
                         --sla-pairs or --max-epochs",
                        report.pairs_deferred
                    ));
                }
            };

            // The drained repair must restore every subscriber to exactly
            // the satisfaction the fresh solve delivered.
            let healed_delivered = healed.delivered_rates(inst.workload());
            healed
                .validate(inst.workload(), inst.tau())
                .map_err(|e| format!("internal error — repaired fleet invalid: {e}"))?;
            if healed_delivered == baseline_delivered {
                println!(
                    "verdict: drained in {epoch} epochs; satisfaction bit-identical to the \
                     fresh solve ({} VMs vs {} before the drill)",
                    healed.vm_count(),
                    baseline.vm_count()
                );
                Ok(())
            } else {
                Err("repair drained but satisfaction diverged from the fresh solve".into())
            }
        }
        Command::Generate {
            family,
            size,
            seed,
            out,
        } => {
            let workload = match family.as_str() {
                "spotify" => SpotifyLike::new(size, seed).generate(),
                _ => TwitterLike::new(size, seed).generate(),
            };
            match out {
                Some(path) => {
                    let file = File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
                    write_workload(BufWriter::new(file), &workload).map_err(|e| e.to_string())?;
                    eprintln!(
                        "wrote {} topics / {} subscribers / {} pairs to {path}",
                        workload.num_topics(),
                        workload.num_subscribers(),
                        workload.pair_count()
                    );
                }
                None => {
                    let stdout = std::io::stdout();
                    write_workload(stdout.lock(), &workload).map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        Command::Ingest { trace, out } => {
            let parse_started = Instant::now();
            let workload = load_trace(&trace)?;
            let parse_ms = parse_started.elapsed().as_secs_f64() * 1e3;
            workload
                .to_store(Path::new(&out))
                .map_err(|e| format!("writing store {out}: {e}"))?;
            let reader = StoreReader::open(Path::new(&out))
                .map_err(|e| format!("verifying store {out}: {e}"))?;
            println!(
                "ingested {} topics / {} subscribers / {} pairs into {out}",
                workload.num_topics(),
                workload.num_subscribers(),
                workload.pair_count()
            );
            println!(
                "store: {} bytes in {} sections (trace parsed in {parse_ms:.1} ms; \
                 store loads skip that entirely)",
                reader.file_len(),
                reader.sections().len()
            );
            Ok(())
        }
        Command::Plan {
            trace,
            tau,
            mixed,
            effective,
            scale,
        } => {
            let workload = Arc::new(load_trace(&trace)?);
            let candidates = catalogue(effective, scale);
            let print_ranking = |report: &mcss_core::planner::PlannerReport| {
                for option in &report.ranked {
                    println!(
                        "{:<12} {} ({} VMs, {} bandwidth)",
                        option.name,
                        option.report.total_cost,
                        option.report.vm_count,
                        option.report.total_bandwidth
                    );
                }
                for (name, err) in &report.skipped {
                    println!("{name:<12} infeasible: {err}");
                }
            };
            if mixed {
                let fleet = FleetCostModel::new(candidates);
                let report = match plan_mixed(
                    Arc::clone(&workload),
                    Rate::new(tau),
                    &fleet,
                    Solver::default(),
                ) {
                    Ok(report) => report,
                    Err(e) => {
                        // The mixed solve only fails when even the largest
                        // tier cannot host a selected topic — every flavour
                        // is then individually infeasible too. Print the
                        // per-candidate diagnosis before bailing, like the
                        // plain plan does.
                        if let Ok(homogeneous) = plan_instance_type(
                            workload,
                            Rate::new(tau),
                            fleet.tiers(),
                            Solver::default(),
                        ) {
                            print_ranking(&homogeneous);
                        }
                        return Err(e.to_string());
                    }
                };
                print_ranking(&report.homogeneous);
                match report.homogeneous.best() {
                    Some(best) => println!(
                        "cheapest homogeneous: {} ({})",
                        best.name, best.report.total_cost
                    ),
                    None => println!("no single instance type can host this workload"),
                }
                println!(
                    "mixed fleet:          {} ({} VMs: {})",
                    report.mixed.report.total_cost,
                    report.mixed.report.vm_count,
                    report.mixed.report.mix
                );
                println!(
                    "mixed lower bound:    {} (gap {:.2}x)",
                    report.mixed.report.lower_bound_cost,
                    report.mixed.report.optimality_gap()
                );
                if let Some(savings) = report.savings() {
                    let best_cost = report
                        .homogeneous
                        .best()
                        .expect("savings imply a baseline")
                        .report
                        .total_cost;
                    if best_cost.is_zero() {
                        println!("mixed saves:          {savings}");
                    } else {
                        println!(
                            "mixed saves:          {savings} ({:.1}% of the homogeneous bill)",
                            100.0 * savings.as_dollars_f64() / best_cost.as_dollars_f64()
                        );
                    }
                }
                return Ok(());
            }
            let report =
                plan_instance_type(workload, Rate::new(tau), &candidates, Solver::default())
                    .map_err(|e| e.to_string())?;
            print_ranking(&report);
            let best = report
                .best()
                .ok_or_else(|| "no instance type can host this workload".to_string())?;
            println!("cheapest: {}", best.name);
            if let Some(spread) = report.spread() {
                println!("spread:   {spread}");
            }
            Ok(())
        }
        Command::Pack {
            trace,
            tau,
            instance,
            mixed,
            refine,
            export_lp: lp_path,
            effective,
            scale,
        } => {
            let workload = load_trace(&trace)?;
            if mixed {
                let fleet = FleetCostModel::new(catalogue(effective, scale));
                let inst = McssInstance::new(workload, Rate::new(tau), fleet.max_capacity())
                    .map_err(|e| e.to_string())?;
                let greedy = Solver::default()
                    .solve_mixed(&inst, &fleet)
                    .map_err(|e| e.to_string())?;
                let refined = Solver::new(SolverParams::default().with_refinement(refine))
                    .solve_mixed(&inst, &fleet)
                    .map_err(|e| e.to_string())?;
                refined
                    .allocation
                    .validate(inst.workload(), inst.tau())
                    .map_err(|e| format!("internal error — invalid refined allocation: {e}"))?;
                println!(
                    "greedy (mixed):  {} ({} VMs: {})",
                    greedy.report.total_cost, greedy.report.vm_count, greedy.report.mix
                );
                println!(
                    "refined:         {} ({} VMs: {})",
                    refined.report.total_cost, refined.report.vm_count, refined.report.mix
                );
                println!(
                    "lower bound:     {} (gap {:.2}x)",
                    refined.report.lower_bound_cost,
                    refined.report.optimality_gap()
                );
                if let Some(r) = &refined.refinement {
                    println!("refinement: {r}");
                }
                return Ok(());
            }
            let mut cost = if effective {
                Ec2CostModel::paper_effective(instance)
            } else {
                Ec2CostModel::paper_default(instance)
            };
            if let Some((synth, paper)) = scale {
                cost = cost.with_volume_scale(synth, paper);
            }
            let inst = McssInstance::new(workload, Rate::new(tau), cost.capacity())
                .map_err(|e| e.to_string())?;
            let greedy = Solver::default()
                .solve(&inst, &cost)
                .map_err(|e| e.to_string())?;
            let ffd = Solver::new(SolverParams {
                allocator: AllocatorKind::FirstFitDecreasing,
                ..SolverParams::default()
            })
            .solve(&inst, &cost)
            .map_err(|e| e.to_string())?;
            let refined = Solver::new(SolverParams::default().with_refinement(refine))
                .solve(&inst, &cost)
                .map_err(|e| e.to_string())?;
            refined
                .allocation
                .validate(inst.workload(), inst.tau())
                .map_err(|e| format!("internal error — invalid refined allocation: {e}"))?;
            println!(
                "greedy (CBP):  {} ({} VMs, {} bandwidth)",
                greedy.report.total_cost, greedy.report.vm_count, greedy.report.total_bandwidth
            );
            println!(
                "FFD:           {} ({} VMs, {} bandwidth)",
                ffd.report.total_cost, ffd.report.vm_count, ffd.report.total_bandwidth
            );
            println!(
                "refined:       {} ({} VMs, {} bandwidth)",
                refined.report.total_cost, refined.report.vm_count, refined.report.total_bandwidth
            );
            println!(
                "lower bound:   {} ({} VMs, {} volume)",
                refined.report.lower_bound_cost,
                refined.report.lower_bound_vms,
                refined.report.lower_bound_volume
            );
            if let Some(r) = &refined.refinement {
                println!("refinement: {r}");
            }
            if let Some(path) = lp_path {
                let lp = export_lp(
                    &inst,
                    &cost,
                    IlpOptions {
                        max_vms: greedy.report.vm_count,
                    },
                );
                std::fs::write(&path, lp).map_err(|e| format!("writing {path}: {e}"))?;
                println!("LP written to {path}");
            }
            Ok(())
        }
        Command::Reprovision {
            source,
            tau,
            instance,
            epochs,
            churn,
            sigma,
            drift_seed,
            fresh,
            threads,
            mixed,
            effective,
            scale,
            simulate,
        } => {
            let mut workload = load_source(&source)?;
            // In mixed mode the scalar cost model (largest tier) only
            // feeds the informational lower bound; epoch costs and
            // capacities come from the fleet.
            let fleet = mixed.then(|| FleetCostModel::new(catalogue(effective, scale)));
            let cost = match &fleet {
                Some(fleet) => fleet
                    .tiers()
                    .iter()
                    .max_by_key(|t| t.capacity())
                    .expect("catalogue is non-empty")
                    .clone(),
                None => {
                    let mut cost = if effective {
                        Ec2CostModel::paper_effective(instance)
                    } else {
                        Ec2CostModel::paper_default(instance)
                    };
                    if let Some((synth, paper)) = scale {
                        cost = cost.with_volume_scale(synth, paper);
                    }
                    cost
                }
            };
            let drift = DriftModel {
                rate_sigma: sigma,
                churn_prob: churn,
                seed: drift_seed,
            };
            let mut re = if fresh {
                Reprovisioner::new(Solver::default())
            } else {
                Reprovisioner::incremental(
                    Solver::default(),
                    IncrementalConfig::default().with_repair_threads(threads),
                )
            };
            if let Some(fleet) = &fleet {
                re = re.with_fleet(fleet.clone());
            }
            println!(
                "reprovisioning {} epochs ({}{}; churn {churn}, sigma {sigma}, seed {drift_seed})",
                epochs,
                if fresh {
                    "full re-solve per epoch"
                } else {
                    "incremental O(Δ) repair"
                },
                if mixed { ", mixed fleet" } else { "" }
            );
            let mut delta: Option<WorkloadDelta> = None;
            for epoch in 0..epochs {
                let inst = McssInstance::new(workload.clone(), Rate::new(tau), cost.capacity())
                    .map_err(|e| e.to_string())?;
                let r = re
                    .step_tracked(&inst, &cost, delta.as_ref())
                    .map_err(|e| format!("epoch {epoch}: {e}"))?;
                r.allocation
                    .validate(inst.workload(), inst.tau())
                    .map_err(|e| format!("internal error — invalid epoch {epoch}: {e}"))?;
                let mut line = format!(
                    "epoch {:>3}: {:>4} VMs ({:+}), cost {}, moved {} pairs, reused {}{}",
                    r.epoch,
                    r.report.vm_count,
                    r.vm_delta,
                    r.report.total_cost,
                    r.pairs_moved,
                    r.pairs_reused,
                    if r.full_resolve { " [full solve]" } else { "" },
                );
                if let Some(typing) = r.allocation.typing() {
                    line.push_str(&format!(", fleet {}", typing.mix()));
                }
                if simulate {
                    let sim =
                        Simulation::new(SimConfig::default()).run(inst.workload(), &r.allocation);
                    let ok = sim.all_satisfied(inst.workload(), inst.tau());
                    line.push_str(if ok {
                        ", sim: satisfied"
                    } else {
                        ", sim: VIOLATED"
                    });
                }
                println!("{line}");
                if epoch + 1 < epochs {
                    let (next, d) = drift.evolve_tracked(&workload, epoch);
                    workload = next;
                    delta = Some(d);
                }
            }
            println!(
                "cumulative cost over {} epochs: {}",
                re.epochs(),
                re.cumulative_cost()
            );
            Ok(())
        }
        Command::Solve {
            source,
            tau,
            instance,
            selector,
            allocator,
            shards,
            threads,
            partitioner,
            refine,
            effective,
            scale,
            simulate,
        } => {
            let workload = load_source(&source)?;
            let mut cost = if effective {
                Ec2CostModel::paper_effective(instance)
            } else {
                Ec2CostModel::paper_default(instance)
            };
            if let Some((synth, paper)) = scale {
                cost = cost.with_volume_scale(synth, paper);
            }
            let mcss_instance = McssInstance::new(workload, Rate::new(tau), cost.capacity())
                .map_err(|e| e.to_string())?;
            // --threads without sharding parallelizes Stage 1 in place
            // (only the greedy selector has a parallel variant).
            let selector = match (shards, threads, selector) {
                (0 | 1, t, SelectorKind::Greedy) if t > 1 => {
                    SelectorKind::GreedyParallel { threads: t }
                }
                (_, _, s) => s,
            };
            let sharding = (shards > 1).then(|| {
                ShardingConfig::new(shards)
                    .with_threads(threads)
                    .with_partitioner(partitioner)
            });
            let solver = Solver::new(SolverParams {
                selector,
                allocator,
                sharding,
                refine,
            });
            let outcome = solver
                .solve(&mcss_instance, &cost)
                .map_err(|e| e.to_string())?;
            outcome
                .allocation
                .validate(mcss_instance.workload(), mcss_instance.tau())
                .map_err(|e| format!("internal error — invalid allocation: {e}"))?;
            println!("{}", outcome.report);
            if let Some(r) = &outcome.refinement {
                println!("refinement: {r}");
            }
            println!(
                "bandwidth at full scale: {:.2} GB",
                cost.volume_to_gb(outcome.report.total_bandwidth)
            );
            if simulate {
                let report = Simulation::new(SimConfig::default())
                    .run(mcss_instance.workload(), &outcome.allocation);
                println!("\nsimulation:\n{report}");
                let ok = report.all_satisfied(mcss_instance.workload(), mcss_instance.tau());
                println!(
                    "operational satisfaction: {}",
                    if ok {
                        "all subscribers satisfied"
                    } else {
                        "VIOLATED"
                    }
                );
                let _ = cost.total_cost(outcome.report.vm_count, outcome.report.total_bandwidth);
            }
            Ok(())
        }
        Command::Serve {
            family,
            store,
            size,
            seed,
            tau,
            instance,
            epochs,
            epoch_events,
            epoch_ms,
            churn,
            sigma,
            drift_seed,
            dir,
            snapshot_every,
            threads,
            resume,
            drill,
            repair_budget,
            compact_every,
            compact_steps,
            sync_retries,
            retry_backoff_ms,
            effective,
            scale,
            summary,
            simulate,
        } => {
            let mut cost = if effective {
                Ec2CostModel::paper_effective(instance)
            } else {
                Ec2CostModel::paper_default(instance)
            };
            if let Some((synth, paper)) = scale {
                cost = cost.with_volume_scale(synth, paper);
            }
            let capacity = cost.capacity();
            let state_dir = dir.map(PathBuf::from).unwrap_or_else(|| {
                std::env::temp_dir().join(format!("mcss-serve-{}", std::process::id()))
            });
            let mut config = ServeConfig::new(Rate::new(tau), capacity)
                .with_snapshot_every(snapshot_every)
                .with_threads(threads)
                .with_sync_retries(sync_retries, retry_backoff_ms);
            if let Some(events) = epoch_events {
                config = config.with_epoch_events(events);
            }
            if let Some(pairs) = repair_budget {
                config = config.with_repair_budget(pairs);
            }
            if let Some(every) = compact_every {
                config = config.with_compaction(every, compact_steps);
            }
            let cost_box: Box<dyn CostModel> = Box::new(cost);
            let mut daemon = if resume {
                Daemon::resume(&state_dir, config, cost_box)
            } else {
                Daemon::create(&state_dir, config, cost_box)
            }
            .map_err(|e| e.to_string())?;
            if resume {
                println!(
                    "recovered {} applied epochs, {} pending events from {}",
                    daemon.epochs_applied(),
                    daemon.pending_events(),
                    state_dir.display()
                );
            }

            // The stream label doubles as the summary JSON's "trace".
            let (initial, label) = match (&store, family.as_deref()) {
                (Some(path), _) => (
                    Workload::from_store(Path::new(path))
                        .map_err(|e| format!("loading store {path}: {e}"))?,
                    format!("store:{path}"),
                ),
                (None, Some("spotify")) => {
                    (SpotifyLike::new(size, seed).generate(), "spotify".into())
                }
                (None, _) => (TwitterLike::new(size, seed).generate(), "twitter".into()),
            };
            let size = if store.is_some() {
                initial.num_subscribers()
            } else {
                size
            };
            let mut driver = Driver::new(
                initial,
                DriftModel {
                    rate_sigma: sigma,
                    churn_prob: churn,
                    seed: drift_seed,
                },
            );
            println!(
                "serving {epochs} {label} drift batches (tau {tau}, capacity {}, state {})",
                capacity.get(),
                state_dir.display()
            );

            // A resumed daemon has already absorbed a prefix of the
            // deterministic driver stream: whole batches in per-batch
            // mode, an exact event count in watermark mode. Skip it.
            let mut skip_events = match (resume, epoch_events) {
                (true, Some(watermark)) => {
                    daemon.epochs_applied() * watermark + daemon.pending_events()
                }
                _ => 0,
            };
            let skip_batches = if resume && epoch_events.is_none() {
                daemon.epochs_applied()
            } else {
                0
            };

            let mut stats: Vec<EpochStats> = Vec::new();
            let mut total_events = 0u64;
            let started = Instant::now();
            let mut last_tick = Instant::now();
            for batch_index in 0..epochs {
                let events = if batch_index == 0 {
                    driver.initial_events()
                } else {
                    driver.next_epoch_events()
                };
                if batch_index < skip_batches {
                    continue; // the driver still had to advance its RNG
                }
                for event in events {
                    if skip_events > 0 {
                        skip_events -= 1;
                        continue;
                    }
                    total_events += 1;
                    if let Some(s) = daemon.submit(event).map_err(|e| e.to_string())? {
                        print_epoch(&s);
                        stats.push(s);
                    }
                }
                // Scheduled failure drills land after the batch's drift
                // events, so the kill and its budgeted repair fold into
                // this epoch.
                for (epoch_at, spec) in &drill {
                    if *epoch_at != batch_index {
                        continue;
                    }
                    let fleet = daemon.allocation().map(|a| a.vm_count()).unwrap_or(0);
                    let kills = resolve_kill(spec, fleet);
                    println!("drill at batch {batch_index}: killing VMs {kills:?}");
                    for slot in kills {
                        total_events += 1;
                        if let Some(s) = daemon
                            .submit(Event::VmFail { slot: slot as u32 })
                            .map_err(|e| e.to_string())?
                        {
                            print_epoch(&s);
                            stats.push(s);
                        }
                    }
                }
                match (epoch_events, epoch_ms) {
                    (Some(_), _) => {} // the watermark closes epochs
                    (None, Some(ms)) => {
                        if last_tick.elapsed().as_millis() as u64 >= ms {
                            if let Some(s) = daemon.tick().map_err(|e| e.to_string())? {
                                print_epoch(&s);
                                stats.push(s);
                            }
                            last_tick = Instant::now();
                        }
                    }
                    (None, None) => {
                        if let Some(s) = daemon.tick().map_err(|e| e.to_string())? {
                            print_epoch(&s);
                            stats.push(s);
                        }
                    }
                }
            }
            // Flush whatever is still buffered in the final epoch.
            if let Some(s) = daemon.tick().map_err(|e| e.to_string())? {
                print_epoch(&s);
                stats.push(s);
            }
            // A tight --repair-budget can leave orphans queued past the
            // last batch; keep closing repair-only epochs until healed.
            while daemon.pending_repairs() > 0 {
                match daemon.tick().map_err(|e| e.to_string())? {
                    Some(s) => {
                        print_epoch(&s);
                        stats.push(s);
                    }
                    None => break,
                }
            }
            let elapsed = started.elapsed();

            if let Some(allocation) = daemon.allocation() {
                let workload = daemon.workload().expect("an allocation implies a workload");
                allocation
                    .validate(workload, Rate::new(tau))
                    .map_err(|e| format!("internal error — invalid allocation: {e}"))?;
                if simulate {
                    let report = Simulation::new(SimConfig::default()).run(workload, &allocation);
                    let ok = report.all_satisfied(workload, Rate::new(tau));
                    println!(
                        "simulation: {}",
                        if ok {
                            "all subscribers satisfied"
                        } else {
                            "VIOLATED"
                        }
                    );
                }
            }
            let events_per_sec = total_events as f64 / elapsed.as_secs_f64().max(1e-9);
            println!(
                "served {} epochs / {} events in {:.2}s ({:.0} events/s); state in {}",
                stats.len(),
                total_events,
                elapsed.as_secs_f64(),
                events_per_sec,
                state_dir.display()
            );

            if let Some(path) = summary {
                let mut apply_ms: Vec<f64> = stats
                    .iter()
                    .map(|s| s.apply_time.as_secs_f64() * 1e3)
                    .collect();
                apply_ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
                let pct = |p: f64| -> f64 {
                    if apply_ms.is_empty() {
                        0.0
                    } else {
                        apply_ms[(((apply_ms.len() - 1) as f64) * p).round() as usize]
                    }
                };
                let compaction_moves: u64 = stats.iter().map(|s| s.compaction_moves).sum();
                let json = format!(
                    "{{\n  \"trace\": \"{label}\",\n  \"subscribers\": {size},\n  \
                     \"epochs\": {},\n  \"events\": {total_events},\n  \
                     \"duration_s\": {:.3},\n  \"events_per_sec\": {events_per_sec:.1},\n  \
                     \"apply_ms_p50\": {:.3},\n  \"apply_ms_p99\": {:.3},\n  \
                     \"compaction_moves\": {compaction_moves},\n  \
                     \"final_vms\": {},\n  \"final_cost\": \"{}\",\n  \"resumed\": {resume}\n}}\n",
                    stats.len(),
                    elapsed.as_secs_f64(),
                    pct(0.5),
                    pct(0.99),
                    stats.last().map(|s| s.vm_count).unwrap_or(0),
                    stats
                        .last()
                        .map(|s| s.fleet_cost.to_string())
                        .unwrap_or_default(),
                );
                std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
                println!("summary written to {path}");
            }
            Ok(())
        }
    }
}

/// One stdout line per applied epoch, shared by every serve mode.
fn print_epoch(s: &EpochStats) {
    let repair = if s.vms_failed > 0 || s.pairs_repaired > 0 || s.repair_deferred > 0 {
        format!(
            " [{} VMs failed, {} pairs repaired, {} deferred]",
            s.vms_failed, s.pairs_repaired, s.repair_deferred
        )
    } else {
        String::new()
    };
    let compaction = if s.compaction_moves > 0 {
        format!(
            " [compacted: {} moves, saved {}]",
            s.compaction_moves, s.compaction_saved
        )
    } else {
        String::new()
    };
    println!(
        "epoch {:>3}: {:>5} events, {:>4} VMs, cost {}, +{} -{} pairs (evicted {}, reused {}), {:.2} ms{}{}{compaction}",
        s.epoch,
        s.events_applied,
        s.vm_count,
        s.fleet_cost,
        s.pairs_placed,
        s.pairs_removed,
        s.pairs_evicted,
        s.pairs_reused,
        s.apply_time.as_secs_f64() * 1e3,
        if s.full_resolve { " [full solve]" } else { "" },
        repair,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("try `mcss help`");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, String> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn solve_defaults_and_flags() {
        let cmd = parse(&[
            "solve",
            "t.tsv",
            "--tau",
            "100",
            "--instance",
            "c3.xlarge",
            "--effective",
            "--scale",
            "100/4900",
            "--simulate",
        ])
        .unwrap();
        match cmd {
            Command::Solve {
                source,
                tau,
                instance,
                effective,
                scale,
                simulate,
                ..
            } => {
                assert_eq!(source, WorkloadSource::Trace("t.tsv".into()));
                assert_eq!(tau, 100);
                assert_eq!(instance.name(), "c3.xlarge");
                assert!(effective);
                assert_eq!(scale, Some((100, 4900)));
                assert!(simulate);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn solve_requires_tau() {
        let err = parse(&["solve", "t.tsv"]).unwrap_err();
        assert!(err.contains("--tau"));
    }

    #[test]
    fn store_source_parses_everywhere() {
        for cmd in ["solve", "reprovision", "analyze"] {
            // --store replaces the positional trace path.
            let parsed = if cmd == "analyze" {
                parse(&[cmd, "--store", "w.mcss"])
            } else {
                parse(&[cmd, "--store", "w.mcss", "--tau", "10"])
            }
            .unwrap_or_else(|e| panic!("{cmd} --store failed: {e}"));
            let source = match parsed {
                Command::Solve { source, .. }
                | Command::Reprovision { source, .. }
                | Command::Analyze { source, .. } => source,
                other => panic!("parsed {other:?}"),
            };
            assert_eq!(source, WorkloadSource::Store("w.mcss".into()));
            // Both sources at once is ambiguous; neither is missing input.
            let err = parse(&[cmd, "t.tsv", "--store", "w.mcss", "--tau", "10"]).unwrap_err();
            assert!(err.contains("not both"), "{cmd}: {err}");
            let err = if cmd == "analyze" {
                parse(&[cmd])
            } else {
                parse(&[cmd, "--tau", "10"])
            }
            .unwrap_err();
            assert!(err.contains("--store"), "{cmd}: {err}");
        }
    }

    #[test]
    fn serve_store_replaces_the_trace_family() {
        let cmd = parse(&["serve", "--store", "w.mcss", "--epochs", "2"]).unwrap();
        match cmd {
            Command::Serve { family, store, .. } => {
                assert_eq!(family, None);
                assert_eq!(store, Some("w.mcss".into()));
            }
            other => panic!("parsed {other:?}"),
        }
        let err = parse(&["serve", "--trace", "spotify", "--store", "w.mcss"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "unexpected: {err}");
        let err = parse(&["serve", "--epochs", "2"]).unwrap_err();
        assert!(err.contains("--store"), "unexpected: {err}");
    }

    #[test]
    fn ingest_parses_and_requires_out() {
        let cmd = parse(&["ingest", "t.tsv", "--out", "w.mcss"]).unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                trace: "t.tsv".into(),
                out: "w.mcss".into()
            }
        );
        assert!(parse(&["ingest", "t.tsv"]).unwrap_err().contains("--out"));
        assert!(parse(&["ingest"]).is_err());
        assert!(parse(&["ingest", "t.tsv", "--out", "w.mcss", "--frob"]).is_err());
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "1", "--selector", "magic"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "1", "--instance", "m1.tiny"]).is_err());
        assert!(parse(&["generate", "facebook"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "xyz"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "1", "--scale", "5"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "1", "--scale", "0/5"]).is_err());
    }

    #[test]
    fn generate_parses() {
        let cmd = parse(&[
            "generate", "twitter", "--size", "500", "--seed", "9", "--out", "x.tsv",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                family: "twitter".into(),
                size: 500,
                seed: 9,
                out: Some("x.tsv".into())
            }
        );
    }

    #[test]
    fn end_to_end_generate_and_solve_via_tempfile() {
        let dir = std::env::temp_dir().join("mcss-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tsv");
        run(Command::Generate {
            family: "spotify".into(),
            size: 300,
            seed: 3,
            out: Some(path.display().to_string()),
        })
        .unwrap();
        run(Command::Analyze {
            source: WorkloadSource::Trace(path.display().to_string()),
            blast_radius: None,
            tau: None,
            instance: instances::C3_LARGE,
            effective: false,
            scale: None,
        })
        .unwrap();
        run(Command::Analyze {
            source: WorkloadSource::Trace(path.display().to_string()),
            blast_radius: Some(3),
            tau: Some(50),
            instance: instances::C3_LARGE,
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        // Ingest the trace into a store and drive the same commands
        // from it — the store path must be a drop-in replacement.
        let store = dir.join("trace.mcss");
        run(Command::Ingest {
            trace: path.display().to_string(),
            out: store.display().to_string(),
        })
        .unwrap();
        run(Command::Analyze {
            source: WorkloadSource::Store(store.display().to_string()),
            blast_radius: None,
            tau: None,
            instance: instances::C3_LARGE,
            effective: false,
            scale: None,
        })
        .unwrap();
        // A gentle scale ratio: at 300/4.9M the effective capacity would
        // shrink below a single loud topic's pair cost (the scale
        // artifact DESIGN.md §3 describes — the Scenario harness clamps
        // for that; the raw CLI intentionally does not).
        run(Command::Solve {
            source: WorkloadSource::Store(store.display().to_string()),
            tau: 50,
            instance: instances::C3_LARGE,
            selector: SelectorKind::Greedy,
            allocator: AllocatorKind::custom_full(),
            shards: 1,
            threads: 0,
            partitioner: PartitionerKind::default(),
            refine: None,
            effective: true,
            scale: Some((300, 100_000)),
            simulate: true,
        })
        .unwrap();
        // The same trace again, shard-parallel, and ranked by the planner.
        run(Command::Solve {
            source: WorkloadSource::Trace(path.display().to_string()),
            tau: 50,
            instance: instances::C3_LARGE,
            selector: SelectorKind::Greedy,
            allocator: AllocatorKind::custom_full(),
            shards: 4,
            threads: 2,
            partitioner: PartitionerKind::Hash { seed: 42 },
            refine: Some(SearchBudget::steps(256)),
            effective: true,
            scale: Some((300, 100_000)),
            simulate: true,
        })
        .unwrap();
        run(Command::Plan {
            trace: path.display().to_string(),
            tau: 50,
            mixed: false,
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        run(Command::Plan {
            trace: path.display().to_string(),
            tau: 50,
            mixed: true,
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_flags_parse_and_validate() {
        let cmd = parse(&[
            "solve",
            "t.tsv",
            "--tau",
            "10",
            "--shards",
            "4",
            "--threads",
            "2",
            "--partitioner",
            "hash",
        ])
        .unwrap();
        match cmd {
            Command::Solve {
                shards,
                threads,
                partitioner,
                ..
            } => {
                assert_eq!(shards, 4);
                assert_eq!(threads, 2);
                assert_eq!(partitioner, PartitionerKind::Hash { seed: 42 });
            }
            other => panic!("parsed {other:?}"),
        }
        let err = parse(&["solve", "t.tsv", "--tau", "10", "--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "unexpected: {err}");
        assert!(parse(&["solve", "t.tsv", "--tau", "10", "--threads", "0"]).is_err());
        assert!(parse(&["solve", "t.tsv", "--tau", "10", "--partitioner", "magic"]).is_err());
    }

    #[test]
    fn refine_budget_grammar() {
        assert_eq!(parse_budget("500").unwrap(), SearchBudget::steps(500));
        assert_eq!(
            parse_budget("100ms").unwrap(),
            SearchBudget::time(std::time::Duration::from_millis(100))
        );
        assert_eq!(
            parse_budget("2s").unwrap(),
            SearchBudget::time(std::time::Duration::from_secs(2))
        );
        assert!(parse_budget("0ms").is_err());
        assert!(parse_budget("0s").is_err());
        assert!(parse_budget("fast").is_err());
        // A zero step budget is legal: an explicit no-op refinement.
        assert_eq!(parse_budget("0").unwrap(), SearchBudget::steps(0));

        let cmd = parse(&["solve", "t.tsv", "--tau", "10", "--refine", "64"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Solve {
                refine: Some(b),
                ..
            } if b == SearchBudget::steps(64)
        ));
        assert!(parse(&["solve", "t.tsv", "--tau", "10", "--refine"]).is_err());
    }

    #[test]
    fn pack_parses_and_validates() {
        let cmd = parse(&["pack", "t.tsv", "--tau", "100"]).unwrap();
        match cmd {
            Command::Pack {
                trace,
                tau,
                mixed,
                refine,
                export_lp,
                ..
            } => {
                assert_eq!(trace, "t.tsv");
                assert_eq!(tau, 100);
                assert!(!mixed);
                assert_eq!(refine, SearchBudget::UNBOUNDED);
                assert_eq!(export_lp, None);
            }
            other => panic!("parsed {other:?}"),
        }
        let cmd = parse(&[
            "pack",
            "t.tsv",
            "--tau",
            "100",
            "--refine",
            "100ms",
            "--export-lp",
            "prog.lp",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Pack {
                export_lp: Some(ref p),
                ..
            } if p == "prog.lp"
        ));
        assert!(parse(&["pack", "t.tsv"]).unwrap_err().contains("--tau"));
        // The LP formulation is homogeneous-only.
        let err = parse(&[
            "pack",
            "t.tsv",
            "--tau",
            "1",
            "--mixed",
            "--export-lp",
            "p.lp",
        ])
        .unwrap_err();
        assert!(err.contains("--export-lp"), "unexpected: {err}");
        assert!(parse(&["pack", "t.tsv", "--tau", "1", "--frob"]).is_err());
    }

    #[test]
    fn pack_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mcss-cli-pack-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.tsv");
        let lp = dir.join("prog.lp");
        run(Command::Generate {
            family: "spotify".into(),
            size: 300,
            seed: 3,
            out: Some(trace.display().to_string()),
        })
        .unwrap();
        run(Command::Pack {
            trace: trace.display().to_string(),
            tau: 50,
            instance: instances::C3_LARGE,
            mixed: false,
            refine: SearchBudget::steps(512),
            export_lp: Some(lp.display().to_string()),
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        let program = std::fs::read_to_string(&lp).unwrap();
        assert!(program.starts_with("\\ MCSS integer program"));
        assert!(program.contains("Minimize"));
        run(Command::Pack {
            trace: trace.display().to_string(),
            tau: 50,
            instance: instances::C3_LARGE,
            mixed: true,
            refine: SearchBudget::steps(512),
            export_lp: None,
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_compaction_flags_parse_and_validate() {
        let cmd = parse(&[
            "serve",
            "--trace",
            "spotify",
            "--compact-every",
            "4",
            "--compact-steps",
            "128",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                compact_every: Some(4),
                compact_steps: 128,
                ..
            }
        ));
        // Defaults: compaction off, 2048 steps when enabled bare.
        let cmd = parse(&["serve", "--trace", "spotify"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                compact_every: None,
                compact_steps: 2_048,
                ..
            }
        ));
        assert!(parse(&["serve", "--trace", "spotify", "--compact-every", "0"]).is_err());
        assert!(parse(&[
            "serve",
            "--trace",
            "spotify",
            "--compact-every",
            "4",
            "--compact-steps",
            "0"
        ])
        .is_err());
        assert!(parse(&["serve", "--trace", "spotify", "--compact-steps", "64"]).is_err());
    }

    #[test]
    fn reprovision_parses_and_validates() {
        let cmd = parse(&[
            "reprovision",
            "t.tsv",
            "--tau",
            "50",
            "--epochs",
            "3",
            "--churn",
            "0.25",
            "--sigma",
            "0.2",
            "--drift-seed",
            "9",
            "--threads",
            "4",
            "--fresh",
            "--simulate",
        ])
        .unwrap();
        match cmd {
            Command::Reprovision {
                source,
                tau,
                epochs,
                churn,
                sigma,
                drift_seed,
                fresh,
                threads,
                simulate,
                ..
            } => {
                assert_eq!(source, WorkloadSource::Trace("t.tsv".into()));
                assert_eq!(tau, 50);
                assert_eq!(epochs, 3);
                assert_eq!(churn, 0.25);
                assert_eq!(sigma, 0.2);
                assert_eq!(drift_seed, 9);
                assert!(fresh);
                assert_eq!(threads, 4);
                assert!(simulate);
            }
            other => panic!("parsed {other:?}"),
        }
        let cmd = parse(&["reprovision", "t.tsv", "--tau", "5", "--mixed"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Reprovision {
                mixed: true,
                threads: 1,
                ..
            }
        ));
        assert!(parse(&["reprovision", "t.tsv"])
            .unwrap_err()
            .contains("--tau"));
        assert!(parse(&["reprovision", "t.tsv", "--tau", "1", "--epochs", "0"]).is_err());
        assert!(parse(&["reprovision", "t.tsv", "--tau", "1", "--churn", "1.5"]).is_err());
        assert!(parse(&["reprovision", "t.tsv", "--tau", "1", "--sigma", "-0.1"]).is_err());
        assert!(parse(&["reprovision", "t.tsv", "--tau", "1", "--threads", "0"]).is_err());
    }

    #[test]
    fn reprovision_runs_end_to_end() {
        let dir = std::env::temp_dir().join("mcss-cli-reprovision-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tsv");
        run(Command::Generate {
            family: "spotify".into(),
            size: 250,
            seed: 4,
            out: Some(path.display().to_string()),
        })
        .unwrap();
        for fresh in [false, true] {
            for mixed in [false, true] {
                run(Command::Reprovision {
                    source: WorkloadSource::Trace(path.display().to_string()),
                    tau: 40,
                    instance: instances::C3_LARGE,
                    epochs: 3,
                    churn: 0.3,
                    sigma: 0.0,
                    drift_seed: 11,
                    fresh,
                    threads: 2,
                    mixed,
                    effective: true,
                    scale: Some((250, 100_000)),
                    simulate: true,
                })
                .unwrap();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_parses_and_requires_tau() {
        let cmd = parse(&["plan", "t.tsv", "--tau", "25", "--effective"]).unwrap();
        assert_eq!(
            cmd,
            Command::Plan {
                trace: "t.tsv".into(),
                tau: 25,
                mixed: false,
                effective: true,
                scale: None,
            }
        );
        let cmd = parse(&["plan", "t.tsv", "--tau", "25", "--mixed"]).unwrap();
        assert!(matches!(cmd, Command::Plan { mixed: true, .. }));
        assert!(parse(&["plan", "t.tsv"]).unwrap_err().contains("--tau"));
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let cmd = parse(&[
            "serve",
            "--trace",
            "spotify",
            "--size",
            "500",
            "--tau",
            "30",
            "--epochs",
            "4",
            "--epoch-events",
            "64",
            "--snapshot-every",
            "2",
            "--threads",
            "3",
            "--dir",
            "/tmp/d",
            "--summary",
            "s.json",
            "--simulate",
        ])
        .unwrap();
        match cmd {
            Command::Serve {
                family,
                size,
                tau,
                epochs,
                epoch_events,
                snapshot_every,
                threads,
                dir,
                summary,
                simulate,
                resume,
                ..
            } => {
                assert_eq!(family.as_deref(), Some("spotify"));
                assert_eq!(size, 500);
                assert_eq!(tau, 30);
                assert_eq!(epochs, 4);
                assert_eq!(epoch_events, Some(64));
                assert_eq!(snapshot_every, 2);
                assert_eq!(threads, 3);
                assert_eq!(dir.as_deref(), Some("/tmp/d"));
                assert_eq!(summary.as_deref(), Some("s.json"));
                assert!(simulate && !resume);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["serve"]).unwrap_err().contains("--trace"));
        assert!(parse(&["serve", "--trace", "spotify", "--threads", "0"]).is_err());
        assert!(parse(&["serve", "--trace", "mastodon"]).is_err());
        let err = parse(&["serve", "--trace", "spotify", "--epoch-events", "0"]).unwrap_err();
        assert!(err.contains("--epoch-events must be positive"));
        assert!(parse(&[
            "serve",
            "--trace",
            "spotify",
            "--epoch-events",
            "5",
            "--epoch-ms",
            "10"
        ])
        .is_err());
        assert!(parse(&["serve", "--trace", "spotify", "--resume"])
            .unwrap_err()
            .contains("--dir"));
        assert!(parse(&[
            "serve",
            "--trace",
            "spotify",
            "--resume",
            "--dir",
            "d",
            "--epoch-ms",
            "5"
        ])
        .is_err());
        assert!(parse(&["serve", "--trace", "spotify", "--epochs", "0"]).is_err());
    }

    #[test]
    fn serve_runs_and_resumes_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mcss-cli-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state");
        let summary = dir.join("summary.json");
        run(Command::Serve {
            family: Some("spotify".into()),
            store: None,
            size: 250,
            seed: 4,
            tau: 40,
            instance: instances::C3_LARGE,
            epochs: 3,
            epoch_events: None,
            epoch_ms: None,
            churn: 0.2,
            sigma: 0.1,
            drift_seed: 7,
            dir: Some(state.display().to_string()),
            snapshot_every: 1,
            threads: 2,
            resume: false,
            drill: Vec::new(),
            repair_budget: None,
            compact_every: Some(2),
            compact_steps: 512,
            sync_retries: 0,
            retry_backoff_ms: 0,
            effective: true,
            scale: Some((250, 100_000)),
            summary: Some(summary.display().to_string()),
            simulate: true,
        })
        .unwrap();
        let json = std::fs::read_to_string(&summary).unwrap();
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"epochs\": 3"));
        // Recover from the state directory and stream two more batches.
        run(Command::Serve {
            family: Some("spotify".into()),
            store: None,
            size: 250,
            seed: 4,
            tau: 40,
            instance: instances::C3_LARGE,
            epochs: 5,
            epoch_events: None,
            epoch_ms: None,
            churn: 0.2,
            sigma: 0.1,
            drift_seed: 7,
            // Resuming with a different repair thread count is legal —
            // threads is a runtime knob, not part of the snapshot.
            dir: Some(state.display().to_string()),
            snapshot_every: 1,
            threads: 1,
            resume: true,
            drill: Vec::new(),
            repair_budget: None,
            compact_every: Some(2),
            compact_steps: 512,
            sync_retries: 0,
            retry_backoff_ms: 0,
            effective: true,
            scale: Some((250, 100_000)),
            summary: Some(summary.display().to_string()),
            simulate: true,
        })
        .unwrap();
        let json = std::fs::read_to_string(&summary).unwrap();
        assert!(json.contains("\"resumed\": true"));
        assert!(
            json.contains("\"epochs\": 2"),
            "resume applies only the new batches: {json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_trace_file_is_reported() {
        let err = run(Command::Analyze {
            source: WorkloadSource::Trace("/definitely/not/here.tsv".into()),
            blast_radius: None,
            tau: None,
            instance: instances::C3_LARGE,
            effective: false,
            scale: None,
        })
        .unwrap_err();
        assert!(err.contains("opening"));
    }

    #[test]
    fn kill_spec_grammar() {
        assert_eq!(parse_kill("0,3,9").unwrap(), KillSpec::List(vec![0, 3, 9]));
        assert_eq!(
            parse_kill("0-7").unwrap(),
            KillSpec::List((0..=7).collect())
        );
        assert_eq!(
            parse_kill("1,4-6,9").unwrap(),
            KillSpec::List(vec![1, 4, 5, 6, 9])
        );
        assert_eq!(parse_kill("20%").unwrap(), KillSpec::Percent(20));
        assert!(parse_kill("5-3").unwrap_err().contains("backwards"));
        assert!(parse_kill("0%").is_err());
        assert!(parse_kill("150%").is_err());
        assert!(parse_kill("").is_err());
        assert!(parse_kill("a,b").is_err());

        assert_eq!(resolve_kill(&KillSpec::List(vec![2, 5]), 4), vec![2, 5]);
        assert_eq!(resolve_kill(&KillSpec::Percent(20), 10), vec![0, 1]);
        // Shares round up: 20% of a 3-VM fleet is still one whole VM.
        assert_eq!(resolve_kill(&KillSpec::Percent(20), 3), vec![0]);
        assert_eq!(resolve_kill(&KillSpec::Percent(100), 2), vec![0, 1]);
        assert!(resolve_kill(&KillSpec::Percent(50), 0).is_empty());
    }

    #[test]
    fn drill_parses_and_validates() {
        let cmd = parse(&[
            "drill",
            "t.tsv",
            "--tau",
            "40",
            "--kill",
            "0-3",
            "--sla-pairs",
            "100",
            "--max-epochs",
            "8",
            "--effective",
        ])
        .unwrap();
        match cmd {
            Command::Drill {
                trace,
                tau,
                kill,
                sla_pairs,
                max_epochs,
                effective,
                ..
            } => {
                assert_eq!(trace, "t.tsv");
                assert_eq!(tau, 40);
                assert_eq!(kill, KillSpec::List(vec![0, 1, 2, 3]));
                assert_eq!(sla_pairs, Some(100));
                assert_eq!(max_epochs, 8);
                assert!(effective);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["drill", "t.tsv", "--kill", "0"])
            .unwrap_err()
            .contains("--tau"));
        assert!(parse(&["drill", "t.tsv", "--tau", "5"])
            .unwrap_err()
            .contains("--kill"));
        assert!(parse(&[
            "drill",
            "t.tsv",
            "--tau",
            "5",
            "--kill",
            "0",
            "--sla-pairs",
            "0"
        ])
        .is_err());
        assert!(parse(&["drill", "t.tsv", "--tau", "5", "--kill", "7-2"]).is_err());
    }

    #[test]
    fn serve_drill_flags_parse_and_validate() {
        let cmd = parse(&[
            "serve",
            "--trace",
            "spotify",
            "--drill",
            "5:20%;2:0-3",
            "--repair-budget",
            "50",
            "--sync-retries",
            "2",
            "--retry-backoff-ms",
            "10",
        ])
        .unwrap();
        match cmd {
            Command::Serve {
                drill,
                repair_budget,
                sync_retries,
                retry_backoff_ms,
                ..
            } => {
                // Schedule comes back sorted by epoch.
                assert_eq!(
                    drill,
                    vec![
                        (2, KillSpec::List(vec![0, 1, 2, 3])),
                        (5, KillSpec::Percent(20)),
                    ]
                );
                assert_eq!(repair_budget, Some(50));
                assert_eq!(sync_retries, 2);
                assert_eq!(retry_backoff_ms, 10);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["serve", "--trace", "spotify", "--drill", "nope"]).is_err());
        assert!(parse(&["serve", "--trace", "spotify", "--repair-budget", "0"]).is_err());
        assert!(parse(&[
            "serve", "--trace", "spotify", "--resume", "--dir", "d", "--drill", "1:0"
        ])
        .unwrap_err()
        .contains("--resume"));
    }

    #[test]
    fn analyze_blast_radius_parses_and_validates() {
        let cmd = parse(&[
            "analyze",
            "t.tsv",
            "--blast-radius",
            "5",
            "--tau",
            "40",
            "--effective",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Analyze {
                blast_radius: Some(5),
                tau: Some(40),
                effective: true,
                ..
            }
        ));
        assert!(parse(&["analyze", "t.tsv", "--blast-radius", "5"])
            .unwrap_err()
            .contains("--tau"));
        assert!(parse(&["analyze", "t.tsv", "--blast-radius", "0"]).is_err());
    }

    #[test]
    fn drill_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mcss-cli-drill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tsv");
        run(Command::Generate {
            family: "spotify".into(),
            size: 300,
            seed: 3,
            out: Some(path.display().to_string()),
        })
        .unwrap();
        // Unbounded repair drains in one epoch; a tight budget takes
        // several; both must end bit-identical (run() errors otherwise).
        for sla_pairs in [None, Some(25)] {
            run(Command::Drill {
                trace: path.display().to_string(),
                tau: 50,
                kill: KillSpec::Percent(20),
                sla_pairs,
                max_epochs: 64,
                instance: instances::C3_LARGE,
                effective: true,
                scale: Some((300, 100_000)),
            })
            .unwrap();
        }
        // A kill list with typos still drills the valid indices.
        run(Command::Drill {
            trace: path.display().to_string(),
            tau: 50,
            kill: KillSpec::List(vec![0, 9_999]),
            sla_pairs: None,
            max_epochs: 4,
            instance: instances::C3_LARGE,
            effective: true,
            scale: Some((300, 100_000)),
        })
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_drill_runs_end_to_end() {
        let dir =
            std::env::temp_dir().join(format!("mcss-cli-serve-drill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state");
        run(Command::Serve {
            family: Some("spotify".into()),
            store: None,
            size: 250,
            seed: 4,
            tau: 40,
            instance: instances::C3_LARGE,
            epochs: 4,
            epoch_events: None,
            epoch_ms: None,
            churn: 0.2,
            sigma: 0.1,
            drift_seed: 7,
            dir: Some(state.display().to_string()),
            snapshot_every: 1,
            threads: 1,
            resume: false,
            drill: vec![(1, KillSpec::List(vec![0])), (2, KillSpec::Percent(20))],
            repair_budget: Some(10),
            compact_every: None,
            compact_steps: 2_048,
            sync_retries: 1,
            retry_backoff_ms: 0,
            effective: true,
            scale: Some((250, 100_000)),
            summary: None,
            simulate: true,
        })
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
