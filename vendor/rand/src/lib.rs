//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, API-compatible implementation of exactly what the sources call:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64 (same construction the reference `rand_xoshiro` crate uses);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] over the integer,
//!   float and range types the workspace samples from.
//!
//! Streams are *not* bit-compatible with the real `rand` crate; the workspace
//! only relies on determinism-for-a-seed, never on specific stream values.

#![warn(missing_docs)]

pub mod rngs;

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range of values that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias worth caring about
/// (widening-multiply method; bias is `span / 2^64`).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
