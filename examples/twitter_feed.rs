//! Deploying a Twitter-like firehose: trace analysis, solve, and an
//! operational check in the simulator.
//!
//! Walks the full pipeline the paper describes: generate a Twitter-shaped
//! workload (Appendix D statistics), inspect its distributions, solve MCSS
//! under the EC2 model, compare the paper pipeline against the naive
//! baseline, and replay the window through the broker simulation.
//!
//! Run with: `cargo run --release --example twitter_feed`

use mcss::prelude::*;
use mcss::traces::analysis;
use mcss::traces::TwitterLike;

const PAPER_SUBSCRIBERS: u64 = 30_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users = 30_000;
    println!("generating Twitter-like trace ({users} users)...");
    let mut generator = TwitterLike::new(users, 20141030);
    // At this scaled-down size the fattest bot streams would exceed a
    // single scaled VM; rein the bot tail in (a scale artifact — at full
    // scale every topic fits, see DESIGN.md §3).
    generator.bot_rate_range = (1_000, 10_000);
    let workload = generator.generate();
    let stats = workload.stats();
    println!("{stats}\n");

    // Appendix D-style analysis: heavy tails everywhere.
    let followers = workload.follower_counts();
    for (threshold, fraction) in analysis::ccdf_at(&followers, &[1, 10, 100, 1000]) {
        println!("P(#followers > {threshold:>5}) = {fraction:.4}");
    }
    let rates = workload.rate_values();
    for (threshold, fraction) in analysis::ccdf_at(&rates, &[10, 100, 1000]) {
        println!("P(#tweets   > {threshold:>5}) = {fraction:.4}");
    }
    println!();

    let cost = Ec2CostModel::paper_effective(cloud_cost::instances::C3_LARGE)
        .with_volume_scale(stats.num_subscribers as u64, PAPER_SUBSCRIBERS);
    let inst = McssInstance::new(workload, Rate::new(100), cost.capacity())?;

    // The paper's pipeline vs the naive baseline (§IV headline numbers).
    let paper = Solver::new(SolverParams {
        selector: SelectorKind::Greedy,
        allocator: AllocatorKind::custom_full(),
        ..SolverParams::default()
    })
    .solve(&inst, &cost)?;
    let naive = Solver::new(SolverParams {
        selector: SelectorKind::Random { seed: 1 },
        allocator: AllocatorKind::FirstFit,
        ..SolverParams::default()
    })
    .solve(&inst, &cost)?;
    println!("paper pipeline (GSP + CBP):\n{}\n", paper.report);
    println!("naive baseline (RSP + FFBP):\n{}\n", naive.report);
    let saved = naive.report.total_cost - paper.report.total_cost;
    let pct = 100.0 * saved.as_dollars_f64() / naive.report.total_cost.as_dollars_f64();
    println!("savings vs naive: {saved} ({pct:.1}%)");

    paper.allocation.validate(inst.workload(), inst.tau())?;

    // Operational check on the deployed topology.
    let report = Simulation::new(SimConfig::default()).run(inst.workload(), &paper.allocation);
    assert!(report.all_satisfied(inst.workload(), inst.tau()));
    println!(
        "\nsimulated {} events through {} VMs; every subscriber satisfied",
        report.published_events,
        paper.allocation.vm_count()
    );
    Ok(())
}
