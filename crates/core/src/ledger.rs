//! Incrementally-maintained fleet state for the churn path.
//!
//! The epoch-repair loop of [`crate::incremental`] used to keep the fleet
//! as `Vec<HashMap<TopicId, Vec<SubscriberId>>>` and pay full-fleet scans
//! every epoch: usage recomputes per VM, `retain`-based pair removal, and
//! linear sweeps to find eviction victims and placement targets. The
//! [`FleetLedger`] replaces that with flat state whose maintenance cost
//! scales with the *migration delta*:
//!
//! * per-VM `(topic, subscribers)` rows sorted by topic id (binary-search
//!   host lookup) with subscriber lists kept sorted (binary-search pair
//!   removal);
//! * per-VM used-bandwidth counters, adjusted pair-by-pair and re-based
//!   only for topics whose rate actually changed;
//! * a topic → hosting-VMs reverse index, so rate refreshes, removals and
//!   co-host placement touch only the VMs that host the topic;
//! * a lazy max-heap over VM headroom for "most-free VM" placement (stale
//!   entries are discarded on pop, fresh ones pushed on every change);
//! * tombstoned VM slots: released VMs keep their index (the reverse
//!   index and heap stay valid) and are reused lowest-first by new VMs.
//!
//! The ledger is deliberately policy-free: eviction order and the
//! three-pass placement (co-host → most-free → fresh VM) mirror the
//! repair policy documented on
//! [`IncrementalReallocator`](crate::incremental::IncrementalReallocator).
//!
//! # Heterogeneous fleets
//!
//! Every slot carries its own capacity. A ledger built from a *typed*
//! allocation (one with a [`FleetTyping`](crate::FleetTyping), as the
//! mixed-fleet packer produces) remembers each VM's tier: overflow
//! eviction and placement respect per-slot capacities, the most-free
//! heap orders by *headroom* rather than raw usage (the two orders agree
//! on homogeneous fleets), fresh VMs pick the cheapest-density tier that
//! holds the group whole (largest tier when none does), and
//! [`FleetLedger::to_allocation`] re-attaches the typing. Untyped
//! ledgers behave exactly as before: one capacity everywhere.

use crate::{Allocation, FleetTyping};
use cloud_cost::InstanceType;
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One VM's placement rows: `(topic, subscribers)` sorted by topic id,
/// subscribers sorted by id.
type VmRows = Vec<(TopicId, Vec<SubscriberId>)>;

/// Primary state of one VM slot, as exported by
/// [`FleetLedger::snapshot_slots`] and consumed by
/// [`FleetLedger::from_slots`]. Everything else the ledger keeps — the
/// topic reverse index, the placement heaps, the usage aggregates — is
/// derived from these fields on restore, and the rebuilt derived state
/// is behaviourally identical to the incrementally-maintained one (the
/// lazy heaps tolerate stale entries but never require them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerSlot {
    /// Whether the slot is tombstoned (released, awaiting reuse by a
    /// fresh VM). Tombstones must round-trip: slot indices affect the
    /// order future VMs are opened in.
    pub tombstone: bool,
    /// Whether the slot is quarantined after a VM failure
    /// ([`FleetLedger::fail_slots`]): tombstoned but *not* reusable
    /// until [`FleetLedger::recover_slot`] lifts the quarantine. Implies
    /// `tombstone`.
    pub failed: bool,
    /// The slot's capacity.
    pub cap: Bandwidth,
    /// Recorded bandwidth usage (Eq. 2 under current rates).
    pub used: Bandwidth,
    /// `(topic, subscribers)` rows, topics ascending, subscribers sorted.
    pub rows: Vec<(TopicId, Vec<SubscriberId>)>,
}

/// Outcome of [`FleetLedger::fail_slots`]: the topic groups orphaned by
/// the dead VMs, plus an exact account of which indices were acted on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailedSlots {
    /// Orphaned topic groups, exactly as they were hosted: one
    /// `(topic, subscribers)` row per dead row, topics may repeat across
    /// rows when a topic was hosted on several failed VMs. Subscriber
    /// lists stay sorted.
    pub orphans: Vec<(TopicId, Vec<SubscriberId>)>,
    /// Slot indices actually failed by this call (deduped, ascending).
    pub failed: Vec<usize>,
    /// Indices that named nothing to fail — out of range, or already
    /// tombstoned/failed — reported rather than silently ignored
    /// (ascending). Repeated indices collapse into one failure and are
    /// not counted here.
    pub rejected: Vec<usize>,
}

/// One topic's entry in the reverse host index. At scale nearly every
/// topic is hosted by exactly one VM (38 of 22 000 topics are multi-host
/// on the 100k-subscriber Spotify trace), so the common case is stored
/// inline in 8 bytes and only multi-host topics pay for a heap-allocated
/// slot list in the shared spill arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TopicHosts {
    /// Not hosted anywhere.
    #[default]
    Empty,
    /// Hosted by exactly one VM slot.
    One(u32),
    /// Hosted by several VMs: index into `FleetLedger::host_spill`,
    /// whose entry is the ascending slot list.
    Spilled(u32),
}

/// Tier table and per-slot assignment for a typed (mixed-fleet) ledger.
#[derive(Clone, Debug)]
struct LedgerTyping {
    /// `(instance type, capacity)` per tier, in the packer's density
    /// order (fresh VMs scan this order for the cheapest fit).
    tiers: Vec<(InstanceType, Bandwidth)>,
    /// Tier index per slot, parallel to `rows`.
    slot_tier: Vec<u32>,
}

/// Flat, incrementally-maintained fleet state (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct FleetLedger {
    /// Placement rows per VM slot; empty rows mean the slot is empty
    /// (mid-epoch) or tombstoned (after release).
    rows: Vec<VmRows>,
    /// Recorded bandwidth per VM slot (Eq. 2 under current rates).
    used: Vec<Bandwidth>,
    /// Capacity per VM slot — the tier capacity for typed fleets, the
    /// shared `BC` otherwise.
    cap: Vec<Bandwidth>,
    /// Tombstoned slots: released, invisible to placement until reused.
    tombstone: Vec<bool>,
    /// Quarantined slots (subset of tombstones): the VM died rather than
    /// drained, so the slot must not be handed to a fresh VM until the
    /// operator recovers it ([`FleetLedger::recover_slot`]).
    failed: Vec<bool>,
    /// Topic index → VM slots hosting the topic, ascending (inline for
    /// the dominant single-host case, spilled for the rest).
    hosts: Vec<TopicHosts>,
    /// Slot lists for multi-host topics ([`TopicHosts::Spilled`] points
    /// here); freed entries are recycled via `spill_free`.
    host_spill: Vec<Vec<u32>>,
    /// Recyclable `host_spill` indices (their lists are empty).
    spill_free: Vec<u32>,
    /// Lazy "most-free VM" heap: `(free headroom at push time, slot)`.
    /// An entry is valid iff the slot is live and its headroom still
    /// matches; everything else is discarded on pop.
    free_heap: BinaryHeap<(Bandwidth, usize)>,
    /// Tombstoned slots available for reuse, lowest index first.
    free_slots: BinaryHeap<Reverse<usize>>,
    /// Slots that may have become empty since the last release sweep.
    maybe_empty: Vec<usize>,
    /// Slots whose usage may have grown past capacity this epoch.
    overflow_candidates: Vec<usize>,
    /// `Σ used` over live slots.
    total_used: u128,
    /// `Σ cap` over live slots (the utilization denominator).
    live_cap: u128,
    /// Number of live (non-tombstone, non-empty) VMs.
    live: usize,
    /// Present iff the ledger mirrors a mixed (typed) fleet.
    typing: Option<LedgerTyping>,
}

impl FleetLedger {
    /// Builds a ledger mirroring an existing allocation (used after full
    /// re-solves and [`adopt`](crate::incremental::IncrementalReallocator::adopt)).
    /// A typed allocation yields a typed ledger with per-slot tier
    /// capacities.
    pub fn from_allocation(allocation: &Allocation) -> FleetLedger {
        let mut ledger = FleetLedger {
            typing: allocation.typing().map(|typing| LedgerTyping {
                tiers: typing.tiers().to_vec(),
                slot_tier: typing.assignment().to_vec(),
            }),
            ..FleetLedger::default()
        };
        for (slot, vm) in allocation.vms().iter().enumerate() {
            let rows: VmRows = vm
                .placements()
                .iter()
                .map(|p| (p.topic, p.subscribers.clone()))
                .collect();
            for &(t, _) in &rows {
                ledger.ensure_topics(t.index() + 1);
                ledger.host_insert(t, slot as u32);
            }
            let cap = allocation.vm_capacity(slot);
            ledger.rows.push(rows);
            ledger.used.push(vm.used());
            ledger.cap.push(cap);
            ledger.tombstone.push(false);
            ledger.failed.push(false);
            ledger.total_used += u128::from(vm.used().get());
            ledger.free_heap.push((cap.saturating_sub(vm.used()), slot));
            if !ledger.rows[slot].is_empty() {
                ledger.live += 1;
                ledger.live_cap += u128::from(cap.get());
            } else {
                ledger.maybe_empty.push(slot);
            }
        }
        ledger.hosts.shrink_to_fit();
        ledger
    }

    /// Exports every slot's primary state — including tombstones — for
    /// an on-disk snapshot (see [`crate::serve`]). The inverse,
    /// [`FleetLedger::from_slots`], rebuilds a ledger whose future
    /// behaviour is bit-identical to this one's.
    ///
    /// # Panics
    ///
    /// Panics on typed (mixed-fleet) ledgers: the serve layer that
    /// snapshots ledgers is homogeneous-only and a silent typing loss
    /// would corrupt capacities on restore.
    pub fn snapshot_slots(&self) -> Vec<LedgerSlot> {
        assert!(self.typing.is_none(), "typed ledgers cannot be snapshotted");
        (0..self.rows.len())
            .map(|slot| LedgerSlot {
                tombstone: self.tombstone[slot],
                failed: self.failed[slot],
                cap: self.cap[slot],
                used: self.used[slot],
                rows: self.rows[slot].clone(),
            })
            .collect()
    }

    /// Rebuilds an (untyped) ledger from snapshotted slot state: the
    /// reverse index, heaps and aggregate counters are reconstructed
    /// from the rows. Restoring [`FleetLedger::snapshot_slots`] output
    /// yields a ledger whose every future operation takes the same
    /// decisions as the original — rebuilt heaps hold exactly the fresh
    /// entries the lazy maintenance guarantees are present.
    pub fn from_slots(slots: Vec<LedgerSlot>) -> FleetLedger {
        let mut ledger = FleetLedger::default();
        for (slot, s) in slots.into_iter().enumerate() {
            for &(t, _) in &s.rows {
                ledger.ensure_topics(t.index() + 1);
                ledger.host_insert(t, slot as u32);
            }
            ledger.rows.push(s.rows);
            ledger.used.push(s.used);
            ledger.cap.push(s.cap);
            // A failed slot is a quarantined tombstone; tolerate inputs
            // that set `failed` without `tombstone`.
            ledger.tombstone.push(s.tombstone || s.failed);
            ledger.failed.push(s.failed);
            if s.failed {
                // Quarantined: not reusable, so not in free_slots.
            } else if s.tombstone {
                ledger.free_slots.push(Reverse(slot));
            } else {
                ledger.total_used += u128::from(s.used.get());
                ledger.free_heap.push((s.cap.saturating_sub(s.used), slot));
                if ledger.rows[slot].is_empty() {
                    ledger.maybe_empty.push(slot);
                } else {
                    ledger.live += 1;
                    ledger.live_cap += u128::from(s.cap.get());
                }
            }
        }
        ledger.hosts.shrink_to_fit();
        ledger
    }

    /// Number of live (non-empty) VMs.
    pub fn vm_count(&self) -> usize {
        self.live
    }

    /// `true` iff the ledger carries per-slot instance typing.
    pub fn is_typed(&self) -> bool {
        self.typing.is_some()
    }

    /// Allocated heap bytes across every slot's rows, indexes, and work
    /// queues (capacities, not lengths) — one input to the
    /// [`MemoryFootprint`](crate::MemoryFootprint) report.
    pub fn heap_bytes(&self) -> usize {
        fn bytes<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        let mut total = bytes(&self.rows)
            + bytes(&self.used)
            + bytes(&self.cap)
            + bytes(&self.tombstone)
            + bytes(&self.failed)
            + bytes(&self.hosts)
            + bytes(&self.maybe_empty)
            + bytes(&self.overflow_candidates)
            + self.free_heap.capacity() * std::mem::size_of::<(Bandwidth, usize)>()
            + self.free_slots.capacity() * std::mem::size_of::<Reverse<usize>>();
        for vm in &self.rows {
            total += bytes(vm);
            for (_, subs) in vm {
                total += bytes(subs);
            }
        }
        total += bytes(&self.host_spill) + bytes(&self.spill_free);
        for spill in &self.host_spill {
            total += bytes(spill);
        }
        if let Some(typing) = &self.typing {
            total += bytes(&typing.tiers) + bytes(&typing.slot_tier);
        }
        total
    }

    /// `Σ used / Σ cap` over live VMs (1.0 for an empty fleet). Both
    /// sums are maintained incrementally, so this stays O(1) even on
    /// typed fleets with per-slot capacities.
    pub fn utilization(&self) -> f64 {
        if self.live_cap == 0 {
            1.0
        } else {
            self.total_used as f64 / self.live_cap as f64
        }
    }

    /// Capacity of slot `slot` — its tier capacity (typed) or the shared
    /// capacity recorded at creation.
    #[inline]
    fn slot_cap(&self, slot: usize) -> Bandwidth {
        self.cap[slot]
    }

    /// Free headroom of slot `slot`.
    #[inline]
    fn slot_free(&self, slot: usize) -> Bandwidth {
        self.cap[slot].saturating_sub(self.used[slot])
    }

    /// Rewrites every slot's capacity to `capacity` — the untyped
    /// ledger's response to a changed `BC` between epochs (`O(fleet)`,
    /// but only on an actual capacity change). Typed ledgers keep their
    /// tier capacities; calling this on one is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is typed.
    pub fn reset_capacity(&mut self, capacity: Bandwidth) {
        assert!(
            self.typing.is_none(),
            "typed fleets derive capacities from their tiers"
        );
        self.live_cap = 0;
        for slot in 0..self.rows.len() {
            self.cap[slot] = capacity;
            if !self.tombstone[slot] && !self.rows[slot].is_empty() {
                self.live_cap += u128::from(capacity.get());
            }
            self.free_heap.push((self.slot_free(slot), slot));
        }
    }

    /// Snapshots the live VMs as an [`Allocation`], in slot order. The
    /// ledger's rows are already sorted and its used counters exact, so
    /// the export is a plain clone — no re-sort, no bandwidth recompute.
    /// Typed ledgers re-attach their [`FleetTyping`](crate::FleetTyping).
    pub fn to_allocation(&self, capacity: Bandwidth) -> Allocation {
        let live_slots: Vec<usize> = (0..self.rows.len())
            .filter(|&slot| !self.rows[slot].is_empty())
            .collect();
        let vms = live_slots
            .iter()
            .map(|&slot| {
                let placements = self.rows[slot]
                    .iter()
                    .map(|(topic, subscribers)| crate::TopicPlacement {
                        topic: *topic,
                        subscribers: subscribers.clone(),
                    })
                    .collect();
                crate::VmAllocation::from_sorted_parts(placements, self.used[slot])
            })
            .collect();
        let allocation = Allocation::from_vm_allocations(vms, capacity);
        match &self.typing {
            Some(typing) => allocation.with_typing(FleetTyping::new(
                typing.tiers.clone(),
                live_slots
                    .iter()
                    .map(|&slot| typing.slot_tier[slot])
                    .collect(),
            )),
            None => allocation,
        }
    }

    /// Grows the reverse index to cover `num_topics` topics.
    pub fn ensure_topics(&mut self, num_topics: usize) {
        if self.hosts.len() < num_topics {
            self.hosts.resize_with(num_topics, TopicHosts::default);
        }
    }

    /// Number of VMs hosting topic `t` (0 beyond the indexed range).
    #[inline]
    fn host_count(&self, t: TopicId) -> usize {
        match self.hosts.get(t.index()) {
            None | Some(TopicHosts::Empty) => 0,
            Some(TopicHosts::One(_)) => 1,
            Some(TopicHosts::Spilled(i)) => self.host_spill[*i as usize].len(),
        }
    }

    /// The `hi`-th hosting slot of topic `t`, slots ascending.
    #[inline]
    fn host_at(&self, t: TopicId, hi: usize) -> usize {
        match self.hosts[t.index()] {
            TopicHosts::Empty => unreachable!("host_at past host_count"),
            TopicHosts::One(slot) => {
                debug_assert_eq!(hi, 0);
                slot as usize
            }
            TopicHosts::Spilled(i) => self.host_spill[i as usize][hi] as usize,
        }
    }

    /// Records `slot` as a host of topic `t`, keeping the list ascending.
    /// Callers guarantee the slot is not already present.
    fn host_insert(&mut self, t: TopicId, slot: u32) {
        let entry = &mut self.hosts[t.index()];
        match *entry {
            TopicHosts::Empty => *entry = TopicHosts::One(slot),
            TopicHosts::One(prev) => {
                debug_assert_ne!(prev, slot, "host_insert of a present slot");
                let list = match self.spill_free.pop() {
                    Some(i) => i,
                    None => {
                        self.host_spill.push(Vec::new());
                        (self.host_spill.len() - 1) as u32
                    }
                };
                let spill = &mut self.host_spill[list as usize];
                spill.push(prev.min(slot));
                spill.push(prev.max(slot));
                *entry = TopicHosts::Spilled(list);
            }
            TopicHosts::Spilled(i) => {
                let spill = &mut self.host_spill[i as usize];
                let at = spill.binary_search(&slot).unwrap_or_else(|at| at);
                spill.insert(at, slot);
            }
        }
    }

    /// Forgets `slot` as a host of topic `t` (no-op when absent). A spill
    /// list that shrinks to one slot collapses back inline and its arena
    /// entry is recycled.
    fn host_remove(&mut self, t: TopicId, slot: u32) {
        let entry = &mut self.hosts[t.index()];
        match *entry {
            TopicHosts::Empty => {}
            TopicHosts::One(s) => {
                if s == slot {
                    *entry = TopicHosts::Empty;
                }
            }
            TopicHosts::Spilled(i) => {
                let spill = &mut self.host_spill[i as usize];
                if let Ok(at) = spill.binary_search(&slot) {
                    spill.remove(at);
                }
                if spill.len() == 1 {
                    let last = spill[0];
                    spill.clear();
                    self.spill_free.push(i);
                    *entry = TopicHosts::One(last);
                }
            }
        }
    }

    /// Empties topic `t`'s host list, recycling any spill entry.
    fn host_clear(&mut self, t: TopicId) {
        if t.index() >= self.hosts.len() {
            return;
        }
        let entry = &mut self.hosts[t.index()];
        if let TopicHosts::Spilled(i) = *entry {
            self.host_spill[i as usize].clear();
            self.spill_free.push(i);
        }
        *entry = TopicHosts::Empty;
    }

    /// Re-bases every hosting VM's used counter after topic `t`'s rate
    /// changed from `old_rate` to `new_rate` — `O(hosts of t)`.
    pub fn refresh_rate(&mut self, t: TopicId, old_rate: Rate, new_rate: Rate) {
        if old_rate == new_rate || t.index() >= self.hosts.len() {
            return;
        }
        for hi in 0..self.host_count(t) {
            let slot = self.host_at(t, hi);
            let pairs = match self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                Ok(pos) => self.rows[slot][pos].1.len() as u64,
                Err(_) => continue, // stale index entry
            };
            let old_contrib = old_rate * (pairs + 1);
            let new_contrib = new_rate * (pairs + 1);
            let before = self.used[slot];
            let after = before.saturating_sub(old_contrib) + new_contrib;
            self.used[slot] = after;
            self.total_used =
                self.total_used - u128::from(old_contrib.get()) + u128::from(new_contrib.get());
            self.free_heap.push((self.slot_free(slot), slot));
            if new_rate > old_rate {
                self.overflow_candidates.push(slot);
            }
        }
    }

    /// Drops every group of topic `t` (the topic left the workload),
    /// charging usage at `old_rate`. Later [`FleetLedger::remove_pair`]
    /// calls for its pairs become no-ops.
    pub fn drop_topic(&mut self, t: TopicId, old_rate: Rate) {
        if t.index() >= self.hosts.len() {
            return;
        }
        for hi in 0..self.host_count(t) {
            let slot = self.host_at(t, hi);
            if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                let (_, subs) = self.rows[slot].remove(pos);
                let contrib = old_rate * (subs.len() as u64 + 1);
                self.used[slot] = self.used[slot].saturating_sub(contrib);
                self.total_used -= u128::from(contrib.get());
                self.free_heap.push((self.slot_free(slot), slot));
                if self.rows[slot].is_empty() {
                    self.mark_emptied(slot);
                }
            }
        }
        self.host_clear(t);
    }

    /// Removes the pair `(t, v)` if the ledger holds it, updating usage at
    /// the topic's current `rate`. `O(hosts of t · log)` — the reverse
    /// index names the candidate VMs, binary search finds the subscriber.
    pub fn remove_pair(&mut self, t: TopicId, v: SubscriberId, rate: Rate) -> bool {
        if t.index() >= self.hosts.len() {
            return false;
        }
        let mut found: Option<(usize, usize)> = None;
        for hi in 0..self.host_count(t) {
            let slot = self.host_at(t, hi);
            if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                if self.rows[slot][pos].1.binary_search(&v).is_ok() {
                    found = Some((slot, pos));
                    break;
                }
            }
        }
        let Some((slot, pos)) = found else {
            return false;
        };
        let subs = &mut self.rows[slot][pos].1;
        let at = subs.binary_search(&v).expect("membership just checked");
        subs.remove(at);
        let mut freed = rate.volume(); // the outgoing stream
        if subs.is_empty() {
            // Last pair: the incoming stream goes too.
            self.rows[slot].remove(pos);
            self.host_remove(t, slot as u32);
            freed += rate.volume();
            if self.rows[slot].is_empty() {
                self.mark_emptied(slot);
            }
        }
        self.used[slot] = self.used[slot].saturating_sub(freed);
        self.total_used -= u128::from(freed.get());
        self.free_heap.push((self.slot_free(slot), slot));
        true
    }

    /// Bookkeeping for a slot whose last row just left: it stops counting
    /// toward `live`/`live_cap` and queues for the next release sweep.
    fn mark_emptied(&mut self, slot: usize) {
        self.live -= 1;
        self.live_cap -= u128::from(self.cap[slot].get());
        self.maybe_empty.push(slot);
    }

    /// Bookkeeping for a slot that just went live (first row placed).
    fn mark_live(&mut self, slot: usize) {
        self.live += 1;
        self.live_cap += u128::from(self.cap[slot].get());
    }

    /// Queues every live VM for the next overflow check (used when the
    /// capacity constraint itself changed between epochs).
    pub fn mark_all_for_overflow(&mut self) {
        for slot in 0..self.rows.len() {
            if !self.tombstone[slot] && !self.rows[slot].is_empty() {
                self.overflow_candidates.push(slot);
            }
        }
    }

    /// Sheds load from every queued VM whose usage exceeds its own slot
    /// capacity: whole topic groups are evicted cheapest-first (cost
    /// `ev_t · (|group| + 1)`, ties to the lowest topic id) and appended
    /// to `spill` for re-placement. Returns the number of evicted pairs.
    pub fn evict_overflowing(
        &mut self,
        workload: &Workload,
        spill: &mut Vec<(TopicId, SubscriberId)>,
    ) -> u64 {
        let mut evicted = 0u64;
        let candidates = std::mem::take(&mut self.overflow_candidates);
        for slot in candidates {
            let capacity = self.slot_cap(slot);
            if self.tombstone[slot] || self.used[slot] <= capacity {
                continue;
            }
            // Group costs do not change while evicting siblings, so one
            // ascending sort stands in for the eviction min-heap.
            let mut order: Vec<(Bandwidth, TopicId)> = self.rows[slot]
                .iter()
                .map(|(t, subs)| (workload.rate(*t) * (subs.len() as u64 + 1), *t))
                .collect();
            order.sort_unstable();
            for (cost, t) in order {
                if self.used[slot] <= capacity {
                    break;
                }
                let pos = self.rows[slot]
                    .binary_search_by_key(&t, |&(tt, _)| tt)
                    .expect("group present while over capacity");
                let (_, subs) = self.rows[slot].remove(pos);
                self.host_remove(t, slot as u32);
                self.used[slot] = self.used[slot].saturating_sub(cost);
                self.total_used -= u128::from(cost.get());
                evicted += subs.len() as u64;
                spill.extend(subs.into_iter().map(|v| (t, v)));
            }
            self.free_heap.push((self.slot_free(slot), slot));
            if self.rows[slot].is_empty() {
                self.mark_emptied(slot);
            }
        }
        evicted
    }

    /// Places one topic group from a subscriber slice: VMs already hosting the
    /// topic first (marginal cost `ev` per pair), then most-free VMs via
    /// the lazy heap (`(k+1)·ev`), then fresh VMs (tombstoned slots are
    /// reused lowest-first). `capacity` sizes fresh VMs on untyped
    /// fleets; typed fleets pick the cheapest-density tier that holds
    /// the remaining group whole (the largest tier when none does). The
    /// caller must have checked `rate.pair_cost()` against the fleet's
    /// largest capacity.
    pub fn place_group(
        &mut self,
        t: TopicId,
        rate: Rate,
        mut subs: &[SubscriberId],
        capacity: Bandwidth,
    ) {
        debug_assert!(
            rate.pair_cost() <= self.max_fleet_capacity(capacity),
            "caller must reject infeasible topics"
        );
        self.ensure_topics(t.index() + 1);

        // Pass 1: co-hosts in ascending slot order.
        for hi in 0..self.host_count(t) {
            if subs.is_empty() {
                break;
            }
            let slot = self.host_at(t, hi);
            let free = self.slot_free(slot);
            let take = (free.div_rate(rate) as usize).min(subs.len());
            if take == 0 {
                continue;
            }
            let pos = self.rows[slot]
                .binary_search_by_key(&t, |&(tt, _)| tt)
                .expect("reverse index names a host");
            let row = &mut self.rows[slot][pos].1;
            let (head, rest) = subs.split_at(take);
            subs = rest;
            for &v in head {
                let at = row.binary_search(&v).unwrap_or_else(|at| at);
                row.insert(at, v);
            }
            let added = rate * take as u64;
            self.used[slot] += added;
            self.total_used += u128::from(added.get());
            self.free_heap.push((self.slot_free(slot), slot));
        }

        // Pass 2: most-free live VM, lazily validated.
        while !subs.is_empty() {
            let slot = loop {
                let Some(&(free, slot)) = self.free_heap.peek() else {
                    break None;
                };
                if self.tombstone[slot] || self.slot_free(slot) != free {
                    self.free_heap.pop(); // stale
                    continue;
                }
                break Some(slot);
            };
            let Some(slot) = slot else {
                break;
            };
            let free = self.slot_free(slot);
            if free < rate.pair_cost() {
                break; // no existing VM can take a first pair
            }
            let take = ((free.div_rate(rate) - 1) as usize).min(subs.len());
            let (pos, hosted) = match self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                Ok(pos) => (pos, true),
                Err(pos) => (pos, false),
            };
            if !hosted {
                self.rows[slot].insert(pos, (t, Vec::new()));
                self.host_insert(t, slot as u32);
            }
            let was_empty = self.rows[slot].len() == 1 && self.rows[slot][0].1.is_empty();
            let row = &mut self.rows[slot][pos].1;
            let (head, rest) = subs.split_at(take);
            subs = rest;
            for &v in head {
                let at = row.binary_search(&v).unwrap_or_else(|at| at);
                row.insert(at, v);
            }
            if was_empty {
                self.mark_live(slot);
            }
            let added = rate * (take as u64 + if hosted { 0 } else { 1 });
            self.used[slot] += added;
            self.total_used += u128::from(added.get());
            self.free_heap.push((self.slot_free(slot), slot));
        }

        // Pass 3: fresh VMs.
        while !subs.is_empty() {
            let vm_cap = self.fresh_vm_capacity(rate, subs.len(), capacity);
            let take = ((vm_cap.div_rate(rate) - 1) as usize).min(subs.len());
            let (head, rest) = subs.split_at(take);
            subs = rest;
            let mut moved: Vec<SubscriberId> = head.to_vec();
            moved.sort_unstable();
            let used = rate * (take as u64 + 1);
            let slot = match self.free_slots.pop() {
                Some(Reverse(slot)) => {
                    debug_assert!(!self.failed[slot], "failed slots never enter free_slots");
                    self.tombstone[slot] = false;
                    self.rows[slot] = vec![(t, moved)];
                    self.used[slot] = used;
                    self.cap[slot] = vm_cap;
                    slot
                }
                None => {
                    self.rows.push(vec![(t, moved)]);
                    self.used.push(used);
                    self.cap.push(vm_cap);
                    self.tombstone.push(false);
                    self.failed.push(false);
                    self.rows.len() - 1
                }
            };
            if let Some(typing) = &mut self.typing {
                let tier = typing
                    .tiers
                    .iter()
                    .position(|&(_, cap)| cap == vm_cap)
                    .expect("fresh_vm_capacity returns a tier capacity")
                    as u32;
                if slot < typing.slot_tier.len() {
                    typing.slot_tier[slot] = tier;
                } else {
                    typing.slot_tier.push(tier);
                }
            }
            self.host_insert(t, slot as u32);
            self.total_used += u128::from(used.get());
            self.free_heap.push((self.slot_free(slot), slot));
            self.mark_live(slot);
        }
    }

    /// The largest capacity a fresh VM could have: the biggest tier on a
    /// typed fleet, `fallback` otherwise.
    fn max_fleet_capacity(&self, fallback: Bandwidth) -> Bandwidth {
        match &self.typing {
            Some(typing) => typing
                .tiers
                .iter()
                .map(|&(_, cap)| cap)
                .max()
                .unwrap_or(fallback),
            None => fallback,
        }
    }

    /// Capacity of the next fresh VM for a group of `pending` pairs of
    /// `rate` — the mixed packer's tier rule on typed fleets (cheapest
    /// density that holds the group whole, largest otherwise), the
    /// caller's capacity on untyped ones.
    fn fresh_vm_capacity(&self, rate: Rate, pending: usize, fallback: Bandwidth) -> Bandwidth {
        let Some(typing) = &self.typing else {
            return fallback;
        };
        let whole = u128::from(rate.get()) * (pending as u128 + 1);
        typing
            .tiers
            .iter()
            .map(|&(_, cap)| cap)
            .find(|cap| u128::from(cap.get()) >= whole && *cap >= rate.pair_cost())
            .unwrap_or_else(|| {
                typing
                    .tiers
                    .iter()
                    .map(|&(_, cap)| cap)
                    .max()
                    .expect("typed fleets have at least one tier")
            })
    }

    /// Tombstones every VM emptied since the last sweep (their slots are
    /// reused by future fresh VMs). Returns how many were released.
    pub fn release_empty(&mut self) -> usize {
        let mut released = 0usize;
        let pending = std::mem::take(&mut self.maybe_empty);
        for slot in pending {
            if !self.tombstone[slot] && self.rows[slot].is_empty() {
                self.tombstone[slot] = true;
                self.free_slots.push(Reverse(slot));
                released += 1;
            }
        }
        released
    }

    /// Recomputes every live VM's used counter from its rows under the
    /// current rates — the `O(fleet)` fallback for resyncing after
    /// [`adopt`](crate::incremental::IncrementalReallocator::adopt), where
    /// no previous-epoch rates exist to delta against. Topics at or above
    /// the workload's topic count must have been dropped first.
    pub fn recompute_used(&mut self, workload: &Workload) {
        self.total_used = 0;
        for slot in 0..self.rows.len() {
            if self.tombstone[slot] {
                continue;
            }
            let mut used = Bandwidth::ZERO;
            for (t, subs) in &self.rows[slot] {
                used += workload.rate(*t) * (subs.len() as u64 + 1);
            }
            self.used[slot] = used;
            self.total_used += u128::from(used.get());
            self.free_heap.push((self.slot_free(slot), slot));
        }
    }

    /// Drops every group whose topic index is `>= num_topics` (the
    /// workload shrank), charging usage at the rates recorded in `used` —
    /// callers pass the previous epoch's rate via
    /// [`FleetLedger::drop_topic`]; this sweep exists for the adopt path
    /// where [`FleetLedger::recompute_used`] follows anyway.
    pub fn drop_topics_at_or_above(&mut self, num_topics: usize) {
        for ti in num_topics..self.hosts.len() {
            let t = TopicId::new(ti as u32);
            for hi in 0..self.host_count(t) {
                let slot = self.host_at(t, hi);
                if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                    self.rows[slot].remove(pos);
                    if self.rows[slot].is_empty() {
                        self.mark_emptied(slot);
                    }
                }
            }
            self.host_clear(t);
        }
    }

    /// Fails a set of VM slots in place: every row they hosted is
    /// orphaned (returned for re-placement), their usage leaves the
    /// aggregates, and the slots are *quarantined* — tombstoned but kept
    /// out of the fresh-VM reuse pool until [`FleetLedger::recover_slot`]
    /// declares the underlying machine healthy again. Duplicate indices
    /// collapse into one failure; out-of-range and already-dead indices
    /// are reported in [`FailedSlots::rejected`], never acted on.
    ///
    /// Quarantine is what keeps a dead VM's identity from being
    /// resurrected with stale state: a recovered slot re-enters the pool
    /// empty, and reuse by [`FleetLedger::place_group`] always rewrites
    /// its capacity.
    pub fn fail_slots(&mut self, slots: &[usize]) -> FailedSlots {
        let mut wanted: Vec<usize> = slots.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let mut out = FailedSlots::default();
        for slot in wanted {
            if slot >= self.rows.len() || self.tombstone[slot] {
                out.rejected.push(slot);
                continue;
            }
            let rows = std::mem::take(&mut self.rows[slot]);
            let was_live = !rows.is_empty();
            for (t, subs) in rows {
                self.host_remove(t, slot as u32);
                out.orphans.push((t, subs));
            }
            self.total_used -= u128::from(self.used[slot].get());
            self.used[slot] = Bandwidth::ZERO;
            if was_live {
                // Empty slots already left live/live_cap via mark_emptied.
                self.live -= 1;
                self.live_cap -= u128::from(self.cap[slot].get());
            }
            self.tombstone[slot] = true;
            self.failed[slot] = true;
            out.failed.push(slot);
        }
        out
    }

    /// Lifts the quarantine on a failed slot, returning it to the
    /// lowest-first reuse pool (the machine was replaced or came back).
    /// Returns `false` — and does nothing — for indices that are not
    /// currently quarantined.
    pub fn recover_slot(&mut self, slot: usize) -> bool {
        if slot >= self.rows.len() || !self.failed[slot] {
            return false;
        }
        self.failed[slot] = false;
        self.free_slots.push(Reverse(slot));
        true
    }

    /// Number of slots currently quarantined by [`FleetLedger::fail_slots`].
    pub fn failed_slot_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// Whether the ledger currently hosts the pair `(t, v)` —
    /// `O(hosts of t · log)` via the reverse index.
    pub fn contains_pair(&self, t: TopicId, v: SubscriberId) -> bool {
        if t.index() >= self.hosts.len() {
            return false;
        }
        for hi in 0..self.host_count(t) {
            let slot = self.host_at(t, hi);
            if let Ok(pos) = self.rows[slot].binary_search_by_key(&t, |&(tt, _)| tt) {
                if self.rows[slot][pos].1.binary_search(&v).is_ok() {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_model::Workload;

    fn t(i: u32) -> TopicId {
        TopicId::new(i)
    }
    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    fn workload(rates: &[u64]) -> Workload {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = rates
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        // Everyone follows everything so any pair is legal.
        for _ in 0..24 {
            b.add_subscriber(ts.iter().copied()).unwrap();
        }
        b.build()
    }

    fn ledger_with(groups: Vec<VmRows>, w: &Workload, capacity: Bandwidth) -> FleetLedger {
        FleetLedger::from_allocation(&Allocation::from_groups(groups, w, capacity))
    }

    #[test]
    fn from_allocation_round_trips() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let groups = vec![
            vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])],
            vec![(t(1), vec![v(0)])],
        ];
        let ledger = ledger_with(groups.clone(), &w, cap);
        assert_eq!(ledger.vm_count(), 2);
        assert_eq!(
            ledger.to_allocation(cap),
            Allocation::from_groups(groups, &w, cap)
        );
    }

    #[test]
    fn remove_pair_updates_usage_and_releases_empties() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(vec![vec![(t(0), vec![v(0), v(1)])]], &w, cap);
        assert!(ledger.remove_pair(t(0), v(0), Rate::new(10)));
        // 2 pairs + incoming = 30 → one pair + incoming = 20.
        assert_eq!(ledger.to_allocation(cap).total_bandwidth().get(), 20);
        assert!(ledger.remove_pair(t(0), v(1), Rate::new(10)));
        assert!(
            !ledger.remove_pair(t(0), v(1), Rate::new(10)),
            "no-op twice"
        );
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 0);
        assert_eq!(ledger.to_allocation(cap).vm_count(), 0);
    }

    #[test]
    fn refresh_rate_flags_overflow_and_eviction_sheds_cheapest_group() {
        let w = workload(&[30, 4]);
        let cap = Bandwidth::new(100);
        // used = 30·(2+1) + 4·(1+1) = 98.
        let mut ledger = ledger_with(
            vec![vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])]],
            &w,
            cap,
        );
        ledger.refresh_rate(t(0), Rate::new(30), Rate::new(31));
        let mut spill = Vec::new();
        let evicted = ledger.evict_overflowing(&w, &mut spill);
        // New usage 101 > 100: the cheap t1 group (cost 8) goes first.
        assert_eq!(evicted, 1);
        assert_eq!(spill, vec![(t(1), v(2))]);
    }

    #[test]
    fn place_group_prefers_cohost_then_most_free_then_fresh() {
        let w = workload(&[10, 2]);
        let cap = Bandwidth::new(64);
        // VM0 hosts t0 with room for 1 more pair; VM1 is nearly full.
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0), v(1), v(2)])], // used 40, free 24
                vec![(t(1), vec![v(0), v(1)])],       // used 6, free 58
            ],
            &w,
            cap,
        );
        let subs = vec![v(3), v(4), v(5), v(6), v(7), v(8), v(9), v(10)];
        ledger.place_group(t(0), Rate::new(10), &subs, cap);
        let a = ledger.to_allocation(cap);
        assert_eq!(a.pair_count(), 5 + subs.len() as u64, "all pairs placed");
        // Co-host takes 2 (24/10), most-free VM1 takes 4 (58/10 − 1),
        // fresh VM takes the remaining 2.
        assert_eq!(a.vm_count(), 3);
        assert_eq!(a.vms()[0].pair_count(), 5);
        assert_eq!(a.vms()[1].pair_count(), 2 + 4);
        assert_eq!(a.vms()[2].pair_count(), 2);
        for vm in a.vms() {
            assert!(vm.used() <= cap);
        }
    }

    #[test]
    fn tombstoned_slots_are_reused_lowest_first() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)])],
                vec![(t(0), vec![v(1), v(2), v(3), v(4)])],
            ],
            &w,
            cap,
        );
        ledger.remove_pair(t(0), v(0), Rate::new(10));
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 1);
        // A fresh placement must first fill the co-host, then reuse slot 0.
        let subs = (5..14).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, cap);
        assert_eq!(ledger.vm_count(), 2);
        let a = ledger.to_allocation(cap);
        assert_eq!(a.vm_count(), 2);
        assert_eq!(a.pair_count(), 4 + subs.len() as u64, "all pairs placed");
    }

    #[test]
    fn host_index_spills_and_collapses_across_multi_vm_topics() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        // Topic 0 hosted by three VMs: the reverse index must spill.
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)])],
                vec![(t(0), vec![v(1)])],
                vec![(t(0), vec![v(2)])],
            ],
            &w,
            cap,
        );
        assert_eq!(ledger.host_count(t(0)), 3);
        assert_eq!((0..3).map(|hi| ledger.host_at(t(0), hi)).max(), Some(2));
        // Emptying two VMs collapses the spill back inline...
        assert!(ledger.remove_pair(t(0), v(0), Rate::new(10)));
        assert!(ledger.remove_pair(t(0), v(2), Rate::new(10)));
        assert_eq!(ledger.host_count(t(0)), 1);
        assert_eq!(ledger.host_at(t(0), 0), 1);
        assert_eq!(ledger.spill_free.len(), 1, "spill entry recycled");
        // ...and growing again reuses the recycled spill entry.
        let subs = (3..15).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, cap);
        assert!(ledger.host_count(t(0)) > 1);
        assert!(ledger.spill_free.is_empty());
        let a = ledger.to_allocation(cap);
        assert_eq!(a.pair_count(), 1 + subs.len() as u64);
        assert!(a.validate(&w, Rate::new(0)).is_ok());
    }

    #[test]
    fn slot_snapshot_round_trips_tombstones_and_placement_behaviour() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)])],
                vec![(t(0), vec![v(1), v(2), v(3), v(4)])],
            ],
            &w,
            cap,
        );
        // Tombstone slot 0 so the restore has to rebuild free_slots too.
        ledger.remove_pair(t(0), v(0), Rate::new(10));
        ledger.release_empty();

        let mut restored = FleetLedger::from_slots(ledger.snapshot_slots());
        assert_eq!(restored.vm_count(), ledger.vm_count());
        assert!((restored.utilization() - ledger.utilization()).abs() < 1e-12);
        assert_eq!(restored.to_allocation(cap), ledger.to_allocation(cap));

        // Identical future behaviour: the same placement lands the same
        // way (co-host fill, then reuse of tombstoned slot 0).
        let subs = (5..14).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, cap);
        restored.place_group(t(0), Rate::new(10), &subs, cap);
        assert_eq!(restored.to_allocation(cap), ledger.to_allocation(cap));
        assert_eq!(restored.snapshot_slots(), ledger.snapshot_slots());
    }

    #[test]
    fn drop_topic_clears_groups_everywhere() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)]), (t(1), vec![v(1)])],
                vec![(t(1), vec![v(2)])],
            ],
            &w,
            cap,
        );
        ledger.drop_topic(t(1), Rate::new(5));
        assert!(
            !ledger.remove_pair(t(1), v(1), Rate::new(5)),
            "already gone"
        );
        let a = ledger.to_allocation(cap);
        assert_eq!(a.pair_count(), 1);
        assert_eq!(ledger.release_empty(), 1);
        assert_eq!(ledger.vm_count(), 1);
    }

    #[test]
    fn utilization_tracks_live_vms_only() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(40);
        let mut ledger = ledger_with(
            vec![vec![(t(0), vec![v(0)])], vec![(t(0), vec![v(1)])]],
            &w,
            cap,
        );
        // Each VM: 20/40.
        assert!((ledger.utilization() - 0.5).abs() < 1e-9);
        ledger.remove_pair(t(0), v(1), Rate::new(10));
        ledger.release_empty();
        assert!((ledger.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_capacity_rescales_untyped_slots() {
        let w = workload(&[10]);
        let mut ledger = ledger_with(
            vec![vec![(t(0), vec![v(0)])], vec![(t(0), vec![v(1)])]],
            &w,
            Bandwidth::new(40),
        );
        assert!((ledger.utilization() - 0.5).abs() < 1e-9);
        ledger.reset_capacity(Bandwidth::new(80));
        assert!((ledger.utilization() - 0.25).abs() < 1e-9);
        // Shrinking below usage flags overflow on the next sweep.
        ledger.reset_capacity(Bandwidth::new(15));
        ledger.mark_all_for_overflow();
        let mut spill = Vec::new();
        assert_eq!(ledger.evict_overflowing(&w, &mut spill), 2);
    }

    #[test]
    fn typed_ledger_round_trips_typing_and_respects_tier_caps() {
        use crate::FleetTyping;
        use cloud_cost::instances;
        let w = workload(&[10, 2]);
        let tiers = vec![
            (instances::C3_LARGE, Bandwidth::new(24)),
            (instances::C3_XLARGE, Bandwidth::new(64)),
        ];
        // VM0 (small): t1 group, used 6/24. VM1 (big): t0 group, 40/64.
        let groups = vec![
            vec![(t(1), vec![v(0), v(1)])],
            vec![(t(0), vec![v(0), v(1), v(2)])],
        ];
        let typed = Allocation::from_groups(groups, &w, Bandwidth::new(64))
            .with_typing(FleetTyping::new(tiers.clone(), vec![0, 1]));
        let mut ledger = FleetLedger::from_allocation(&typed);
        assert!(ledger.is_typed());
        assert_eq!(ledger.to_allocation(Bandwidth::new(64)), typed);

        // Place 8 more t0 pairs (rate 10): the small VM0 has free 18 but
        // the most-free heap must rank VM1 (free 24) by *headroom*; the
        // co-host VM1 takes 2 (24/10), spill takes VM0's 18 → 1 pair,
        // fresh VMs host the rest on the cheapest tier that fits whole.
        let subs = (3..11).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, Bandwidth::new(64));
        let out = ledger.to_allocation(Bandwidth::new(64));
        out.validate(&w, Rate::ZERO).unwrap();
        for (i, vm) in out.vms().iter().enumerate() {
            assert!(
                vm.used() <= out.vm_capacity(i),
                "vm {i} used {} over its tier cap {}",
                vm.used(),
                out.vm_capacity(i)
            );
        }
        assert_eq!(out.pair_count(), 2 + 3 + 8);
    }

    #[test]
    fn fail_slots_orphans_rows_and_reports_invalid_indices() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])],
                vec![(t(1), vec![v(3)])],
            ],
            &w,
            cap,
        );
        // Duplicates collapse, out-of-range indices are reported.
        let fail = ledger.fail_slots(&[0, 0, 7]);
        assert_eq!(fail.failed, vec![0]);
        assert_eq!(fail.rejected, vec![7]);
        assert_eq!(
            fail.orphans,
            vec![(t(0), vec![v(0), v(1)]), (t(1), vec![v(2)])]
        );
        assert_eq!(ledger.vm_count(), 1);
        assert_eq!(ledger.failed_slot_count(), 1);
        // The dead VM is gone from the export; the survivor remains.
        let a = ledger.to_allocation(cap);
        assert_eq!(a.vm_count(), 1);
        assert_eq!(a.pair_count(), 1);
        // Failing a dead slot again names nothing.
        let again = ledger.fail_slots(&[0]);
        assert!(again.failed.is_empty());
        assert_eq!(again.rejected, vec![0]);
        // Usage aggregates dropped with the slot.
        assert_eq!(a.total_bandwidth().get(), 5 * 2);
    }

    #[test]
    fn failed_slots_are_quarantined_until_recovered() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0), v(1)])],
                vec![(t(0), vec![v(2), v(3), v(4), v(5), v(6), v(7), v(8), v(9)])],
            ],
            &w,
            cap,
        );
        let fail = ledger.fail_slots(&[0]);
        assert_eq!(fail.failed, vec![0]);
        // Re-placing the orphans must NOT resurrect the dead slot 0: the
        // co-host (slot 1, free 10) takes one pair, the rest opens a
        // fresh VM — which lands on a brand-new slot 2.
        let (topic, subs) = &fail.orphans[0];
        ledger.place_group(*topic, Rate::new(10), subs, cap);
        let slots = ledger.snapshot_slots();
        assert!(slots[0].failed && slots[0].tombstone && slots[0].rows.is_empty());
        assert_eq!(slots.len(), 3, "fresh VM opened a new slot, not slot 0");
        assert!(!slots[2].rows.is_empty());
        // Recovery returns the slot to the pool; the next fresh VM reuses
        // it lowest-first with a *fresh* capacity, not the stale one.
        assert!(ledger.recover_slot(0));
        assert!(!ledger.recover_slot(0), "already recovered");
        assert!(!ledger.recover_slot(9), "never failed");
        assert_eq!(ledger.failed_slot_count(), 0);
        // 10 new pairs: 8 fill slot 2's remaining headroom (co-host pass),
        // the spill opens a fresh VM — which must reuse recovered slot 0.
        let more = (10..20).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &more, Bandwidth::new(64));
        let slots = ledger.snapshot_slots();
        assert!(!slots[0].tombstone, "slot 0 reused after recovery");
        assert_eq!(
            slots[0].cap,
            Bandwidth::new(64),
            "capacity rewritten on reuse"
        );
        let a = ledger.to_allocation(cap);
        assert!(a.validate(&w, Rate::ZERO).is_ok());
    }

    #[test]
    fn failed_slots_round_trip_through_slot_snapshots() {
        let w = workload(&[10]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(
            vec![
                vec![(t(0), vec![v(0)])],
                vec![(t(0), vec![v(1), v(2), v(3), v(4)])],
            ],
            &w,
            cap,
        );
        ledger.fail_slots(&[0]);
        let mut restored = FleetLedger::from_slots(ledger.snapshot_slots());
        assert_eq!(restored.failed_slot_count(), 1);
        assert_eq!(restored.to_allocation(cap), ledger.to_allocation(cap));
        // The quarantine survives the round trip: both ledgers open a
        // fresh slot rather than reusing slot 0.
        let subs = (5..9).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, cap);
        restored.place_group(t(0), Rate::new(10), &subs, cap);
        assert_eq!(restored.snapshot_slots(), ledger.snapshot_slots());
        assert!(ledger.snapshot_slots()[0].failed);
    }

    #[test]
    fn contains_pair_tracks_placement() {
        let w = workload(&[10, 5]);
        let cap = Bandwidth::new(100);
        let mut ledger = ledger_with(vec![vec![(t(0), vec![v(0), v(1)])]], &w, cap);
        assert!(ledger.contains_pair(t(0), v(0)));
        assert!(!ledger.contains_pair(t(0), v(2)));
        assert!(!ledger.contains_pair(t(1), v(0)), "unhosted topic");
        ledger.remove_pair(t(0), v(0), Rate::new(10));
        assert!(!ledger.contains_pair(t(0), v(0)));
        ledger.fail_slots(&[0]);
        assert!(
            !ledger.contains_pair(t(0), v(1)),
            "failed slots host nothing"
        );
    }

    #[test]
    fn typed_fresh_vms_pick_the_cheapest_fitting_tier() {
        use crate::FleetTyping;
        use cloud_cost::instances;
        let w = workload(&[10]);
        let tiers = vec![
            (instances::C3_LARGE, Bandwidth::new(30)),
            (instances::C3_XLARGE, Bandwidth::new(100)),
        ];
        // Start from one full small VM so placement must open fresh VMs.
        let typed = Allocation::from_groups(
            vec![vec![(t(0), vec![v(0), v(1)])]],
            &w,
            Bandwidth::new(100),
        )
        .with_typing(FleetTyping::new(tiers.clone(), vec![0]));
        let mut ledger = FleetLedger::from_allocation(&typed);

        // A 6-pair group (whole = 70) only fits the big tier.
        let subs = (2..8).map(v).collect::<Vec<_>>();
        ledger.place_group(t(0), Rate::new(10), &subs, Bandwidth::new(100));
        let out = ledger.to_allocation(Bandwidth::new(100));
        out.validate(&w, Rate::ZERO).unwrap();
        assert_eq!(out.pair_count(), 2 + subs.len() as u64, "all pairs placed");
        let typing = out.typing().expect("typed ledger exports typing");
        // Fleet now holds the original small VM plus one big VM.
        assert_eq!(typing.tier_counts(), vec![1, 1]);
    }
}
