//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no call site
//! serializes through serde yet — on-disk traces go through the hand-rolled
//! TSV codec in `pubsub_traces::io`). This crate therefore provides the two
//! trait names plus no-op derive macros from [`serde_derive`], keeping every
//! type signature source-compatible with the real crate so it can be swapped
//! in unchanged once the build environment has registry access.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
