//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types but
//! never serializes at runtime (persistence is TSV via `pubsub_traces::io`),
//! so these derives only need to *accept* the items and their `#[serde(...)]`
//! attributes. They expand to nothing; swapping in the real `serde` later is
//! a Cargo.toml change only.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
