//! Shard-parallel solver benchmark: the full GSP+CBP pipeline monolithic
//! versus 2/4/8 shards at trace scale, for both partitioners.
//!
//! The merged allocation is validated once per configuration outside the
//! timing loop, so the numbers are pure solve+merge wall-clock.

use cloud_cost::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::scenario::{env_size, Scenario};
use mcss_core::{PartitionerKind, ShardingConfig, Solver, SolverParams};
use std::hint::black_box;

fn bench_sharded(c: &mut Criterion) {
    let scenarios = [
        Scenario::spotify(env_size("MCSS_SPOTIFY_SUBS", 20_000), 20140113),
        Scenario::twitter(env_size("MCSS_TWITTER_USERS", 10_000), 20131030),
    ];
    for scenario in &scenarios {
        let cost = scenario.cost_model(instances::C3_LARGE);
        let inst = scenario
            .instance(100, instances::C3_LARGE)
            .expect("valid capacity");
        let mut group = c.benchmark_group(format!("sharded/{}", scenario.name));
        group.sample_size(10);

        group.bench_with_input(BenchmarkId::new("monolithic", 1), &inst, |b, inst| {
            let solver = Solver::default();
            b.iter(|| black_box(solver.solve(inst, &cost).expect("feasible")));
        });

        for shards in [2usize, 4, 8] {
            for (label, partitioner) in [
                ("topic", PartitionerKind::TopicLocality),
                ("hash", PartitionerKind::Hash { seed: 42 }),
            ] {
                let params = SolverParams::default()
                    .with_sharding(ShardingConfig::new(shards).with_partitioner(partitioner));
                let solver = Solver::new(params);
                // Sanity outside the timed loop: merged fleets must stay
                // valid or the speedup numbers are meaningless.
                let outcome = solver.solve(&inst, &cost).expect("feasible");
                outcome
                    .allocation
                    .validate(inst.workload(), inst.tau())
                    .expect("merged allocation valid");
                group.bench_with_input(BenchmarkId::new(label, shards), &inst, |b, inst| {
                    b.iter(|| black_box(solver.solve(inst, &cost).expect("feasible")));
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
