//! RandomSelectPairs — Alg. 6, the naive Stage-1 baseline.

use super::PairSelector;
use crate::{McssError, Selection, SelectionBuilder};
use pubsub_model::{Rate, TopicId, WorkloadView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's naive baseline (Alg. 6): for each subscriber, take pairs
/// "in no particular order" until `τ_v` is reached.
///
/// "No particular order" is pinned to a seeded shuffle, so the same seed
/// over the same workload (interests *and* rates — the shuffle reads the
/// rate-ranked interest arena, the row every other selector consumes, so
/// RSP touches the same cache lines as GSP in back-to-back comparisons)
/// yields the same selection.
#[derive(Clone, Copy, Debug)]
pub struct RandomSelectPairs {
    seed: u64,
}

impl RandomSelectPairs {
    /// Creates the baseline with a shuffle seed.
    pub fn new(seed: u64) -> Self {
        RandomSelectPairs { seed }
    }
}

impl PairSelector for RandomSelectPairs {
    fn name(&self) -> &'static str {
        "RSP"
    }

    fn select_view(&self, view: WorkloadView<'_>, tau: Rate) -> Result<Selection, McssError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = SelectionBuilder::with_capacity(view.num_subscribers(), 0);
        let mut order: Vec<TopicId> = Vec::new();
        for v in view.subscribers() {
            let tau_v = view.tau_v(v, tau);
            order.clear();
            order.extend_from_slice(view.ranked_interests(v));
            shuffle(&mut order, &mut rng);
            builder.push_row_with(|row| {
                let mut delivered = Rate::ZERO;
                for &t in &order {
                    if delivered >= tau_v {
                        break;
                    }
                    delivered += view.rate(t);
                    row.push(t);
                }
            });
        }
        Ok(builder.build())
    }
}

fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::GreedySelectPairs;
    use crate::McssInstance;
    use pubsub_model::{Bandwidth, Workload};

    fn instance(tau: u64) -> McssInstance {
        let mut b = Workload::builder();
        let mut topics = Vec::new();
        for r in [50u64, 30, 20, 10, 5, 2, 1] {
            topics.push(b.add_topic(Rate::new(r)).unwrap());
        }
        b.add_subscriber(topics.iter().copied()).unwrap();
        b.add_subscriber(topics[2..].iter().copied()).unwrap();
        McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(1 << 40)).unwrap()
    }

    #[test]
    fn satisfies_all_subscribers() {
        for tau in [1u64, 10, 40, 1_000] {
            let inst = instance(tau);
            let s = RandomSelectPairs::new(7).select(&inst).unwrap();
            assert!(s.satisfies(inst.workload(), inst.tau()), "tau {tau}");
        }
    }

    #[test]
    fn stops_once_satisfied() {
        let inst = instance(5);
        let s = RandomSelectPairs::new(7).select(&inst).unwrap();
        for v in inst.workload().subscribers() {
            let sel = s.selected(v);
            // Dropping the last pick must leave the subscriber short:
            // RSP adds pairs only while delivered < τ_v.
            let without_last: Rate = sel[..sel.len() - 1]
                .iter()
                .map(|&t| inst.workload().rate(t))
                .sum();
            assert!(without_last < inst.tau_v(v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance(30);
        let a = RandomSelectPairs::new(1).select(&inst).unwrap();
        let b = RandomSelectPairs::new(1).select(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let inst = instance(30);
        let outcomes: Vec<Selection> = (0..10)
            .map(|seed| RandomSelectPairs::new(seed).select(&inst).unwrap())
            .collect();
        assert!(
            outcomes.windows(2).any(|w| w[0] != w[1]),
            "ten seeds produced identical random selections"
        );
    }

    #[test]
    fn costlier_than_greedy_on_average() {
        // The headline claim of §IV-C at the Stage-1 level: RSP pays more
        // Stage-1 bandwidth than GSP (averaged over seeds to avoid a
        // lucky shuffle).
        let inst = instance(25);
        let g = GreedySelectPairs::new().select(&inst).unwrap();
        let g_cost = g.stage1_cost(inst.workload()).get();
        let avg_r: f64 = (0..20)
            .map(|seed| {
                RandomSelectPairs::new(seed)
                    .select(&inst)
                    .unwrap()
                    .stage1_cost(inst.workload())
                    .get() as f64
            })
            .sum::<f64>()
            / 20.0;
        assert!(
            avg_r >= g_cost as f64,
            "random ({avg_r}) beat greedy ({g_cost}) on average"
        );
    }
}
