//! Event-sourced drift daemon: an append-only operation log folded into
//! epochs through the O(Δ) churn path, with checksummed snapshots and
//! bit-identical crash recovery.
//!
//! The paper evaluates MCSS as a batch solver, but its premise — the
//! fleet stays cost-optimal *as the workload drifts* (§IV-F, §VI) —
//! only pays off when the solver runs continuously. This module is that
//! run-forever layer:
//!
//! * [`Event`] — the three raw operations a pub/sub control plane
//!   emits (`Rerate`, `Subscribe`, `Unsubscribe`) plus the
//!   daemon-written `EpochMark` that pins epoch boundaries into the log;
//! * [`EventLog`] — an append-only, CRC-checksummed log with monotonic
//!   sequence numbers and torn-tail-tolerant replay;
//! * [`Snapshot`] — a point-in-time capture written as an `MCSSTOR1`
//!   store container: the full workload arenas (primaries *and* derived
//!   tables), the Stage-1 [`Selection`] CSR, the [`FleetLedger`] slot
//!   table, and the last applied sequence number, each a checksummed
//!   section, written atomically;
//! * [`Daemon`] — the serve loop: buffer events into the current epoch,
//!   close the epoch on a watermark ([`ServeConfig::with_epoch_events`])
//!   or an external tick ([`Daemon::tick`]), fold the buffered
//!   operations into a [`WorkloadDelta`] via
//!   [`pubsub_model::WorkloadEdit`], and apply them through
//!   [`IncrementalReallocator::step_with_delta`] so steady-state epoch
//!   cost is O(Δ);
//! * [`Driver`] — feeds the log from [`DriftModel`], making
//!   `mcss serve --trace spotify` self-exercising offline.
//!
//! # Crash consistency
//!
//! Recovery ([`Daemon::resume`]) loads the latest snapshot (if any) and
//! replays the log suffix past its sequence number, re-applying an
//! epoch at every `EpochMark`. A store-format snapshot already holds
//! every workload arena, so the daemon adopts it with zero rebuild —
//! only the ledger heaps and reverse index ([`FleetLedger::from_slots`])
//! and the re-allocator basis ([`IncrementalReallocator::restore`]) are
//! reconstructed, both cheap and deterministic. Legacy snapshots
//! rebuild the workload arenas once, on upcast inside
//! [`Snapshot::load`]. Either way every derived structure is a
//! deterministic function of the persisted state (the lazy heaps
//! tolerate stale entries but never require them), so the recovered
//! daemon is **bit-identical** to one that never stopped: same
//! selections, same placements, same future decisions. The crash-replay
//! property test (`crates/core/tests/serve_replay.rs`) kills a daemon
//! at an arbitrary event index and asserts exactly that — ranked and
//! follower arenas included.
//!
//! On-disk formats are documented field-by-field in `docs/SERVE.md`
//! (event log, legacy snapshots) and `docs/STORE.md` (the store
//! container snapshots use since format v3).

use crate::dynamic::{DriftModel, WorkloadDelta};
use crate::incremental::{IncrementalConfig, IncrementalReallocator, SlaBudget};
use crate::ledger::{FleetLedger, LedgerSlot};
use crate::stage2::SearchBudget;
use crate::{Allocation, McssError, McssInstance, Selection};
use cloud_cost::{CostModel, Money};
use mcss_store::{section as store_section, StoreBuilder, StoreError, StoreReader};
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload, WorkloadEdit};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Event-log file name inside a serve directory.
pub const LOG_FILE: &str = "events.log";
/// Snapshot file name inside a serve directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const LOG_MAGIC: &[u8; 8] = b"MCSSLOG1";
const SNAP_MAGIC: &[u8; 8] = b"MCSSNAP1";
/// Current event-log format. Version 2 added the `VmFail`/`VmRecover`
/// record kinds; version-1 logs upcast losslessly on open (their record
/// layouts are a strict subset), after which the header is rewritten in
/// place so the next append targets the current version.
const LOG_VERSION: u32 = 2;
/// Newest *legacy* snapshot format (`MCSSNAP1`). Version 2 widened the
/// per-slot tombstone byte into a state byte (0 = live, 1 = tombstoned,
/// 2 = failed); version-1 snapshots upcast on load with `failed = false`
/// everywhere. Format v3 abandoned this magic entirely: snapshots are
/// now `MCSSTOR1` store containers (see [`Snapshot`] and
/// `docs/STORE.md`), and [`Snapshot::load`] dispatches on the magic so
/// v1/v2 files keep loading via the rebuild path.
const SNAP_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Everything that can go wrong in the serve layer.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A log or snapshot file failed validation (bad magic, version,
    /// checksum, or internally inconsistent contents).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// An event or configuration was rejected before touching any state.
    Rejected(String),
    /// The solver could not apply an epoch (e.g. an infeasible topic).
    Solve(McssError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Corrupt { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            ServeError::Rejected(why) => write!(f, "{why}"),
            ServeError::Solve(e) => write!(f, "epoch apply failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<McssError> for ServeError {
    fn from(e: McssError) -> Self {
        ServeError::Solve(e)
    }
}

// ---------------------------------------------------------------------
// CRC32 and little-endian codec helpers
// ---------------------------------------------------------------------

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), shared with the store
// container so log records, legacy snapshots, and store sections all
// checksum identically. The store's table-driven implementation replaced
// the bitwise loop that used to live here — snapshots grew to tens of
// megabytes at a million subscribers, where bitwise CRC alone costs
// ~100 ms per write.
use mcss_store::crc32;

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------
// Disk-fault injection
// ---------------------------------------------------------------------

/// One injected disk fault, armed on a [`FaultInjector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The next write persists only the first `keep` bytes of its buffer
    /// and then errors; every later write on that file errors too (the
    /// device is gone). This is the torn-write / dying-disk case.
    ShortWrite {
        /// Bytes of the faulted write that still reach the file.
        keep: usize,
    },
    /// The next `times` fsync calls fail (and persist nothing extra);
    /// writes keep working. This is the transient-controller case the
    /// daemon's retry/backoff knobs exist for.
    SyncFail {
        /// How many consecutive sync calls fail before syncs recover.
        times: u32,
    },
}

#[derive(Debug, Default)]
struct FaultState {
    short_write: Option<usize>,
    sync_fails: u32,
    /// Set after a short write fired: the "device" stays broken.
    dead: bool,
}

/// Shared handle that arms disk faults on the files wrapped by
/// [`EventLog::create_with_faults`] and
/// [`Snapshot::write_with_faults`]. Cloning shares the armed state, so a
/// test can hold one handle while the daemon owns the wrapped file.
///
/// Bit-flip faults have no injection point here on purpose: they model
/// at-rest corruption, which tests apply by rewriting the file bytes
/// directly (see `crates/core/tests/fault_injection.rs`).
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    state: Arc<std::sync::Mutex<FaultState>>,
}

impl FaultInjector {
    /// A fresh injector with no faults armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms one fault. `ShortWrite` replaces any armed short write;
    /// `SyncFail` replaces the armed sync-failure count.
    pub fn arm(&self, fault: IoFault) {
        let mut s = self.state.lock().unwrap();
        match fault {
            IoFault::ShortWrite { keep } => s.short_write = Some(keep),
            IoFault::SyncFail { times } => s.sync_fails = times,
        }
    }

    /// Clears all armed faults and revives a dead device.
    pub fn disarm(&self) {
        *self.state.lock().unwrap() = FaultState::default();
    }

    fn injected(detail: &str) -> std::io::Error {
        std::io::Error::other(format!("injected fault: {detail}"))
    }
}

/// A [`File`] wrapper that consults a [`FaultInjector`] on every write
/// and sync. With no injector it is a zero-overhead passthrough — the
/// production [`EventLog`] always runs through this type so the faulted
/// and unfaulted paths cannot drift apart.
#[derive(Debug)]
struct FaultFile {
    file: File,
    injector: Option<FaultInjector>,
}

impl FaultFile {
    fn sync_data(&self) -> std::io::Result<()> {
        if let Some(inj) = &self.injector {
            let mut s = inj.state.lock().unwrap();
            if s.dead {
                return Err(FaultInjector::injected("device failed"));
            }
            if s.sync_fails > 0 {
                s.sync_fails -= 1;
                return Err(FaultInjector::injected("fsync failed"));
            }
        }
        self.file.sync_data()
    }

    fn set_len(&self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }
}

impl std::io::Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(inj) = &self.injector {
            let mut s = inj.state.lock().unwrap();
            if s.dead {
                return Err(FaultInjector::injected("device failed"));
            }
            if let Some(keep) = s.short_write.take() {
                s.dead = true;
                drop(s);
                let keep = keep.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                return Err(FaultInjector::injected("short write"));
            }
        }
        self.file.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.file.seek(pos)
    }
}

// ---------------------------------------------------------------------
// Events and the append-only log
// ---------------------------------------------------------------------

/// One logged operation (module docs; on-disk layout in `docs/SERVE.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Sets (or, for the next unused topic id, introduces) a topic's
    /// event rate.
    Rerate {
        /// The re-rated topic.
        topic: TopicId,
        /// Its new `ev_t`.
        rate: Rate,
    },
    /// Adds the pair `(topic, subscriber)` to the interest relation.
    Subscribe {
        /// The subscriber gaining an interest.
        subscriber: SubscriberId,
        /// The topic subscribed to (must have a rate already).
        topic: TopicId,
    },
    /// Removes the pair `(topic, subscriber)`; a no-op if absent.
    Unsubscribe {
        /// The subscriber losing an interest.
        subscriber: SubscriberId,
        /// The topic unsubscribed from.
        topic: TopicId,
    },
    /// Epoch boundary, written by the daemon itself when it closes an
    /// epoch — never submitted by callers. Pinning boundaries into the
    /// log makes replay group events into exactly the original epochs,
    /// whether they were closed by watermark or by wall-clock tick.
    EpochMark {
        /// The (0-based) index of the epoch this mark closed.
        epoch: u64,
    },
    /// A VM died (log format v2). The ledger slot is quarantined at the
    /// next epoch close and its orphaned pairs are re-placed under the
    /// configured [`ServeConfig::repair_budget`].
    VmFail {
        /// Ledger slot index of the failed VM.
        slot: u32,
    },
    /// A failed VM came back (log format v2): its quarantined slot
    /// rejoins the fresh-VM reuse pool at the next epoch close.
    VmRecover {
        /// Ledger slot index of the recovered VM.
        slot: u32,
    },
}

const KIND_RERATE: u8 = 0;
const KIND_SUBSCRIBE: u8 = 1;
const KIND_UNSUBSCRIBE: u8 = 2;
const KIND_EPOCH_MARK: u8 = 3;
const KIND_VM_FAIL: u8 = 4;
const KIND_VM_RECOVER: u8 = 5;

impl Event {
    fn encode_payload(self, seq: u64, buf: &mut Vec<u8>) {
        put_u64(buf, seq);
        match self {
            Event::Rerate { topic, rate } => {
                buf.push(KIND_RERATE);
                put_u32(buf, topic.index() as u32);
                put_u64(buf, rate.get());
            }
            Event::Subscribe { subscriber, topic } => {
                buf.push(KIND_SUBSCRIBE);
                put_u32(buf, subscriber.index() as u32);
                put_u32(buf, topic.index() as u32);
            }
            Event::Unsubscribe { subscriber, topic } => {
                buf.push(KIND_UNSUBSCRIBE);
                put_u32(buf, subscriber.index() as u32);
                put_u32(buf, topic.index() as u32);
            }
            Event::EpochMark { epoch } => {
                buf.push(KIND_EPOCH_MARK);
                put_u64(buf, epoch);
            }
            Event::VmFail { slot } => {
                buf.push(KIND_VM_FAIL);
                put_u32(buf, slot);
            }
            Event::VmRecover { slot } => {
                buf.push(KIND_VM_RECOVER);
                put_u32(buf, slot);
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Option<(u64, Event)> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let event = match r.u8()? {
            KIND_RERATE => Event::Rerate {
                topic: TopicId::new(r.u32()?),
                rate: Rate::new(r.u64()?),
            },
            KIND_SUBSCRIBE => Event::Subscribe {
                subscriber: SubscriberId::new(r.u32()?),
                topic: TopicId::new(r.u32()?),
            },
            KIND_UNSUBSCRIBE => Event::Unsubscribe {
                subscriber: SubscriberId::new(r.u32()?),
                topic: TopicId::new(r.u32()?),
            },
            KIND_EPOCH_MARK => Event::EpochMark { epoch: r.u64()? },
            KIND_VM_FAIL => Event::VmFail { slot: r.u32()? },
            KIND_VM_RECOVER => Event::VmRecover { slot: r.u32()? },
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some((seq, event))
    }
}

/// A replayed log record: the event and its sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SequencedEvent {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// The logged event.
    pub event: Event,
}

/// Append-only, checksummed event log (module docs).
///
/// Every record carries a CRC32 and a monotonic sequence number; replay
/// stops at the first record that fails validation and truncates the
/// file there, so a write torn by a crash costs at most the torn record
/// — never the log.
///
/// ```
/// use mcss_core::serve::{Event, EventLog};
/// use pubsub_model::{Rate, TopicId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join(format!("mcss-log-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("events.log");
///
/// let mut log = EventLog::create(&path)?;
/// let seq = log.append(Event::Rerate { topic: TopicId::new(0), rate: Rate::new(20) })?;
/// assert_eq!(seq, 1);
/// log.sync()?;
/// drop(log);
///
/// let (log, records) = EventLog::open(&path)?;
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].seq, 1);
/// assert_eq!(log.next_seq(), 2);
/// # drop(log);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventLog {
    writer: BufWriter<FaultFile>,
    next_seq: u64,
}

impl EventLog {
    /// Creates (or truncates) the log at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Any [`ServeError::Io`] from creating or writing the file.
    pub fn create(path: &Path) -> Result<EventLog, ServeError> {
        EventLog::create_with_faults(path, None)
    }

    /// Like [`EventLog::create`], with every write and sync routed
    /// through `injector` — the hook the disk-fault tests use.
    ///
    /// # Errors
    ///
    /// Any [`ServeError::Io`] from creating or writing the file.
    pub fn create_with_faults(
        path: &Path,
        injector: Option<FaultInjector>,
    ) -> Result<EventLog, ServeError> {
        let mut file = FaultFile {
            file: File::create(path)?,
            injector,
        };
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(LOG_MAGIC);
        put_u32(&mut header, LOG_VERSION);
        file.write_all(&header)?;
        Ok(EventLog {
            writer: BufWriter::new(file),
            next_seq: 1,
        })
    }

    /// Opens an existing log, replaying every valid record. A torn or
    /// corrupt tail is truncated (replay keeps the valid prefix); the
    /// returned log appends after the last valid record. Older log
    /// versions upcast on open: v1 records decode unchanged under v2
    /// (v2 only *added* record kinds), and the header is rewritten in
    /// place so subsequent appends are v2 records in a v2 log.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corrupt`] if the header itself is invalid,
    /// [`ServeError::Io`] on filesystem failures.
    pub fn open(path: &Path) -> Result<(EventLog, Vec<SequencedEvent>), ServeError> {
        EventLog::open_with_faults(path, None)
    }

    /// Like [`EventLog::open`], with every write and sync routed through
    /// `injector`.
    ///
    /// # Errors
    ///
    /// As [`EventLog::open`].
    pub fn open_with_faults(
        path: &Path,
        injector: Option<FaultInjector>,
    ) -> Result<(EventLog, Vec<SequencedEvent>), ServeError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut file = FaultFile { file, injector };
        if bytes.is_empty() {
            // Crashed before the header hit the disk: start fresh.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(LOG_MAGIC);
            put_u32(&mut header, LOG_VERSION);
            file.write_all(&header)?;
            return Ok((
                EventLog {
                    writer: BufWriter::new(file),
                    next_seq: 1,
                },
                Vec::new(),
            ));
        }
        if bytes.len() < 12 || &bytes[..8] != LOG_MAGIC {
            return Err(ServeError::Corrupt {
                path: path.to_path_buf(),
                detail: "not an mcss event log (bad magic)".into(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == 0 || version > LOG_VERSION {
            return Err(ServeError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "unsupported event log version {version} (this build reads up to {LOG_VERSION})"
                ),
            });
        }

        let mut records = Vec::new();
        let mut pos = 12usize;
        let mut last_seq = 0u64;
        loop {
            let mut r = Reader::new(&bytes[pos..]);
            let Some(crc) = r.u32() else { break };
            let Some(len) = r.u32() else { break };
            let Some(payload) = r.take(len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let Some((seq, event)) = Event::decode_payload(payload) else {
                break;
            };
            if seq != last_seq + 1 {
                break;
            }
            last_seq = seq;
            records.push(SequencedEvent { seq, event });
            pos += 8 + len as usize;
        }
        if version < LOG_VERSION {
            // Upcast in place: future appends write current-version
            // records, so the header must claim the current version.
            file.seek(SeekFrom::Start(8))?;
            file.write_all(&LOG_VERSION.to_le_bytes())?;
        }
        if pos < bytes.len() {
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((
            EventLog {
                writer: BufWriter::new(file),
                next_seq: last_seq + 1,
            },
            records,
        ))
    }

    /// Appends one event, returning the sequence number it was assigned.
    /// Writes are buffered; call [`EventLog::sync`] to make them
    /// durable (the daemon does so at every epoch boundary).
    ///
    /// # Errors
    ///
    /// Any [`ServeError::Io`] from the buffered write.
    pub fn append(&mut self, event: Event) -> Result<u64, ServeError> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(24);
        event.encode_payload(seq, &mut payload);
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, crc32(&payload));
        put_u32(&mut record, payload.len() as u32);
        record.extend_from_slice(&payload);
        self.writer.write_all(&record)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Flushes buffered records and fsyncs the file.
    ///
    /// # Errors
    ///
    /// Any [`ServeError::Io`] from the flush or sync.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// The sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A checksummed point-in-time capture of the daemon's state (module
/// docs; on-disk layout in `docs/STORE.md` and `docs/SERVE.md`).
///
/// Since format v3 a snapshot is an `MCSSTOR1` store container whose
/// sections are the raw arenas — the full workload (primaries *and*
/// derived tables), the Stage-1 selection CSR, and the ledger slot
/// table — so [`Snapshot::load`] performs **zero rebuild**: no interest
/// transpose, no rate ranking, just checksum sweeps and bounds checks.
/// Legacy `MCSSNAP1` (v1/v2) snapshots, which stored primaries only,
/// still load with the old rebuild path and are upcast transparently.
///
/// ```
/// use mcss_core::serve::Snapshot;
/// use mcss_core::Selection;
/// use pubsub_model::{Bandwidth, Rate, TopicId, Workload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join(format!("mcss-snap-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("snapshot.bin");
///
/// let snapshot = Snapshot {
///     last_seq: 3,
///     epochs_applied: 1,
///     tau: Rate::new(10),
///     capacity: Bandwidth::new(50),
///     workload: Workload::from_parts(vec![Rate::new(10)], vec![vec![TopicId::new(0)]]),
///     selection: Selection::from_csr(vec![0, 1], vec![TopicId::new(0)]),
///     slots: Vec::new(),
/// };
/// snapshot.write(&path)?;   // atomically: tmp file + rename
/// let loaded = Snapshot::load(&path)?;
/// assert_eq!(loaded.last_seq, 3);
/// assert_eq!(loaded.workload, snapshot.workload); // bit-identical, zero rebuild
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Sequence number of the last applied `EpochMark`; replay resumes
    /// with the first record after it.
    pub last_seq: u64,
    /// Number of epochs applied so far.
    pub epochs_applied: u64,
    /// The satisfaction threshold the daemon runs at.
    pub tau: Rate,
    /// The per-VM capacity the daemon runs at.
    pub capacity: Bandwidth,
    /// The full workload as of the last applied epoch — all six arenas,
    /// persisted verbatim so recovery never re-derives them.
    pub workload: Workload,
    /// The Stage-1 selection as of the last applied epoch.
    pub selection: Selection,
    /// The fleet ledger's slot table, tombstones included.
    pub slots: Vec<LedgerSlot>,
}

impl Snapshot {
    /// The legacy `MCSSNAP1` body: primaries only (rates + interest
    /// rows), derived from the workload arenas. Kept so
    /// [`Snapshot::write_legacy`] can produce v1/v2 files for upcast
    /// tests and before/after recovery benchmarks.
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, self.last_seq);
        put_u64(&mut b, self.epochs_applied);
        put_u64(&mut b, self.tau.get());
        put_u64(&mut b, self.capacity.get());
        let rates = self.workload.rates();
        put_u32(&mut b, rates.len() as u32);
        for r in rates {
            put_u64(&mut b, r.get());
        }
        put_u32(&mut b, self.workload.num_subscribers() as u32);
        for v in self.workload.subscribers() {
            let row = self.workload.interests(v);
            put_u32(&mut b, row.len() as u32);
            for t in row {
                put_u32(&mut b, t.index() as u32);
            }
        }
        put_u32(&mut b, self.selection.num_subscribers() as u32);
        for row in self.selection.rows() {
            put_u32(&mut b, row.len() as u32);
            for t in row {
                put_u32(&mut b, t.index() as u32);
            }
        }
        put_u32(&mut b, self.slots.len() as u32);
        for slot in &self.slots {
            // Slot-state byte (format v2): 0 live, 1 tombstoned, 2
            // failed (failure implies tombstone).
            b.push(if slot.failed {
                2
            } else {
                u8::from(slot.tombstone)
            });
            put_u64(&mut b, slot.cap.get());
            put_u64(&mut b, slot.used.get());
            put_u32(&mut b, slot.rows.len() as u32);
            for (t, subs) in &slot.rows {
                put_u32(&mut b, t.index() as u32);
                put_u32(&mut b, subs.len() as u32);
                for v in subs {
                    put_u32(&mut b, v.index() as u32);
                }
            }
        }
        b
    }

    fn decode_body(body: &[u8], version: u32) -> Option<Snapshot> {
        let mut r = Reader::new(body);
        let last_seq = r.u64()?;
        let epochs_applied = r.u64()?;
        let tau = Rate::new(r.u64()?);
        let capacity = Bandwidth::new(r.u64()?);
        let num_topics = r.u32()? as usize;
        let mut rates = Vec::with_capacity(num_topics);
        for _ in 0..num_topics {
            rates.push(Rate::new(r.u64()?));
        }
        let num_subscribers = r.u32()? as usize;
        let mut interests = Vec::with_capacity(num_subscribers);
        for _ in 0..num_subscribers {
            let len = r.u32()? as usize;
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                row.push(TopicId::new(r.u32()?));
            }
            interests.push(row);
        }
        let sel_rows = r.u32()? as usize;
        let mut offsets = Vec::with_capacity(sel_rows + 1);
        let mut topics = Vec::new();
        offsets.push(0usize);
        for _ in 0..sel_rows {
            let len = r.u32()? as usize;
            for _ in 0..len {
                topics.push(TopicId::new(r.u32()?));
            }
            offsets.push(topics.len());
        }
        let selection = Selection::from_csr(offsets, topics);
        let num_slots = r.u32()? as usize;
        let mut slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            // v1 stored a tombstone bool; v2 a three-valued state byte.
            // A v1 snapshot predates VM failures, so `failed` upcasts
            // to false.
            let (tombstone, failed) = match (version, r.u8()?) {
                (1, b) => (b != 0, false),
                (_, 0) => (false, false),
                (_, 1) => (true, false),
                (_, 2) => (true, true),
                _ => return None,
            };
            let cap = Bandwidth::new(r.u64()?);
            let used = Bandwidth::new(r.u64()?);
            let num_rows = r.u32()? as usize;
            let mut rows = Vec::with_capacity(num_rows);
            for _ in 0..num_rows {
                let t = TopicId::new(r.u32()?);
                let len = r.u32()? as usize;
                let mut subs = Vec::with_capacity(len);
                for _ in 0..len {
                    subs.push(SubscriberId::new(r.u32()?));
                }
                rows.push((t, subs));
            }
            slots.push(LedgerSlot {
                tombstone,
                failed,
                cap,
                used,
                rows,
            });
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(Snapshot {
            last_seq,
            epochs_applied,
            tau,
            capacity,
            // Legacy snapshots carry primaries only; the derived arenas
            // (follower CSR, rate ranking) are rebuilt here, once, on
            // upcast. Store-format snapshots skip this entirely.
            workload: Workload::from_parts(rates, interests),
            selection,
            slots,
        })
    }

    /// Serializes the v3 snapshot: an `MCSSTOR1` container holding the
    /// serve metadata plus every arena section verbatim.
    fn to_store_bytes(&self) -> Vec<u8> {
        let mut store = StoreBuilder::new();
        store.u64s(
            store_section::SERVE_META,
            &[
                self.last_seq,
                self.epochs_applied,
                self.tau.get(),
                self.capacity.get(),
            ],
        );
        mcss_store::write_workload_sections(&mut store, &self.workload);
        crate::store::write_selection_sections(&mut store, &self.selection);
        crate::store::write_ledger_sections(&mut store, &self.slots);
        store.to_bytes()
    }

    /// Deserializes a v3 (store-container) snapshot with zero derived-
    /// state rebuild.
    fn from_store_bytes(bytes: Vec<u8>, path: &Path) -> Result<Snapshot, ServeError> {
        let as_corrupt = |e: StoreError| ServeError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("corrupted snapshot: {e}"),
        };
        let mut reader = StoreReader::from_bytes(bytes).map_err(as_corrupt)?;
        let meta = reader.u64s(store_section::SERVE_META).map_err(as_corrupt)?;
        let [last_seq, epochs_applied, tau, capacity] = meta[..] else {
            return Err(ServeError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "corrupted snapshot: section `serve-meta` must hold 4 u64s, found {}",
                    meta.len()
                ),
            });
        };
        let workload = mcss_store::read_workload_sections(&mut reader).map_err(as_corrupt)?;
        let selection = crate::store::read_selection_sections(&reader).map_err(as_corrupt)?;
        let slots = crate::store::read_ledger_sections(&reader).map_err(as_corrupt)?;
        Ok(Snapshot {
            last_seq,
            epochs_applied,
            tau: Rate::new(tau),
            capacity: Bandwidth::new(capacity),
            workload,
            selection,
            slots,
        })
    }

    /// Writes the snapshot atomically: the encoded, checksummed bytes go
    /// to `<path>.tmp`, which is fsynced and renamed over `path` — a
    /// crash mid-write leaves the previous snapshot intact.
    ///
    /// # Errors
    ///
    /// Any [`ServeError::Io`] from writing, syncing or renaming.
    pub fn write(&self, path: &Path) -> Result<(), ServeError> {
        self.write_with_faults(path, None)
    }

    /// Like [`Snapshot::write`], with the tmp-file write and sync routed
    /// through `injector`. The atomicity contract is what the fault
    /// tests probe: a fault anywhere before the rename leaves the
    /// previous snapshot untouched.
    ///
    /// # Errors
    ///
    /// As [`Snapshot::write`].
    pub fn write_with_faults(
        &self,
        path: &Path,
        injector: Option<FaultInjector>,
    ) -> Result<(), ServeError> {
        let bytes = self.to_store_bytes();
        let tmp = path.with_extension("bin.tmp");
        let mut file = FaultFile {
            file: File::create(&tmp)?,
            injector,
        };
        file.write_all(&bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Writes the snapshot in the *legacy* `MCSSNAP1` v2 layout
    /// (primaries only, single whole-body checksum), atomically like
    /// [`Snapshot::write`]. Loading such a file pays the full derived-
    /// state rebuild — exactly what pre-store daemons did — so this
    /// exists for upcast tests and for benchmarking recovery before vs
    /// after the store format (`fig_store_load`).
    ///
    /// # Errors
    ///
    /// As [`Snapshot::write`].
    pub fn write_legacy(&self, path: &Path) -> Result<(), ServeError> {
        let body = self.encode_body();
        let mut bytes = Vec::with_capacity(24 + body.len());
        bytes.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut bytes, SNAP_VERSION);
        put_u32(&mut bytes, crc32(&body));
        put_u64(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&body);

        let tmp = path.with_extension("bin.tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates a snapshot, dispatching on the file magic:
    /// `MCSSTOR1` containers (format v3) load with zero rebuild; legacy
    /// `MCSSNAP1` files (v1/v2) decode the old primaries-only body and
    /// rebuild derived state once, on upcast.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corrupt`] on bad magic, unsupported version,
    /// checksum mismatch, or truncated/inconsistent contents — naming
    /// the failing store section where one is attributable;
    /// [`ServeError::Io`] on filesystem failures.
    pub fn load(path: &Path) -> Result<Snapshot, ServeError> {
        let corrupt = |detail: &str| ServeError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("corrupted snapshot: {detail}"),
        };
        let bytes = fs::read(path)?;
        if bytes.len() >= 8 && &bytes[..8] == mcss_store::MAGIC {
            return Snapshot::from_store_bytes(bytes, path);
        }
        if bytes.len() < 24 || &bytes[..8] != SNAP_MAGIC {
            return Err(corrupt("not an mcss snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == 0 || version > SNAP_VERSION {
            return Err(ServeError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "unsupported snapshot version {version} (this build reads up to {SNAP_VERSION})"
                ),
            });
        }
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let Some(body) = bytes.get(24..24 + body_len) else {
            return Err(corrupt("truncated body"));
        };
        if crc32(body) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        Snapshot::decode_body(body, version).ok_or_else(|| corrupt("inconsistent body"))
    }
}

// ---------------------------------------------------------------------
// The serve loop
// ---------------------------------------------------------------------

/// Serve-loop configuration, builder style.
///
/// ```
/// use mcss_core::serve::ServeConfig;
/// use pubsub_model::{Bandwidth, Rate};
///
/// let config = ServeConfig::new(Rate::new(40), Bandwidth::new(1_000))
///     .with_epoch_events(500)   // close an epoch every 500 events
///     .with_snapshot_every(4);  // snapshot every 4 epochs
/// assert_eq!(config.epoch_events, Some(500));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Satisfaction threshold `τ`.
    pub tau: Rate,
    /// Per-VM bandwidth capacity `BC`.
    pub capacity: Bandwidth,
    /// Watermark: close an epoch after this many buffered events. `None`
    /// means epochs close only on [`Daemon::tick`] (e.g. a wall-clock
    /// timer). Must be positive when set.
    pub epoch_events: Option<u64>,
    /// Write a snapshot every this many applied epochs; `0` disables
    /// periodic snapshots ([`Daemon::snapshot_now`] still works).
    pub snapshot_every: u64,
    /// Worker threads for shard-parallel epoch repair; `1` repairs on the
    /// calling thread. The repaired selection is bit-identical either way,
    /// so this is a runtime knob — it is not recorded in snapshots and may
    /// differ across [`Daemon::resume`] calls. Must be positive.
    pub threads: usize,
    /// Per-epoch SLA budget for VM-failure repair: at most this many
    /// orphaned pairs are re-placed per epoch close, the rest carry over.
    /// `None` drains every orphan in the epoch it is noticed. Only a
    /// pairs budget exists here — a wall-clock deadline would make
    /// crash replay non-deterministic, so it is a CLI-drill-only knob
    /// ([`crate::incremental::SlaBudget::deadline`]). This budget shapes
    /// state evolution, so resume with the value the log was written
    /// under (like `tau`, unlike `threads`).
    pub repair_budget: Option<u64>,
    /// Extra attempts after a failed epoch-boundary fsync before the
    /// error propagates; `0` fails fast. Runtime knob, like `threads`.
    pub sync_retries: u32,
    /// Sleep between fsync retries, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Run a Stage-2 compaction pass
    /// ([`IncrementalReallocator::compact`]) every this many applied
    /// epochs; `None` disables compaction. Like `repair_budget` this
    /// shapes state evolution, so resume with the value the log was
    /// written under. Must be positive when set.
    pub compact_every: Option<u64>,
    /// Local-search step budget per compaction pass. Steps, not
    /// wall-clock: a time budget would make crash replay
    /// non-deterministic (the replayed pass could stop at a different
    /// move and rebuild a different fleet). Must be positive when
    /// compaction is enabled.
    pub compact_steps: u64,
}

impl ServeConfig {
    /// A configuration with no watermark and snapshots every 8 epochs.
    pub fn new(tau: Rate, capacity: Bandwidth) -> ServeConfig {
        ServeConfig {
            tau,
            capacity,
            epoch_events: None,
            snapshot_every: 8,
            threads: 1,
            repair_budget: None,
            sync_retries: 0,
            retry_backoff_ms: 0,
            compact_every: None,
            compact_steps: 0,
        }
    }

    /// Enables periodic Stage-2 compaction: every `epochs` applied
    /// epochs, spend up to `steps` local-search moves re-packing the
    /// fleet (see [`ServeConfig::compact_every`]).
    pub fn with_compaction(mut self, epochs: u64, steps: u64) -> ServeConfig {
        self.compact_every = Some(epochs);
        self.compact_steps = steps;
        self
    }

    /// Sets the per-epoch repair budget (see
    /// [`ServeConfig::repair_budget`]).
    pub fn with_repair_budget(mut self, pairs: u64) -> ServeConfig {
        self.repair_budget = Some(pairs);
        self
    }

    /// Sets fsync retry count and backoff (see
    /// [`ServeConfig::sync_retries`]).
    pub fn with_sync_retries(mut self, retries: u32, backoff_ms: u64) -> ServeConfig {
        self.sync_retries = retries;
        self.retry_backoff_ms = backoff_ms;
        self
    }

    /// Sets the event-count watermark (see [`ServeConfig::epoch_events`]).
    pub fn with_epoch_events(mut self, events: u64) -> ServeConfig {
        self.epoch_events = Some(events);
        self
    }

    /// Sets the snapshot cadence (see [`ServeConfig::snapshot_every`]).
    pub fn with_snapshot_every(mut self, epochs: u64) -> ServeConfig {
        self.snapshot_every = epochs;
        self
    }

    /// Sets the repair worker-thread count (see [`ServeConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> ServeConfig {
        self.threads = threads;
        self
    }
}

/// One applied epoch's statistics, as printed by `mcss serve` and
/// aggregated into the run summary.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// 0-based index of the applied epoch.
    pub epoch: u64,
    /// Events folded into this epoch.
    pub events_applied: u64,
    /// Pairs newly placed (selection growth plus evictions).
    pub pairs_placed: u64,
    /// Pairs removed from the fleet.
    pub pairs_removed: u64,
    /// Pairs evicted from overflowing VMs and re-placed.
    pub pairs_evicted: u64,
    /// Selection rows reused verbatim by dirty tracking.
    pub pairs_reused: u64,
    /// Whether the compaction floor forced a full re-solve.
    pub full_resolve: bool,
    /// VMs failed by `VmFail` events folded into this epoch.
    pub vms_failed: usize,
    /// Orphaned pairs re-placed by failure repair this epoch (within
    /// [`ServeConfig::repair_budget`]).
    pub pairs_repaired: u64,
    /// Orphaned pairs still deferred after this epoch's repair round.
    pub repair_deferred: u64,
    /// Local-search moves applied by this epoch's compaction pass
    /// (0 when compaction is disabled, skipped, or found no move).
    pub compaction_moves: u64,
    /// Fleet cost saved by this epoch's compaction pass.
    pub compaction_saved: Money,
    /// Live VMs after the epoch.
    pub vm_count: usize,
    /// Fleet cost `C1(|B|) + C2(Σ bw)` after the epoch.
    pub fleet_cost: Money,
    /// Wall-clock time to fold and apply the epoch.
    pub apply_time: Duration,
}

/// The event-sourced serve loop (module docs).
///
/// Build one with [`Daemon::create`] (fresh state directory) or
/// [`Daemon::resume`] (recover from snapshot + log). Feed it events with
/// [`Daemon::submit`]; epochs close on the configured watermark or an
/// explicit [`Daemon::tick`].
///
/// ```
/// use cloud_cost::{LinearCostModel, Money};
/// use mcss_core::serve::{Daemon, Event, ServeConfig};
/// use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join(format!("mcss-daemon-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
///
/// let config = ServeConfig::new(Rate::new(10), Bandwidth::new(50))
///     .with_epoch_events(2)
///     .with_snapshot_every(1);
/// let cost = Box::new(LinearCostModel::vm_only(Money::from_dollars(1)));
/// let mut daemon = Daemon::create(&dir, config, cost)?;
///
/// daemon.submit(Event::Rerate { topic: TopicId::new(0), rate: Rate::new(10) })?;
/// // The second event reaches the watermark and applies epoch 0.
/// let stats = daemon
///     .submit(Event::Subscribe { subscriber: SubscriberId::new(0), topic: TopicId::new(0) })?
///     .expect("watermark closes the epoch");
/// assert_eq!(stats.epoch, 0);
/// assert_eq!(stats.vm_count, 1);
/// assert_eq!(daemon.epochs_applied(), 1);
/// # drop(daemon);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Daemon {
    dir: PathBuf,
    config: ServeConfig,
    cost: Box<dyn CostModel>,
    log: EventLog,
    edit: WorkloadEdit,
    prev: Option<Arc<Workload>>,
    realloc: IncrementalReallocator,
    epochs_applied: u64,
    pending: u64,
    last_applied: u64,
    /// Buffered `VmFail`/`VmRecover` events of the open epoch — they
    /// bypass the workload mirror and fold into the ledger at the next
    /// epoch close, after the drift step.
    fleet_ops: Vec<Event>,
    faults: Option<FaultInjector>,
}

impl Daemon {
    /// Starts a daemon with a fresh state directory (created if needed;
    /// an existing log is truncated).
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] on an invalid configuration
    /// (`epoch_events == Some(0)`), [`ServeError::Io`] on filesystem
    /// failures.
    pub fn create(
        dir: &Path,
        config: ServeConfig,
        cost: Box<dyn CostModel>,
    ) -> Result<Daemon, ServeError> {
        Daemon::create_with_faults(dir, config, cost, None)
    }

    /// Like [`Daemon::create`], with every log and snapshot write routed
    /// through `injector` — the disk-fault test hook.
    ///
    /// # Errors
    ///
    /// As [`Daemon::create`].
    pub fn create_with_faults(
        dir: &Path,
        config: ServeConfig,
        cost: Box<dyn CostModel>,
        faults: Option<FaultInjector>,
    ) -> Result<Daemon, ServeError> {
        Daemon::check_config(&config)?;
        fs::create_dir_all(dir)?;
        let log = EventLog::create_with_faults(&dir.join(LOG_FILE), faults.clone())?;
        Ok(Daemon {
            dir: dir.to_path_buf(),
            config,
            cost,
            log,
            edit: WorkloadEdit::new(),
            prev: None,
            realloc: IncrementalReallocator::new(
                IncrementalConfig::default().with_repair_threads(config.threads),
            ),
            epochs_applied: 0,
            pending: 0,
            last_applied: 0,
            fleet_ops: Vec::new(),
            faults,
        })
    }

    /// Recovers a daemon from a state directory: loads the snapshot (if
    /// one exists), rebuilds every derived structure from its primaries,
    /// and replays the log suffix — re-applying an epoch at every
    /// `EpochMark` and leaving trailing events buffered, exactly as they
    /// were before the crash. `config` and the cost model must match the
    /// original run; `τ`/capacity mismatches are rejected against the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corrupt`] for an invalid snapshot, an invalid log
    /// header, or a log inconsistent with the snapshot;
    /// [`ServeError::Rejected`] on config mismatch; [`ServeError::Solve`]
    /// if a replayed epoch fails to apply.
    pub fn resume(
        dir: &Path,
        config: ServeConfig,
        cost: Box<dyn CostModel>,
    ) -> Result<Daemon, ServeError> {
        Daemon::resume_with_faults(dir, config, cost, None)
    }

    /// Like [`Daemon::resume`], with every log and snapshot write routed
    /// through `injector`.
    ///
    /// # Errors
    ///
    /// As [`Daemon::resume`].
    pub fn resume_with_faults(
        dir: &Path,
        config: ServeConfig,
        cost: Box<dyn CostModel>,
        faults: Option<FaultInjector>,
    ) -> Result<Daemon, ServeError> {
        Daemon::check_config(&config)?;
        fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let log_path = dir.join(LOG_FILE);

        let mut edit = WorkloadEdit::new();
        let mut prev = None;
        let mut realloc = IncrementalReallocator::new(
            IncrementalConfig::default().with_repair_threads(config.threads),
        );
        let mut epochs_applied = 0u64;
        let mut last_applied = 0u64;
        if snap_path.exists() {
            let snap = Snapshot::load(&snap_path)?;
            if snap.tau != config.tau || snap.capacity != config.capacity {
                return Err(ServeError::Rejected(format!(
                    "snapshot was taken at tau {} / capacity {}, resume requested tau {} / \
                     capacity {} — restart with matching flags",
                    snap.tau.get(),
                    snap.capacity.get(),
                    config.tau.get(),
                    config.capacity.get()
                )));
            }
            // Adopt the snapshot's workload as-is: a store-format (v3)
            // snapshot carries every derived arena — follower CSR, rate
            // ranking — so nothing is re-derived here. (Resume used to
            // call `Workload::from_parts` and rebuild it all even when
            // the snapshot was fresh; only legacy-snapshot upcasts pay
            // that rebuild now, inside `Snapshot::load`.)
            let rates = snap.workload.rates().to_vec();
            let workload = Arc::new(snap.workload);
            edit = WorkloadEdit::from_workload(&workload);
            realloc.restore(
                snap.selection,
                FleetLedger::from_slots(snap.slots),
                snap.capacity,
                rates,
                config.tau,
            );
            prev = Some(workload);
            epochs_applied = snap.epochs_applied;
            last_applied = snap.last_seq;
        }

        let (log, records) = if log_path.exists() {
            EventLog::open_with_faults(&log_path, faults.clone())?
        } else {
            (
                EventLog::create_with_faults(&log_path, faults.clone())?,
                Vec::new(),
            )
        };
        if log.next_seq() <= last_applied {
            return Err(ServeError::Corrupt {
                path: log_path,
                detail: format!(
                    "event log ends at sequence {} but the snapshot was taken at {}",
                    log.next_seq() - 1,
                    last_applied
                ),
            });
        }

        let mut daemon = Daemon {
            dir: dir.to_path_buf(),
            config,
            cost,
            log,
            edit,
            prev,
            realloc,
            epochs_applied,
            pending: 0,
            last_applied,
            fleet_ops: Vec::new(),
            faults,
        };

        for record in records {
            if record.seq <= daemon.last_applied {
                continue;
            }
            match record.event {
                Event::EpochMark { epoch } => {
                    if epoch != daemon.epochs_applied {
                        return Err(ServeError::Corrupt {
                            path: daemon.dir.join(LOG_FILE),
                            detail: format!(
                                "epoch mark {epoch} at sequence {} but {} epochs were applied",
                                record.seq, daemon.epochs_applied
                            ),
                        });
                    }
                    let events = daemon.pending;
                    daemon.pending = 0;
                    daemon.apply_epoch(events)?;
                    daemon.last_applied = record.seq;
                    daemon.epochs_applied += 1;
                }
                event @ (Event::VmFail { .. } | Event::VmRecover { .. }) => {
                    daemon.fleet_ops.push(event);
                    daemon.pending += 1;
                }
                event => {
                    daemon
                        .apply_to_mirror(event)
                        .map_err(|e| ServeError::Corrupt {
                            path: daemon.dir.join(LOG_FILE),
                            detail: format!(
                                "replayed event at sequence {} rejected: {e}",
                                record.seq
                            ),
                        })?;
                    daemon.pending += 1;
                }
            }
        }
        Ok(daemon)
    }

    fn check_config(config: &ServeConfig) -> Result<(), ServeError> {
        if config.epoch_events == Some(0) {
            return Err(ServeError::Rejected(
                "epoch watermark must be positive".into(),
            ));
        }
        if config.threads == 0 {
            return Err(ServeError::Rejected(
                "repair thread count must be positive".into(),
            ));
        }
        if config.repair_budget == Some(0) {
            return Err(ServeError::Rejected(
                "repair budget must be positive (omit it to drain unbounded)".into(),
            ));
        }
        if config.compact_every == Some(0) {
            return Err(ServeError::Rejected(
                "compaction cadence must be positive (omit it to disable compaction)".into(),
            ));
        }
        if config.compact_every.is_some() && config.compact_steps == 0 {
            return Err(ServeError::Rejected(
                "compaction step budget must be positive".into(),
            ));
        }
        Ok(())
    }

    fn apply_to_mirror(&mut self, event: Event) -> Result<(), pubsub_model::WorkloadError> {
        match event {
            Event::Rerate { topic, rate } => self.edit.rerate(topic, rate),
            Event::Subscribe { subscriber, topic } => self.edit.subscribe(subscriber, topic),
            Event::Unsubscribe { subscriber, topic } => {
                self.edit.unsubscribe(subscriber, topic);
                Ok(())
            }
            Event::EpochMark { .. } | Event::VmFail { .. } | Event::VmRecover { .. } => {
                unreachable!("marks and fleet ops never reach the mirror")
            }
        }
    }

    /// Validates and buffers one event (appending it to the log). When a
    /// watermark is configured and reached, the epoch closes and its
    /// stats are returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] for an `EpochMark` (daemon-internal) or
    /// an event the mirror rejects (unknown topic, zero rate — the event
    /// is *not* logged); log-write and epoch-apply errors pass through.
    pub fn submit(&mut self, event: Event) -> Result<Option<EpochStats>, ServeError> {
        match event {
            Event::EpochMark { .. } => {
                return Err(ServeError::Rejected(
                    "epoch marks are written by the daemon, not submitted".into(),
                ));
            }
            // Fleet ops carry no workload change; they wait for the
            // epoch close, where the ledger validates the slot index.
            Event::VmFail { .. } | Event::VmRecover { .. } => self.fleet_ops.push(event),
            _ => self
                .apply_to_mirror(event)
                .map_err(|e| ServeError::Rejected(e.to_string()))?,
        }
        self.log.append(event)?;
        self.pending += 1;
        if let Some(watermark) = self.config.epoch_events {
            if self.pending >= watermark {
                return Ok(Some(self.close_epoch()?));
            }
        }
        Ok(None)
    }

    /// Closes the current epoch regardless of the watermark — the entry
    /// point for wall-clock ticks (`mcss serve --epoch-ms`). Returns
    /// `None` when there is nothing to apply: no buffered events *and*
    /// no deferred failure repairs (a degraded fleet keeps closing
    /// repair-only epochs until the carry-over queue drains, even with
    /// no incoming traffic).
    ///
    /// # Errors
    ///
    /// Log-write, snapshot-write and epoch-apply errors pass through.
    pub fn tick(&mut self) -> Result<Option<EpochStats>, ServeError> {
        if self.pending == 0 && self.realloc.pending_repair_pairs() == 0 {
            return Ok(None);
        }
        Ok(Some(self.close_epoch()?))
    }

    /// Epoch-boundary durability with the configured retry/backoff: an
    /// fsync that keeps failing past `sync_retries` propagates, leaving
    /// recovery to the log's torn-tail truncation.
    fn sync_log(&mut self) -> Result<(), ServeError> {
        let mut attempts = 0u32;
        loop {
            match self.log.sync() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempts >= self.config.sync_retries {
                        return Err(e);
                    }
                    attempts += 1;
                    if self.config.retry_backoff_ms > 0 {
                        std::thread::sleep(Duration::from_millis(self.config.retry_backoff_ms));
                    }
                }
            }
        }
    }

    fn close_epoch(&mut self) -> Result<EpochStats, ServeError> {
        let mark_seq = self.log.append(Event::EpochMark {
            epoch: self.epochs_applied,
        })?;
        self.sync_log()?;
        let events = self.pending;
        self.pending = 0;
        let stats = self.apply_epoch(events)?;
        self.last_applied = mark_seq;
        self.epochs_applied += 1;
        if self.config.snapshot_every > 0
            && self
                .epochs_applied
                .is_multiple_of(self.config.snapshot_every)
        {
            self.write_snapshot()?;
        }
        Ok(stats)
    }

    fn apply_epoch(&mut self, events: u64) -> Result<EpochStats, ServeError> {
        let started = Instant::now();
        let (workload, changed_topics, changed_subscribers) =
            self.edit.commit(self.prev.as_deref());
        let delta = WorkloadDelta {
            changed_topics,
            changed_subscribers,
        };
        let workload = Arc::new(workload);
        let instance =
            McssInstance::new(Arc::clone(&workload), self.config.tau, self.config.capacity)?;
        let outcome = self
            .realloc
            .step_with_delta(&instance, self.cost.as_ref(), &delta)?;
        self.prev = Some(workload);

        // Fold the epoch's fleet ops: fail + budgeted repair first (the
        // repair also drains any carry-over from earlier epochs), then
        // recoveries, whose slots rejoin the reuse pool next epoch.
        let mut fails: Vec<usize> = Vec::new();
        let mut recovers: Vec<usize> = Vec::new();
        for op in std::mem::take(&mut self.fleet_ops) {
            match op {
                Event::VmFail { slot } => fails.push(slot as usize),
                Event::VmRecover { slot } => recovers.push(slot as usize),
                _ => unreachable!("only fleet ops are buffered"),
            }
        }
        let mut allocation = outcome.allocation;
        let mut vms_failed = 0usize;
        let mut pairs_repaired = 0u64;
        let mut repair_deferred = 0u64;
        if !fails.is_empty() || self.realloc.pending_repair_pairs() > 0 {
            let budget = SlaBudget {
                max_pairs: self.config.repair_budget,
                deadline: None, // deadlines would break crash replay
            };
            let report = self.realloc.repair_failures(&instance, &fails, budget)?;
            vms_failed = report.vms_failed;
            pairs_repaired = report.pairs_replaced;
            repair_deferred = report.pairs_deferred;
            allocation = report.allocation;
        }
        for slot in recovers {
            self.realloc.recover_slot(slot);
        }

        let mut vm_count = allocation.vm_count();
        let mut fleet_cost =
            self.cost.vm_cost(vm_count) + self.cost.bandwidth_cost(allocation.total_bandwidth());

        // Periodic compaction: a budgeted local-search pass over the
        // repaired fleet. Steps-only — deadlines would break crash
        // replay — and skipped by `compact` itself while repairs are
        // still deferred or failed slots are down.
        let mut compaction_moves = 0u64;
        let mut compaction_saved = Money::ZERO;
        if let Some(every) = self.config.compact_every {
            if (self.epochs_applied + 1).is_multiple_of(every) {
                if let Some(report) = self.realloc.compact(
                    &instance,
                    self.cost.as_ref(),
                    SearchBudget::steps(self.config.compact_steps),
                ) {
                    compaction_moves = report.steps;
                    compaction_saved = report.saved();
                    if report.steps > 0 {
                        let (_, ledger, _) = self
                            .realloc
                            .checkpoint()
                            .expect("a compacted epoch implies a checkpoint");
                        vm_count = ledger.vm_count();
                        fleet_cost = report.final_cost;
                    }
                }
            }
        }
        Ok(EpochStats {
            epoch: self.epochs_applied,
            events_applied: events,
            pairs_placed: outcome.pairs_placed,
            pairs_removed: outcome.pairs_removed,
            pairs_evicted: outcome.pairs_evicted,
            pairs_reused: outcome.pairs_reused,
            full_resolve: outcome.full_resolve,
            vms_failed,
            pairs_repaired,
            repair_deferred,
            compaction_moves,
            compaction_saved,
            vm_count,
            fleet_cost,
            apply_time: started.elapsed(),
        })
    }

    /// Writes a snapshot now, returning its path. Requires at least one
    /// applied epoch (there is no state worth capturing before that).
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] before the first epoch; otherwise any
    /// [`ServeError::Io`] from the write.
    pub fn snapshot_now(&mut self) -> Result<PathBuf, ServeError> {
        self.write_snapshot()
    }

    fn write_snapshot(&mut self) -> Result<PathBuf, ServeError> {
        let workload = self.prev.as_ref().ok_or_else(|| {
            ServeError::Rejected("nothing to snapshot before the first epoch".into())
        })?;
        let (selection, ledger, capacity) = self
            .realloc
            .checkpoint()
            .expect("an applied epoch implies a checkpoint");
        let snapshot = Snapshot {
            last_seq: self.last_applied,
            epochs_applied: self.epochs_applied,
            tau: self.config.tau,
            capacity,
            workload: workload.as_ref().clone(),
            selection: selection.clone(),
            slots: ledger.snapshot_slots(),
        };
        let path = self.dir.join(SNAPSHOT_FILE);
        snapshot.write_with_faults(&path, self.faults.clone())?;
        Ok(path)
    }

    /// Number of epochs applied so far.
    pub fn epochs_applied(&self) -> u64 {
        self.epochs_applied
    }

    /// Events buffered in the (not yet closed) current epoch.
    pub fn pending_events(&self) -> u64 {
        self.pending
    }

    /// Sequence number of the last applied `EpochMark` (0 before any).
    pub fn last_applied_seq(&self) -> u64 {
        self.last_applied
    }

    /// Orphaned pairs still deferred by the repair budget — drained a
    /// budget's worth per epoch close until zero.
    pub fn pending_repairs(&self) -> u64 {
        self.realloc.pending_repair_pairs()
    }

    /// The workload as of the last applied epoch.
    pub fn workload(&self) -> Option<&Workload> {
        self.prev.as_deref()
    }

    /// The Stage-1 selection as of the last applied epoch.
    pub fn selection(&self) -> Option<&Selection> {
        self.realloc.checkpoint().map(|(s, _, _)| s)
    }

    /// The current fleet, exported from the ledger.
    pub fn allocation(&self) -> Option<Allocation> {
        self.realloc
            .checkpoint()
            .map(|(_, ledger, capacity)| ledger.to_allocation(capacity))
    }
}

// ---------------------------------------------------------------------
// Drift-fed driver
// ---------------------------------------------------------------------

/// Feeds a [`Daemon`] from a [`DriftModel`], translating per-epoch
/// workload evolution into the raw event stream a control plane would
/// emit — which makes `mcss serve --trace spotify` self-exercising with
/// no external event source.
#[derive(Clone, Debug)]
pub struct Driver {
    drift: DriftModel,
    current: Workload,
    epoch: u64,
}

impl Driver {
    /// A driver whose first batch ([`Driver::initial_events`]) loads
    /// `initial`, and whose subsequent batches follow `drift`.
    pub fn new(initial: Workload, drift: DriftModel) -> Driver {
        Driver {
            drift,
            current: initial,
            epoch: 0,
        }
    }

    /// The generator-side workload the last emitted batch leads to.
    pub fn workload(&self) -> &Workload {
        &self.current
    }

    /// The bootstrap batch: one `Rerate` per topic (introducing it),
    /// then one `Subscribe` per interest pair.
    pub fn initial_events(&self) -> Vec<Event> {
        let w = &self.current;
        let mut events = Vec::with_capacity(w.num_topics() + w.pair_count() as usize);
        for (ti, &rate) in w.rates().iter().enumerate() {
            events.push(Event::Rerate {
                topic: TopicId::new(ti as u32),
                rate,
            });
        }
        for v in w.subscribers() {
            for &topic in w.interests(v) {
                events.push(Event::Subscribe {
                    subscriber: v,
                    topic,
                });
            }
        }
        events
    }

    /// Evolves one drift epoch and emits the difference as events:
    /// `Rerate` for every re-rated (or new) topic, then sorted
    /// `Unsubscribe`/`Subscribe` diffs per changed subscriber.
    pub fn next_epoch_events(&mut self) -> Vec<Event> {
        let (next, delta) = self.drift.evolve_tracked(&self.current, self.epoch);
        self.epoch += 1;
        let mut events = Vec::new();

        let mut topics = delta.changed_topics;
        topics.extend(
            (self.current.num_topics()..next.num_topics()).map(|ti| TopicId::new(ti as u32)),
        );
        topics.sort_unstable();
        topics.dedup();
        for t in topics {
            let fresh = t.index() >= self.current.num_topics();
            if fresh || self.current.rate(t) != next.rate(t) {
                events.push(Event::Rerate {
                    topic: t,
                    rate: next.rate(t),
                });
            }
        }

        let mut subs = delta.changed_subscribers;
        subs.extend(
            (self.current.num_subscribers()..next.num_subscribers())
                .map(|vi| SubscriberId::new(vi as u32)),
        );
        subs.sort_unstable();
        subs.dedup();
        for v in subs {
            if v.index() >= next.num_subscribers() {
                continue;
            }
            let mut old: Vec<TopicId> = if v.index() < self.current.num_subscribers() {
                self.current.interests(v).to_vec()
            } else {
                Vec::new()
            };
            let mut new: Vec<TopicId> = next.interests(v).to_vec();
            old.sort_unstable();
            new.sort_unstable();
            let (mut i, mut j) = (0usize, 0usize);
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some(&o), Some(&n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&o), Some(&n)) if o < n => {
                        events.push(Event::Unsubscribe {
                            subscriber: v,
                            topic: o,
                        });
                        i += 1;
                    }
                    (Some(_), Some(&n)) => {
                        events.push(Event::Subscribe {
                            subscriber: v,
                            topic: n,
                        });
                        j += 1;
                    }
                    (Some(&o), None) => {
                        events.push(Event::Unsubscribe {
                            subscriber: v,
                            topic: o,
                        });
                        i += 1;
                    }
                    (None, Some(&n)) => {
                        events.push(Event::Subscribe {
                            subscriber: v,
                            topic: n,
                        });
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        self.current = next;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::{LinearCostModel, Money};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mcss-serve-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cost() -> Box<dyn CostModel> {
        Box::new(LinearCostModel::new(
            Money::from_dollars(1),
            Money::from_micros(5),
        ))
    }

    fn t(i: u32) -> TopicId {
        TopicId::new(i)
    }
    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    #[test]
    fn log_round_trips_and_sequences() {
        let dir = scratch("log-roundtrip");
        let path = dir.join(LOG_FILE);
        let events = [
            Event::Rerate {
                topic: t(3),
                rate: Rate::new(77),
            },
            Event::Subscribe {
                subscriber: v(9),
                topic: t(3),
            },
            Event::Unsubscribe {
                subscriber: v(9),
                topic: t(3),
            },
            Event::EpochMark { epoch: 0 },
        ];
        let mut log = EventLog::create(&path).unwrap();
        for (i, &e) in events.iter().enumerate() {
            assert_eq!(log.append(e).unwrap(), i as u64 + 1);
        }
        log.sync().unwrap();
        drop(log);

        let (log, records) = EventLog::open(&path).unwrap();
        assert_eq!(log.next_seq(), events.len() as u64 + 1);
        assert_eq!(records.len(), events.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.event, events[i]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch("torn-tail");
        let path = dir.join(LOG_FILE);
        let mut log = EventLog::create(&path).unwrap();
        log.append(Event::Rerate {
            topic: t(0),
            rate: Rate::new(5),
        })
        .unwrap();
        log.append(Event::EpochMark { epoch: 0 }).unwrap();
        log.sync().unwrap();
        drop(log);

        // Simulate a torn write: half a record of garbage at the tail.
        let mut bytes = fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0xAB; 7]);
        fs::write(&path, &bytes).unwrap();

        let (mut log, records) = EventLog::open(&path).unwrap();
        assert_eq!(records.len(), 2, "valid prefix survives");
        assert_eq!(fs::metadata(&path).unwrap().len(), full as u64);
        // Appending after recovery continues the sequence.
        assert_eq!(
            log.append(Event::Rerate {
                topic: t(1),
                rate: Rate::new(9),
            })
            .unwrap(),
            3
        );
        log.sync().unwrap();
        let (_, records) = EventLog::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_reports_checksum_mismatch() {
        let dir = scratch("corrupt-snap");
        let path = dir.join(SNAPSHOT_FILE);
        let snapshot = Snapshot {
            last_seq: 2,
            epochs_applied: 1,
            tau: Rate::new(10),
            capacity: Bandwidth::new(50),
            workload: Workload::from_parts(vec![Rate::new(10)], vec![vec![t(0)]]),
            selection: Selection::from_csr(vec![0, 1], vec![t(0)]),
            slots: vec![LedgerSlot {
                tombstone: false,
                failed: false,
                cap: Bandwidth::new(50),
                used: Bandwidth::new(20),
                rows: vec![(t(0), vec![v(0)])],
            }],
        };
        snapshot.write(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.last_seq, 2);
        assert_eq!(loaded.slots, snapshot.slots);
        assert_eq!(loaded.workload, snapshot.workload);

        // Flip one payload byte (the last byte of the file lands in the
        // final section): load must fail closed, naming the section.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = Snapshot::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("corrupted snapshot"),
            "unexpected error: {err}"
        );
        assert!(
            err.to_string().contains("CRC32 check"),
            "corruption should be attributed to a section checksum: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn daemon_resumes_bit_identically_after_kill() {
        // Two daemons fed the same stream; one is "kill -9"ed mid-epoch
        // (its buffered, unsynced log bytes are lost) and resumed. The
        // recovered daemon must land in exactly the state of one that
        // never stopped.
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.4,
            seed: 11,
        };
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [20u64, 12, 8, 5]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1]]).unwrap();
        b.add_subscriber([ts[1], ts[2]]).unwrap();
        b.add_subscriber([ts[2], ts[3]]).unwrap();
        let initial = b.build();

        let mut driver = Driver::new(initial, drift);
        let mut events = driver.initial_events();
        for _ in 0..4 {
            events.extend(driver.next_epoch_events());
        }

        const WATERMARK: u64 = 5;
        let config = ServeConfig::new(Rate::new(15), Bandwidth::new(1_000))
            .with_epoch_events(WATERMARK)
            .with_snapshot_every(2);
        let dir_a = scratch("resume-a");
        let dir_b = scratch("resume-b");
        let mut live = Daemon::create(&dir_a, config, cost()).unwrap();
        let mut crashed = Daemon::create(&dir_b, config, cost()).unwrap();

        // Pick a cut that is guaranteed to land mid-epoch.
        let mut cut = events.len() * 2 / 3 + 1;
        if (cut as u64).is_multiple_of(WATERMARK) {
            cut += 1;
        }
        for &e in &events[..cut] {
            crashed.submit(e).unwrap();
        }
        assert!(crashed.pending_events() > 0, "cut should land mid-epoch");
        // kill -9: leak the daemon so the BufWriter never flushes; the
        // on-disk log ends at the last synced epoch mark.
        std::mem::forget(crashed);

        for &e in &events {
            live.submit(e).unwrap();
        }
        let mut recovered = Daemon::resume(&dir_b, config, cost()).unwrap();
        // Only whole epochs survived the crash (syncs happen at marks).
        assert_eq!(recovered.pending_events(), 0);
        assert!(recovered.epochs_applied() > 0);
        let absorbed = (recovered.epochs_applied() * WATERMARK) as usize;
        assert!(absorbed < cut, "the crash lost the buffered tail");
        for &e in &events[absorbed..] {
            recovered.submit(e).unwrap();
        }
        live.tick().unwrap();
        recovered.tick().unwrap();

        assert_eq!(live.epochs_applied(), recovered.epochs_applied());
        assert_eq!(live.selection(), recovered.selection());
        assert_eq!(live.allocation(), recovered.allocation());
        let (lw, rw) = (live.workload().unwrap(), recovered.workload().unwrap());
        assert_eq!(lw.rates(), rw.rates());
        assert_eq!(lw.num_subscribers(), rw.num_subscribers());
        for vi in lw.subscribers() {
            assert_eq!(lw.interests(vi), rw.interests(vi));
        }
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn v1_logs_upcast_in_place_on_open() {
        let dir = scratch("v1-log-upcast");
        let path = dir.join(LOG_FILE);
        let mut log = EventLog::create(&path).unwrap();
        log.append(Event::Rerate {
            topic: t(0),
            rate: Rate::new(5),
        })
        .unwrap();
        log.append(Event::EpochMark { epoch: 0 }).unwrap();
        log.sync().unwrap();
        drop(log);
        // Rewrite the header to claim version 1. The records themselves
        // need no translation — v2 only added record kinds — so this is
        // a faithful v1 log.
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let (mut log, records) = EventLog::open(&path).unwrap();
        assert_eq!(records.len(), 2, "v1 records decode under v2");
        // Appends after the upcast may use the new record kinds.
        log.append(Event::VmFail { slot: 0 }).unwrap();
        log.sync().unwrap();
        drop(log);
        let bytes = fs::read(&path).unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            LOG_VERSION,
            "header rewritten in place on open"
        );
        let (_, records) = EventLog::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].event, Event::VmFail { slot: 0 });

        // A log from the future must be refused, not misread.
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = EventLog::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("unsupported event log version 99"),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_snapshots_load_as_failure_free_v2() {
        let dir = scratch("v1-snap-upcast");
        let path = dir.join(SNAPSHOT_FILE);
        let snapshot = Snapshot {
            last_seq: 4,
            epochs_applied: 2,
            tau: Rate::new(10),
            capacity: Bandwidth::new(50),
            workload: Workload::from_parts(vec![Rate::new(10)], vec![vec![t(0)]]),
            selection: Selection::from_csr(vec![0, 1], vec![t(0)]),
            slots: vec![
                LedgerSlot {
                    tombstone: false,
                    failed: false,
                    cap: Bandwidth::new(50),
                    used: Bandwidth::new(20),
                    rows: vec![(t(0), vec![v(0)])],
                },
                LedgerSlot {
                    tombstone: true,
                    failed: false,
                    cap: Bandwidth::new(50),
                    used: Bandwidth::ZERO,
                    rows: vec![],
                },
            ],
        };
        snapshot.write_legacy(&path).unwrap();
        // With no failed slots the v2 body is byte-identical to the v1
        // encoding (the slot-state byte equals the old tombstone byte),
        // so rewriting the header version yields a genuine v1 snapshot.
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.slots, snapshot.slots);
        assert!(loaded.slots.iter().all(|s| !s.failed));
        // The legacy body stored primaries only; the upcast rebuild must
        // still land on bit-identical arenas.
        assert_eq!(loaded.workload, snapshot.workload);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_fsync_failures_are_absorbed_by_retries() {
        let dir = scratch("fsync-retry");
        let injector = FaultInjector::new();
        let config = ServeConfig::new(Rate::new(10), Bandwidth::new(100))
            .with_snapshot_every(0)
            .with_sync_retries(3, 0);
        let mut daemon =
            Daemon::create_with_faults(&dir, config, cost(), Some(injector.clone())).unwrap();
        daemon
            .submit(Event::Rerate {
                topic: t(0),
                rate: Rate::new(10),
            })
            .unwrap();
        daemon
            .submit(Event::Subscribe {
                subscriber: v(0),
                topic: t(0),
            })
            .unwrap();
        injector.arm(IoFault::SyncFail { times: 2 });
        let stats = daemon.tick().unwrap().expect("epoch closes despite faults");
        assert_eq!(stats.epoch, 0);
        assert_eq!(daemon.epochs_applied(), 1);

        // More consecutive failures than retries: the epoch fails closed.
        daemon
            .submit(Event::Subscribe {
                subscriber: v(1),
                topic: t(0),
            })
            .unwrap();
        injector.arm(IoFault::SyncFail { times: 10 });
        let err = daemon.tick().unwrap_err();
        assert!(
            err.to_string().contains("injected fault"),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vm_failure_drill_repairs_within_budget_and_drains() {
        let dir = scratch("drill");
        let config = ServeConfig::new(Rate::new(15), Bandwidth::new(60))
            .with_snapshot_every(0)
            .with_repair_budget(1);
        let mut daemon = Daemon::create(&dir, config, cost()).unwrap();
        for event in [
            Event::Rerate {
                topic: t(0),
                rate: Rate::new(20),
            },
            Event::Rerate {
                topic: t(1),
                rate: Rate::new(12),
            },
            Event::Subscribe {
                subscriber: v(0),
                topic: t(0),
            },
            Event::Subscribe {
                subscriber: v(1),
                topic: t(0),
            },
            Event::Subscribe {
                subscriber: v(2),
                topic: t(1),
            },
        ] {
            daemon.submit(event).unwrap();
        }
        daemon.tick().unwrap().expect("bootstrap epoch");
        let baseline = daemon.allocation().expect("allocated");

        daemon.submit(Event::VmFail { slot: 0 }).unwrap();
        let stats = daemon.tick().unwrap().expect("drill epoch");
        assert_eq!(stats.vms_failed, 1);
        assert!(stats.pairs_repaired <= 1, "budget respected");
        assert!(stats.repair_deferred > 0, "budget of 1 must defer");

        // Repair-only epochs keep closing with no incoming traffic
        // until the carry-over queue drains.
        let mut guard = 0;
        while daemon.pending_repairs() > 0 {
            let stats = daemon.tick().unwrap().expect("repair-only epoch");
            assert!(stats.pairs_repaired <= 1, "budget respected while draining");
            guard += 1;
            assert!(guard < 16, "repair queue failed to drain");
        }
        assert!(daemon.tick().unwrap().is_none(), "nothing left to apply");
        let healed = daemon.allocation().expect("allocated");
        assert_eq!(healed.pair_count(), baseline.pair_count());
        assert!(
            healed
                .validate(daemon.workload().unwrap(), Rate::new(15))
                .is_ok(),
            "drained repair restores satisfaction"
        );

        // Recovery returns the slot to the pool on the next epoch.
        daemon.submit(Event::VmRecover { slot: 0 }).unwrap();
        daemon.tick().unwrap().expect("recovery epoch");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drill_recovery_is_crash_consistent() {
        // Two daemons run the same drill; one is "kill -9"ed right after
        // the partially-repaired epoch syncs, then resumed. The snapshot
        // must carry the failed-slot quarantine and the resume must
        // re-derive the carry-over repair queue.
        let config = ServeConfig::new(Rate::new(15), Bandwidth::new(60))
            .with_snapshot_every(1)
            .with_repair_budget(1);
        let dir_a = scratch("drill-live");
        let dir_b = scratch("drill-crashed");
        let mut live = Daemon::create(&dir_a, config, cost()).unwrap();
        let mut crashed = Daemon::create(&dir_b, config, cost()).unwrap();
        let events = [
            Event::Rerate {
                topic: t(0),
                rate: Rate::new(20),
            },
            Event::Rerate {
                topic: t(1),
                rate: Rate::new(12),
            },
            Event::Subscribe {
                subscriber: v(0),
                topic: t(0),
            },
            Event::Subscribe {
                subscriber: v(1),
                topic: t(0),
            },
            Event::Subscribe {
                subscriber: v(2),
                topic: t(1),
            },
        ];
        for &e in &events {
            live.submit(e).unwrap();
            crashed.submit(e).unwrap();
        }
        live.tick().unwrap();
        crashed.tick().unwrap();
        live.submit(Event::VmFail { slot: 0 }).unwrap();
        crashed.submit(Event::VmFail { slot: 0 }).unwrap();
        live.tick().unwrap();
        crashed.tick().unwrap(); // partial repair: 1 placed, 1 deferred

        std::mem::forget(crashed);
        let mut resumed = Daemon::resume(&dir_b, config, cost()).unwrap();
        assert_eq!(
            resumed.pending_repairs(),
            live.pending_repairs(),
            "carry-over queue re-derived from the snapshot"
        );
        assert!(resumed.pending_repairs() > 0);

        // Drain both and compare bit-for-bit.
        live.tick().unwrap().expect("live drains");
        resumed.tick().unwrap().expect("resumed drains");
        assert_eq!(live.epochs_applied(), resumed.epochs_applied());
        assert_eq!(live.pending_repairs(), 0);
        assert_eq!(resumed.pending_repairs(), 0);
        assert_eq!(live.selection(), resumed.selection());
        assert_eq!(live.allocation(), resumed.allocation());
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }
}
