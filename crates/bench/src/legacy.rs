//! Pre-optimization implementations, preserved verbatim as measured
//! baselines.
//!
//! Two generations of hot path live here so the benches always compare
//! the current code against **what actually shipped before**, not
//! against a baseline that quietly benefits from the new flat state:
//!
//! * [`LegacyReallocator`] — the pre-ledger epoch-repair path (full GSP
//!   re-selection every epoch, per-subscriber clone+sort row diffs,
//!   `HashMap<TopicId, Vec<SubscriberId>>` VM tables repaired with
//!   `retain(|v| gone.contains(v))` scans, from-scratch `table_usage`
//!   recomputes, linear `min_by_key` eviction sweeps), the baseline of
//!   `benches/churn.rs` and `fig_churn_speedup`;
//! * [`legacy_solve`] — the pre-arena **cold solve** path (per-subscriber
//!   `sort_unstable_by` + chosen-bitmap greedy selection, dense
//!   per-topic-`Vec` grouping feeding CustomBinPacking), the baseline of
//!   `benches/solve.rs` and `fig_solve_speedup`.
//!
//! Behaviourally both match the current pipeline where it matters: the
//! same selections bit for bit, the same packing decisions, the same
//! repair policy — the experiments assert it, so every reported speedup
//! is for *equivalent output*.

use cloud_cost::CostModel;
use mcss_core::stage2::{cheaper_to_distribute, Allocator, CbpConfig, CustomBinPacking};
use mcss_core::{Allocation, McssError, McssInstance, Selection, SelectionBuilder};
use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId, Workload, WorkloadView};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The pre-arena greedy Stage-1 selection: for every subscriber, clone
/// the interest list, `sort_unstable_by` it into (descending rate,
/// ascending id) order, sweep with a `chosen` bitmap, and pick the
/// cheapest unchosen exceeder by a final filtered scan — the exact hot
/// loop before the rate-ranked arena made the sweep sort-free.
/// Bit-identical to `GreedySelectPairs` by construction.
pub fn legacy_gsp_select(instance: &McssInstance) -> Selection {
    let view = instance.workload().view();
    let tau = instance.tau();
    let n = view.num_subscribers();
    let mut builder = SelectionBuilder::with_capacity(n, n);
    let mut order: Vec<TopicId> = Vec::new();
    let mut chosen: Vec<bool> = Vec::new();
    for vi in 0..n {
        let v = SubscriberId::new(vi as u32);
        builder.push_row_with(|row| {
            legacy_select_for_subscriber_into(view, v, tau, &mut order, &mut chosen, row)
        });
    }
    builder.build()
}

fn legacy_select_for_subscriber_into(
    view: WorkloadView<'_>,
    v: SubscriberId,
    tau: Rate,
    order: &mut Vec<TopicId>,
    chosen: &mut Vec<bool>,
    out: &mut Vec<TopicId>,
) {
    let interests = view.interests(v);
    if interests.is_empty() {
        return;
    }
    let tau_v = view.tau_v(v, tau);
    let total = view.subscriber_total_rate(v);
    if total <= tau_v {
        out.extend_from_slice(interests);
        return;
    }

    // The per-subscriber sort the arena path eliminated.
    order.clear();
    order.extend_from_slice(interests);
    order.sort_unstable_by(|&a, &b| view.rate(b).cmp(&view.rate(a)).then(a.cmp(&b)));

    chosen.clear();
    chosen.resize(order.len(), false);
    let mut rem = tau_v;
    for (i, &t) in order.iter().enumerate() {
        if rem.is_zero() {
            break;
        }
        let ev = view.rate(t);
        if ev <= rem {
            out.push(t);
            chosen[i] = true;
            rem = rem.saturating_sub(ev);
        }
    }
    if !rem.is_zero() {
        let cheapest_exceeder = order
            .iter()
            .zip(chosen.iter())
            .filter(|(_, &c)| !c)
            .map(|(&t, _)| t)
            .min_by_key(|&t| (view.rate(t), t))
            .expect("total > tau_v guarantees an unchosen topic remains");
        out.push(cheapest_exceeder);
    }
}

/// The pre-CSR topic grouping: one `Vec<SubscriberId>` allocated per
/// topic of the universe, filled row-major, then filtered and collected
/// into per-topic vectors — the allocation pattern `TopicGroups`
/// replaced with two counting-sort passes over three flat buffers.
pub fn legacy_group_by_topic(
    selection: &Selection,
    workload: &Workload,
) -> Vec<(TopicId, Vec<SubscriberId>)> {
    let mut groups: Vec<Vec<SubscriberId>> = vec![Vec::new(); workload.num_topics()];
    for (vi, tv) in selection.rows().enumerate() {
        let v = SubscriberId::new(vi as u32);
        for &t in tv {
            groups[t.index()].push(v);
        }
    }
    groups
        .into_iter()
        .enumerate()
        .filter(|(_, vs)| !vs.is_empty())
        .map(|(ti, vs)| (TopicId::new(ti as u32), vs))
        .collect()
}

/// One VM being filled by [`legacy_cbp_allocate`] — the same sorted-row
/// state `CustomBinPacking` keeps internally, replicated here so the
/// legacy packing loop stays decision-for-decision identical.
#[derive(Default)]
struct LegacyVm {
    rows: Vec<(TopicId, Vec<SubscriberId>)>,
    used: Bandwidth,
}

impl LegacyVm {
    fn free(&self, capacity: Bandwidth) -> Bandwidth {
        capacity.saturating_sub(self.used)
    }

    fn add_batch(&mut self, t: TopicId, rate: Rate, vs: &[SubscriberId]) {
        if vs.is_empty() {
            return;
        }
        let n = vs.len() as u64;
        match self.rows.binary_search_by_key(&t, |&(tt, _)| tt) {
            Ok(pos) => {
                self.used += rate * n;
                self.rows[pos].1.extend_from_slice(vs);
            }
            Err(pos) => {
                self.used += rate * (n + 1);
                self.rows.insert(pos, (t, vs.to_vec()));
            }
        }
    }
}

/// The pre-CSR CustomBinPacking (full preset): identical packing
/// decisions to today's CBP, fed by [`legacy_group_by_topic`]'s
/// per-topic vectors instead of the `TopicGroups` CSR.
///
/// # Errors
///
/// [`McssError::InfeasibleTopic`] if a selected topic cannot fit on an
/// empty VM.
pub fn legacy_cbp_allocate(
    workload: &Workload,
    selection: &Selection,
    capacity: Bandwidth,
    cost: &dyn CostModel,
) -> Result<Allocation, McssError> {
    let mut groups = legacy_group_by_topic(selection, workload);
    // Optimization (c), TotalVolume order (ties by ascending topic id;
    // the sort is stable over the id-ordered groups).
    groups.sort_by_key(|(t, vs)| Reverse(u128::from(workload.rate(*t).get()) * vs.len() as u128));

    let mut vms: Vec<LegacyVm> = Vec::new();
    let mut total_bw = Bandwidth::ZERO;
    let mut free_heap: BinaryHeap<(Bandwidth, Reverse<usize>)> = BinaryHeap::new();

    for (topic, subscribers) in &groups {
        let rate = workload.rate(*topic);
        if rate.pair_cost() > capacity {
            return Err(McssError::InfeasibleTopic {
                topic: *topic,
                required: rate.pair_cost(),
                capacity,
            });
        }

        let all = u128::from(rate.get()) * (subscribers.len() as u128 + 1);
        if let Some(current) = vms.last_mut() {
            if all <= u128::from(current.free(capacity).get()) {
                current.add_batch(*topic, rate, subscribers);
                total_bw += rate * (subscribers.len() as u64 + 1);
                free_heap.push((current.free(capacity), Reverse(vms.len() - 1)));
                continue;
            }
        }

        let mut remaining: &[SubscriberId] = subscribers;
        let distribute = if vms.is_empty() {
            false
        } else {
            // Optimization (e): the Alg. 7 cost comparison.
            let frees: Vec<Bandwidth> = vms.iter().map(|vm| vm.free(capacity)).collect();
            cheaper_to_distribute(
                &frees,
                capacity,
                rate,
                remaining.len() as u64,
                vms.len(),
                total_bw,
                cost,
                false,
            )
        };

        if distribute {
            // Optimization (d): most-free VM first via the lazy heap.
            while !remaining.is_empty() {
                let Some((free, Reverse(idx))) = free_heap.pop() else {
                    break;
                };
                if vms[idx].free(capacity) != free {
                    continue; // stale entry; the fresh one is queued
                }
                if free < rate.pair_cost() {
                    free_heap.push((free, Reverse(idx)));
                    break;
                }
                let fit = free.div_rate(rate) - 1;
                let take = (fit as usize).min(remaining.len());
                vms[idx].add_batch(*topic, rate, &remaining[..take]);
                total_bw += rate * (take as u64 + 1);
                free_heap.push((vms[idx].free(capacity), Reverse(idx)));
                remaining = &remaining[take..];
            }
        }

        while !remaining.is_empty() {
            let mut vm = LegacyVm::default();
            let fit = capacity.div_rate(rate) - 1; // ≥ 1 by feasibility
            let take = (fit as usize).min(remaining.len());
            vm.add_batch(*topic, rate, &remaining[..take]);
            total_bw += rate * (take as u64 + 1);
            vms.push(vm);
            free_heap.push((
                vms.last().expect("just pushed").free(capacity),
                Reverse(vms.len() - 1),
            ));
            remaining = &remaining[take..];
        }
    }

    Ok(Allocation::from_groups(
        vms.into_iter().map(|vm| vm.rows).collect(),
        workload,
        capacity,
    ))
}

/// The full pre-arena cold solve: [`legacy_gsp_select`] +
/// [`legacy_cbp_allocate`] — Stage 1 with a sort per subscriber, Stage 2
/// with a `Vec` allocation per topic. `fig_solve_speedup` asserts its
/// output bit-identical to today's pipeline every measured run.
///
/// # Errors
///
/// [`McssError::InfeasibleTopic`] if a selected topic cannot fit on an
/// empty VM.
pub fn legacy_solve(
    instance: &McssInstance,
    cost: &dyn CostModel,
) -> Result<(Selection, Allocation), McssError> {
    let selection = legacy_gsp_select(instance);
    let allocation =
        legacy_cbp_allocate(instance.workload(), &selection, instance.capacity(), cost)?;
    Ok((selection, allocation))
}

/// One legacy epoch's outcome (the counters the bench reports).
#[derive(Clone, Debug)]
pub struct LegacyOutcome {
    /// The repaired (or re-solved) allocation.
    pub allocation: Allocation,
    /// The Stage-1 selection this epoch serves.
    pub selection: Selection,
    /// Pairs newly placed this epoch.
    pub pairs_placed: u64,
    /// Pairs removed because they left the selection.
    pub pairs_removed: u64,
    /// Whether the utilization floor forced a full re-solve.
    pub full_resolve: bool,
}

/// The pre-ledger incremental re-allocator (see the module docs).
#[derive(Debug, Default)]
pub struct LegacyReallocator {
    previous: Option<State>,
}

#[derive(Debug)]
struct State {
    selection: Selection,
    tables: Vec<HashMap<TopicId, Vec<SubscriberId>>>,
}

const COMPACTION_THRESHOLD: f64 = 0.5;

impl LegacyReallocator {
    /// Repairs the previous allocation against the instance's current
    /// workload (first call performs a full solve).
    ///
    /// # Errors
    ///
    /// [`McssError::InfeasibleTopic`] if a selected topic no longer fits
    /// on any VM.
    pub fn step(
        &mut self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<LegacyOutcome, McssError> {
        let workload = instance.workload();
        let capacity = instance.capacity();
        // The pre-arena GSP (sort per subscriber) — what epoch repair ran
        // before either rework; bit-identical to today's selection.
        let selection = legacy_gsp_select(instance);

        let Some(prev) = self.previous.take() else {
            let allocation = full_allocate(instance, &selection, cost)?;
            let placed = selection.pair_count();
            self.remember(&selection, &allocation);
            return Ok(LegacyOutcome {
                allocation,
                selection,
                pairs_placed: placed,
                pairs_removed: 0,
                full_resolve: true,
            });
        };

        // Diff old vs new selection per subscriber (both sides cloned and
        // sorted — the per-row cost the CSR diff view eliminated).
        let mut removed: Vec<(TopicId, SubscriberId)> = Vec::new();
        let mut added: Vec<(TopicId, SubscriberId)> = Vec::new();
        let subscribers = workload.num_subscribers();
        for vi in 0..subscribers {
            let v = SubscriberId::new(vi as u32);
            let mut old: Vec<TopicId> = if vi < prev.selection.num_subscribers() {
                prev.selection.selected(v).to_vec()
            } else {
                Vec::new()
            };
            let mut new: Vec<TopicId> = selection.selected(v).to_vec();
            old.sort_unstable();
            new.sort_unstable();
            diff_sorted(&old, &new, |t| removed.push((t, v)), |t| added.push((t, v)));
        }
        for vi in subscribers..prev.selection.num_subscribers() {
            let v = SubscriberId::new(vi as u32);
            for &t in prev.selection.selected(v) {
                removed.push((t, v));
            }
        }
        let pairs_removed = removed.len() as u64;

        // Rebuild VM tables, dropping removed pairs (the quadratic
        // `gone.contains` retain the ledger replaced).
        let mut tables = prev.tables;
        let mut removal: HashMap<TopicId, Vec<SubscriberId>> = HashMap::new();
        for (t, v) in removed {
            removal.entry(t).or_default().push(v);
        }
        for table in &mut tables {
            table.retain(|t, subs| {
                if t.index() >= workload.num_topics() {
                    return false;
                }
                if let Some(gone) = removal.get(t) {
                    subs.retain(|v| !gone.contains(v));
                }
                !subs.is_empty()
            });
        }

        // Recompute per-VM usage under the *new* rates and evict from
        // overflowing VMs, cheapest topic group first.
        let mut to_place = added;
        for table in &mut tables {
            let mut used = table_usage(table, workload);
            while used > capacity {
                let evict = table
                    .iter()
                    .min_by_key(|(t, subs)| (workload.rate(**t) * (subs.len() as u64 + 1), t.raw()))
                    .map(|(t, _)| *t)
                    .expect("non-empty table while over capacity");
                let subs = table.remove(&evict).expect("key just found");
                used -= workload.rate(evict) * (subs.len() as u64 + 1);
                to_place.extend(subs.into_iter().map(|v| (evict, v)));
            }
        }
        let pairs_placed = to_place.len() as u64;

        // Place topic-grouped: host VMs first, then most-free, then fresh
        // VMs — with `table_usage` recomputed from scratch per probe.
        let mut groups: HashMap<TopicId, Vec<SubscriberId>> = HashMap::new();
        for (t, v) in to_place {
            groups.entry(t).or_default().push(v);
        }
        let mut group_list: Vec<(TopicId, Vec<SubscriberId>)> = groups.into_iter().collect();
        group_list.sort_unstable_by_key(|(t, _)| *t);
        for (topic, mut subs) in group_list {
            let rate = workload.rate(topic);
            if rate.pair_cost() > capacity {
                return Err(McssError::InfeasibleTopic {
                    topic,
                    required: rate.pair_cost(),
                    capacity,
                });
            }
            for table in tables.iter_mut() {
                if subs.is_empty() {
                    break;
                }
                if !table.contains_key(&topic) {
                    continue;
                }
                let free = capacity.saturating_sub(table_usage(table, workload));
                let fit = free.div_rate(rate) as usize;
                let take = fit.min(subs.len());
                if take > 0 {
                    let moved: Vec<SubscriberId> = subs.drain(..take).collect();
                    table.get_mut(&topic).expect("host checked").extend(moved);
                }
            }
            while !subs.is_empty() {
                let best = tables
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (capacity.saturating_sub(table_usage(t, workload)), i))
                    .max();
                match best {
                    Some((free, i)) if free >= rate.pair_cost() => {
                        let fit = (free.div_rate(rate) - 1) as usize;
                        let take = fit.min(subs.len());
                        let moved: Vec<SubscriberId> = subs.drain(..take).collect();
                        tables[i].entry(topic).or_default().extend(moved);
                    }
                    _ => break,
                }
            }
            while !subs.is_empty() {
                let fit = (capacity.div_rate(rate) - 1) as usize;
                let take = fit.min(subs.len());
                let moved: Vec<SubscriberId> = subs.drain(..take).collect();
                let mut table = HashMap::new();
                table.insert(topic, moved);
                tables.push(table);
            }
        }

        tables.retain(|t| !t.is_empty());

        let total_used: Bandwidth = tables.iter().map(|t| table_usage(t, workload)).sum();
        let fleet_capacity = capacity.get().saturating_mul(tables.len() as u64);
        let utilization = if fleet_capacity == 0 {
            1.0
        } else {
            total_used.get() as f64 / fleet_capacity as f64
        };
        if utilization < COMPACTION_THRESHOLD {
            let allocation = full_allocate(instance, &selection, cost)?;
            let placed = selection.pair_count();
            self.remember(&selection, &allocation);
            return Ok(LegacyOutcome {
                allocation,
                selection,
                pairs_placed: placed,
                pairs_removed,
                full_resolve: true,
            });
        }

        let allocation = Allocation::from_tables(tables, workload, capacity);
        self.remember(&selection, &allocation);
        Ok(LegacyOutcome {
            allocation,
            selection,
            pairs_placed,
            pairs_removed,
            full_resolve: false,
        })
    }

    fn remember(&mut self, selection: &Selection, allocation: &Allocation) {
        let tables = allocation
            .vms()
            .iter()
            .map(|vm| {
                vm.placements()
                    .iter()
                    .map(|p| (p.topic, p.subscribers.clone()))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        self.previous = Some(State {
            selection: selection.clone(),
            tables,
        });
    }
}

fn full_allocate(
    instance: &McssInstance,
    selection: &Selection,
    cost: &dyn CostModel,
) -> Result<Allocation, McssError> {
    CustomBinPacking::new(CbpConfig::full()).allocate(
        instance.workload(),
        selection,
        instance.capacity(),
        cost,
    )
}

/// Recomputes a table's bandwidth under current rates.
fn table_usage(table: &HashMap<TopicId, Vec<SubscriberId>>, workload: &Workload) -> Bandwidth {
    let mut used = Bandwidth::ZERO;
    for (t, subs) in table {
        used += workload.rate(*t) * (subs.len() as u64 + 1);
    }
    used
}

/// Walks two sorted slices calling `on_removed` for elements only in
/// `old` and `on_added` for elements only in `new`.
fn diff_sorted(
    old: &[TopicId],
    new: &[TopicId],
    mut on_removed: impl FnMut(TopicId),
    mut on_added: impl FnMut(TopicId),
) {
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                on_removed(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                on_added(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    old[i..].iter().for_each(|&t| on_removed(t));
    new[j..].iter().for_each(|&t| on_added(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_cost::{LinearCostModel, Money};
    use mcss_core::dynamic::DriftModel;
    use mcss_core::incremental::IncrementalReallocator;
    use pubsub_model::Rate;

    /// The legacy cold solve must agree with the arena pipeline bit for
    /// bit — selection *and* allocation — otherwise `fig_solve_speedup`
    /// compares different algorithms, not implementations.
    #[test]
    fn legacy_cold_solve_bit_identical_to_arena_path() {
        use mcss_core::stage1::{GreedySelectPairs, PairSelector};
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [30u64, 18, 18, 12, 9, 6, 4, 4]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        for vi in 0..40u32 {
            let tv: Vec<TopicId> = ts
                .iter()
                .copied()
                .filter(|t| (t.raw() * 3 + vi) % 4 != 0)
                .collect();
            b.add_subscriber(tv).unwrap();
        }
        let w = b.build();
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1));
        for tau in [10u64, 25, 60] {
            let inst = McssInstance::new(w.clone(), Rate::new(tau), Bandwidth::new(150)).unwrap();
            let (legacy_sel, legacy_alloc) = legacy_solve(&inst, &cost).unwrap();
            let arena_sel = GreedySelectPairs::new().select(&inst).unwrap();
            let arena_alloc = CustomBinPacking::new(CbpConfig::full())
                .allocate(inst.workload(), &arena_sel, inst.capacity(), &cost)
                .unwrap();
            assert_eq!(legacy_sel, arena_sel, "tau {tau}: selections diverged");
            assert_eq!(legacy_alloc, arena_alloc, "tau {tau}: allocations diverged");
            legacy_alloc.validate(inst.workload(), inst.tau()).unwrap();
        }
    }

    /// The legacy baseline must agree with the new path — otherwise the
    /// bench compares different algorithms, not implementations.
    #[test]
    fn legacy_matches_new_path_selection_and_validates() {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = [30u64, 18, 12, 9, 6, 4]
            .iter()
            .map(|&r| b.add_topic(Rate::new(r)).unwrap())
            .collect();
        b.add_subscriber([ts[0], ts[1], ts[2]]).unwrap();
        b.add_subscriber([ts[1], ts[3], ts[4]]).unwrap();
        b.add_subscriber([ts[2], ts[4], ts[5]]).unwrap();
        b.add_subscriber([ts[0], ts[5]]).unwrap();
        let mut w = b.build();
        let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1));
        let drift = DriftModel {
            rate_sigma: 0.3,
            churn_prob: 0.4,
            seed: 21,
        };
        let mut legacy = LegacyReallocator::default();
        let mut new = IncrementalReallocator::default();
        for epoch in 0..5 {
            let inst = McssInstance::new(w.clone(), Rate::new(20), Bandwidth::new(120)).unwrap();
            let l = legacy.step(&inst, &cost).unwrap();
            let n = new.step(&inst, &cost).unwrap();
            assert_eq!(l.selection, n.selection, "epoch {epoch}");
            l.allocation
                .validate(inst.workload(), inst.tau())
                .unwrap_or_else(|e| panic!("legacy epoch {epoch}: {e}"));
            n.allocation
                .validate(inst.workload(), inst.tau())
                .unwrap_or_else(|e| panic!("new epoch {epoch}: {e}"));
            w = drift.evolve(&w, epoch);
        }
    }
}
