//! Workload sampling and transformation utilities.
//!
//! The paper's own evaluation runs on *samples* — "about 10% sample for
//! Spotify and 1% sample for Twitter" (§IV-F) — and filters Twitter to
//! active users only (§IV-B). These transforms reproduce that tooling:
//! subscriber sampling, topic filtering, rate scaling, and compaction
//! (dropping unreferenced topics / empty subscribers with dense
//! re-numbering).

use pubsub_model::{Rate, TopicId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keeps each subscriber independently with probability `fraction`
/// (seeded, reproducible). Topics are untouched, so topic ids remain
/// valid; combine with [`compact`] to drop now-unreferenced topics.
///
/// # Panics
///
/// Panics if `fraction` is not within `[0, 1]`.
pub fn sample_subscribers(workload: &Workload, fraction: f64, seed: u64) -> Workload {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let interests: Vec<Vec<TopicId>> = workload
        .subscribers()
        .filter(|_| rng.gen::<f64>() < fraction)
        .map(|v| workload.interests(v).to_vec())
        .collect();
    Workload::from_parts(workload.rates().to_vec(), interests)
}

/// Keeps only topics accepted by `predicate` (e.g. the paper's
/// active-user filter `|_, rate| rate.get() > 0`, or a minimum-rate
/// threshold). Interests are filtered accordingly; ids are re-numbered
/// densely. Returns the new workload and, for each old topic, its new id
/// (or `None` if dropped).
pub fn filter_topics(
    workload: &Workload,
    mut predicate: impl FnMut(TopicId, Rate) -> bool,
) -> (Workload, Vec<Option<TopicId>>) {
    let mut mapping: Vec<Option<TopicId>> = Vec::with_capacity(workload.num_topics());
    let mut rates = Vec::new();
    for t in workload.topics() {
        if predicate(t, workload.rate(t)) {
            mapping.push(Some(TopicId::new(rates.len() as u32)));
            rates.push(workload.rate(t));
        } else {
            mapping.push(None);
        }
    }
    let interests: Vec<Vec<TopicId>> = workload
        .subscribers()
        .map(|v| {
            workload
                .interests(v)
                .iter()
                .filter_map(|t| mapping[t.index()])
                .collect()
        })
        .collect();
    (Workload::from_parts(rates, interests), mapping)
}

/// Multiplies every rate by `numer/denom`, rounding to nearest and
/// clamping to at least one event (the model requires `ev_t > 0`).
///
/// # Panics
///
/// Panics if `denom` is zero.
pub fn scale_rates(workload: &Workload, numer: u64, denom: u64) -> Workload {
    assert!(denom > 0, "zero denominator");
    let rates: Vec<Rate> = workload
        .rates()
        .iter()
        .map(|r| {
            let scaled = (u128::from(r.get()) * u128::from(numer) + u128::from(denom / 2))
                / u128::from(denom);
            Rate::new(u64::try_from(scaled).unwrap_or(u64::MAX).max(1))
        })
        .collect();
    let interests = workload
        .subscribers()
        .map(|v| workload.interests(v).to_vec())
        .collect();
    Workload::from_parts(rates, interests)
}

/// Drops topics without subscribers and subscribers without interests,
/// re-numbering both densely. Returns the compacted workload plus the
/// old→new topic mapping.
pub fn compact(workload: &Workload) -> (Workload, Vec<Option<TopicId>>) {
    let (w, mapping) = filter_topics(workload, |t, _| !workload.subscribers_of(t).is_empty());
    let interests: Vec<Vec<TopicId>> = w
        .subscribers()
        .map(|v| w.interests(v).to_vec())
        .filter(|tv| !tv.is_empty())
        .collect();
    (Workload::from_parts(w.rates().to_vec(), interests), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpotifyLike;
    use pubsub_model::SubscriberId;

    fn sample_workload() -> Workload {
        let mut b = Workload::builder();
        let t0 = b.add_topic(Rate::new(10)).unwrap();
        let t1 = b.add_topic(Rate::new(20)).unwrap();
        let _t2 = b.add_topic(Rate::new(3)).unwrap(); // never subscribed
        b.add_subscriber([t0, t1]).unwrap();
        b.add_subscriber([t1]).unwrap();
        b.add_subscriber([]).unwrap();
        b.build()
    }

    #[test]
    fn sampling_is_seeded_and_proportional() {
        let w = SpotifyLike::new(5_000, 9).generate();
        let a = sample_subscribers(&w, 0.25, 1);
        let b = sample_subscribers(&w, 0.25, 1);
        assert_eq!(a.num_subscribers(), b.num_subscribers());
        let frac = a.num_subscribers() as f64 / w.num_subscribers() as f64;
        assert!((0.2..0.3).contains(&frac), "kept {frac}");
        let c = sample_subscribers(&w, 0.25, 2);
        assert_ne!(a.num_subscribers(), c.num_subscribers());
    }

    #[test]
    fn sampling_extremes() {
        let w = sample_workload();
        assert_eq!(sample_subscribers(&w, 0.0, 7).num_subscribers(), 0);
        assert_eq!(sample_subscribers(&w, 1.0, 7).num_subscribers(), 3);
    }

    #[test]
    fn filter_topics_remaps_interests() {
        let w = sample_workload();
        // Keep only topics with rate >= 10 (drops t2).
        let (f, mapping) = filter_topics(&w, |_, r| r.get() >= 10);
        assert_eq!(f.num_topics(), 2);
        assert_eq!(
            mapping,
            vec![Some(TopicId::new(0)), Some(TopicId::new(1)), None]
        );
        assert_eq!(f.interests(SubscriberId::new(0)).len(), 2);
        // Keep only t1: subscriber 0 loses an interest, keeps the rest.
        let (f, mapping) = filter_topics(&w, |_, r| r.get() == 20);
        assert_eq!(f.num_topics(), 1);
        assert_eq!(mapping[1], Some(TopicId::new(0)));
        assert_eq!(f.interests(SubscriberId::new(0)), &[TopicId::new(0)]);
        assert_eq!(f.rate(TopicId::new(0)), Rate::new(20));
    }

    #[test]
    fn scale_rates_rounds_and_clamps() {
        let w = sample_workload();
        let half = scale_rates(&w, 1, 2);
        assert_eq!(half.rate(TopicId::new(0)), Rate::new(5));
        assert_eq!(half.rate(TopicId::new(1)), Rate::new(10));
        assert_eq!(half.rate(TopicId::new(2)), Rate::new(2)); // 1.5 → 2
        let tiny = scale_rates(&w, 1, 1_000);
        assert_eq!(tiny.rate(TopicId::new(0)), Rate::new(1)); // clamped
        let triple = scale_rates(&w, 3, 1);
        assert_eq!(triple.rate(TopicId::new(1)), Rate::new(60));
    }

    #[test]
    fn compact_drops_dead_weight() {
        let w = sample_workload();
        assert_eq!(w.validate().len(), 2); // t2 unsubscribed + empty v2
        let (c, mapping) = compact(&w);
        assert!(c.validate().is_empty());
        assert_eq!(c.num_topics(), 2);
        assert_eq!(c.num_subscribers(), 2);
        assert_eq!(mapping[2], None);
        assert_eq!(c.pair_count(), w.pair_count());
    }

    #[test]
    fn pipeline_of_transforms_preserves_consistency() {
        let w = SpotifyLike::new(2_000, 4).generate();
        let sampled = sample_subscribers(&w, 0.5, 3);
        let (filtered, _) = filter_topics(&sampled, |_, r| r.get() >= 5);
        let scaled = scale_rates(&filtered, 1, 10);
        let (compacted, _) = compact(&scaled);
        assert!(compacted.validate().is_empty());
        for v in compacted.subscribers() {
            for &t in compacted.interests(v) {
                assert!(t.index() < compacted.num_topics());
                assert!(!compacted.rate(t).is_zero());
            }
        }
    }
}
