//! Mutable VM state used while packing.

use pubsub_model::{Bandwidth, Rate, SubscriberId, TopicId};
use std::collections::HashMap;

/// A VM being filled by a Stage-2 allocator: the topic→subscribers table
/// plus incrementally tracked bandwidth.
#[derive(Clone, Debug, Default)]
pub(crate) struct VmBuild {
    table: HashMap<TopicId, Vec<SubscriberId>>,
    used: Bandwidth,
}

impl VmBuild {
    pub(crate) fn new() -> Self {
        VmBuild::default()
    }

    /// Bandwidth currently in use (`bw_b`). The allocators track totals
    /// incrementally and query headroom via [`VmBuild::free`]; this direct
    /// accessor serves the unit tests.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn used(&self) -> Bandwidth {
        self.used
    }

    /// Free headroom `BC − bw_b`.
    #[inline]
    pub(crate) fn free(&self, capacity: Bandwidth) -> Bandwidth {
        capacity.saturating_sub(self.used)
    }

    /// Marginal cost of adding one pair of topic `t`: `2·ev_t` when the
    /// topic is new to this VM (incoming stream + delivery), `ev_t`
    /// otherwise.
    #[inline]
    pub(crate) fn delta(&self, t: TopicId, rate: Rate) -> Bandwidth {
        if self.table.contains_key(&t) {
            rate.volume()
        } else {
            rate.pair_cost()
        }
    }

    /// Adds a single pair, updating bandwidth. The caller must have
    /// checked capacity via [`VmBuild::delta`].
    pub(crate) fn add_pair(&mut self, t: TopicId, rate: Rate, v: SubscriberId) {
        self.used += self.delta(t, rate);
        self.table.entry(t).or_default().push(v);
    }

    /// Adds several pairs of the same topic at once. Bandwidth grows by
    /// `(n+1)·ev_t` if the topic is new, `n·ev_t` otherwise.
    pub(crate) fn add_batch(&mut self, t: TopicId, rate: Rate, vs: &[SubscriberId]) {
        if vs.is_empty() {
            return;
        }
        let n = vs.len() as u64;
        let volume = if self.table.contains_key(&t) {
            rate * n
        } else {
            rate * (n + 1)
        };
        self.used += volume;
        self.table.entry(t).or_default().extend_from_slice(vs);
    }

    /// Consumes the build, yielding the raw table for
    /// [`Allocation::from_tables`](crate::Allocation).
    pub(crate) fn into_table(self) -> HashMap<TopicId, Vec<SubscriberId>> {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TopicId {
        TopicId::new(i)
    }
    fn v(i: u32) -> SubscriberId {
        SubscriberId::new(i)
    }

    #[test]
    fn delta_depends_on_topic_presence() {
        let mut vm = VmBuild::new();
        let rate = Rate::new(10);
        assert_eq!(vm.delta(t(0), rate), Bandwidth::new(20));
        vm.add_pair(t(0), rate, v(0));
        assert_eq!(vm.used(), Bandwidth::new(20));
        assert_eq!(vm.delta(t(0), rate), Bandwidth::new(10));
        vm.add_pair(t(0), rate, v(1));
        assert_eq!(vm.used(), Bandwidth::new(30));
    }

    #[test]
    fn batch_matches_individual_adds() {
        let rate = Rate::new(7);
        let subs = [v(0), v(1), v(2)];
        let mut one = VmBuild::new();
        for &s in &subs {
            one.add_pair(t(3), rate, s);
        }
        let mut batch = VmBuild::new();
        batch.add_batch(t(3), rate, &subs);
        assert_eq!(one.used(), batch.used());
        assert_eq!(one.into_table(), batch.into_table());
    }

    #[test]
    fn second_batch_of_same_topic_pays_no_incoming() {
        let rate = Rate::new(5);
        let mut vm = VmBuild::new();
        vm.add_batch(t(1), rate, &[v(0)]);
        assert_eq!(vm.used(), Bandwidth::new(10));
        vm.add_batch(t(1), rate, &[v(1), v(2)]);
        assert_eq!(vm.used(), Bandwidth::new(20));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut vm = VmBuild::new();
        vm.add_batch(t(0), Rate::new(5), &[]);
        assert_eq!(vm.used(), Bandwidth::ZERO);
        assert!(vm.into_table().is_empty());
    }

    #[test]
    fn free_saturates() {
        let mut vm = VmBuild::new();
        vm.add_pair(t(0), Rate::new(10), v(0));
        assert_eq!(vm.free(Bandwidth::new(25)), Bandwidth::new(5));
        assert_eq!(vm.free(Bandwidth::new(15)), Bandwidth::ZERO);
    }
}
