//! E-FIG6/7 (Criterion form): Stage-2 runtime, fully-optimized CBP vs
//! FFBP, on the GSP selection.

use cloud_cost::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcss_bench::scenario::Scenario;
use mcss_core::stage1::{GreedySelectPairs, PairSelector};
use mcss_core::stage2::{Allocator, CbpConfig, CustomBinPacking, FirstFitBinPacking};
use std::hint::black_box;

fn bench_stage2(c: &mut Criterion) {
    let scenarios = [
        Scenario::spotify(20_000, 20140113),
        Scenario::twitter(10_000, 20131030),
    ];
    for scenario in &scenarios {
        let cost = scenario.cost_model(instances::C3_LARGE);
        let mut group = c.benchmark_group(format!("stage2/{}", scenario.name));
        group.sample_size(10);
        for tau in [10u64, 1000] {
            let inst = scenario
                .instance(tau, instances::C3_LARGE)
                .expect("valid capacity");
            let selection = GreedySelectPairs::new().select(&inst).expect("gsp");
            group.bench_with_input(
                BenchmarkId::new("CBP-full", tau),
                &(&inst, &selection),
                |b, (inst, selection)| {
                    let alloc = CustomBinPacking::new(CbpConfig::full());
                    b.iter(|| {
                        black_box(
                            alloc
                                .allocate(inst.workload(), selection, inst.capacity(), &cost)
                                .expect("feasible"),
                        )
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("FFBP", tau),
                &(&inst, &selection),
                |b, (inst, selection)| {
                    let alloc = FirstFitBinPacking::new();
                    b.iter(|| {
                        black_box(
                            alloc
                                .allocate(inst.workload(), selection, inst.capacity(), &cost)
                                .expect("feasible"),
                        )
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_stage2);
criterion_main!(benches);
