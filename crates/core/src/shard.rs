//! Shard-parallel solving: partition the subscribers, solve every shard's
//! two-stage pipeline concurrently, and merge the fleets.
//!
//! The paper's algorithms are sequential; their runtime (Figs. 4–7) grows
//! with the subscriber count. Subscribers are independent in Stage 1 and
//! nearly independent in Stage 2 (they only couple through shared topic
//! incoming streams), which makes the classic partitioned-solver shape a
//! natural fit:
//!
//! 1. **Partition** the subscribers into `k` shards — either uniformly by
//!    [hash](PartitionerKind::Hash), or by
//!    [topic locality](PartitionerKind::TopicLocality), which keeps the
//!    followers of a topic in one shard so fewer incoming streams are
//!    duplicated across shard fleets;
//! 2. **Solve** each shard as an ordinary MCSS instance over a zero-copy
//!    [`WorkloadView`](pubsub_model::WorkloadView) subset, on scoped
//!    threads;
//! 3. **Merge** by concatenating the shard fleets (subscriber sets are
//!    disjoint, so no pair collides) and running a cross-shard
//!    *topic-group compaction* pass: a topic split across shards pays its
//!    incoming stream once per hosting VM, so whole groups are re-homed
//!    onto co-hosting VMs with headroom, saving `ev_t` per merge.
//!
//! Every subscriber's `τ_v` depends only on its own interests, so the
//! merged allocation satisfies exactly the same thresholds as a
//! monolithic solve; the compaction pass claws back most of the
//! replication overhead partitioning introduces. Both the partitioners
//! and the merge are deterministic, so a sharded solve is reproducible
//! for a fixed configuration.

use crate::stage2::{group_pos, vm_usage, VmGroups};
use crate::{Allocation, McssError, McssInstance, Selection, SolverParams};
use cloud_cost::CostModel;
use pubsub_model::{Bandwidth, SubscriberId, TopicId, Workload};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How subscribers are divided into shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Uniform pseudo-random assignment: shard = `splitmix64(seed ⊕ v) mod k`.
    /// Best load balance, worst topic locality.
    Hash {
        /// Mixing seed; the same seed always yields the same partition.
        seed: u64,
    },
    /// Keeps each topic's followers together: every subscriber anchors to
    /// its highest-rate interest, anchor groups are assigned to shards
    /// largest-first onto the least-loaded shard (LPT balancing).
    /// Minimizes cross-shard topic splits at a small balance cost.
    #[default]
    TopicLocality,
}

/// Configuration of a sharded solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Number of shards (≥ 1; 1 behaves like a monolithic solve).
    pub shards: usize,
    /// Worker threads for the per-shard solves; 0 means one per shard.
    pub threads: usize,
    /// Subscriber partitioning strategy.
    pub partitioner: PartitionerKind,
}

impl ShardingConfig {
    /// `shards` shards, one worker thread each, topic-locality partitioning.
    pub fn new(shards: usize) -> Self {
        ShardingConfig {
            shards,
            threads: 0,
            partitioner: PartitionerKind::default(),
        }
    }

    /// Overrides the worker thread count (0 = one per shard).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the partitioner.
    pub fn with_partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    pub(crate) fn workers(&self) -> usize {
        let requested = if self.threads == 0 {
            self.shards
        } else {
            self.threads
        };
        requested.min(self.shards).max(1)
    }
}

/// What the merge step did to the concatenated shard fleets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Topic groups moved onto a VM already hosting the topic (each such
    /// move removes one duplicated incoming stream).
    pub groups_rehomed: usize,
    /// Bandwidth recovered by co-host re-homes.
    pub bandwidth_saved: Bandwidth,
    /// VMs emptied — by re-homing or by dissolving an under-full VM into
    /// the rest of the fleet — and released.
    pub vms_released: usize,
}

/// Everything a sharded solve produces.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// The merged, compaction-passed allocation (arena subscriber ids).
    pub allocation: Allocation,
    /// The union of the shard selections, in arena indexing.
    pub selection: Selection,
    /// Subscribers per shard, in shard order.
    pub shard_sizes: Vec<usize>,
    /// Compaction statistics.
    pub merge: MergeStats,
    /// Critical-path Stage-1 time (slowest shard).
    pub stage1_time: Duration,
    /// Critical-path Stage-2 time (slowest shard) plus the merge pass.
    pub stage2_time: Duration,
}

/// Partitions a workload's subscribers into `shards` disjoint groups,
/// each sorted by subscriber id. Deterministic for a fixed strategy.
///
/// # Panics
///
/// Panics if `shards` is zero (checked by callers via
/// [`McssError::ZeroShards`]).
pub fn partition_subscribers(
    workload: &Workload,
    shards: usize,
    partitioner: PartitionerKind,
) -> Vec<Vec<SubscriberId>> {
    let all: Vec<SubscriberId> = workload.subscribers().collect();
    partition_subscriber_set(workload, &all, shards, partitioner)
}

/// Partitions an arbitrary subscriber subset — e.g. one epoch's dirty
/// set — into `shards` disjoint groups, each sorted by subscriber id,
/// under the same strategies as [`partition_subscribers`]: a given
/// subscriber hashes to the same shard whether the whole workload or
/// only a subset is being split. Deterministic for a fixed strategy.
///
/// # Panics
///
/// Panics if `shards` is zero (checked by callers via
/// [`McssError::ZeroShards`]).
pub fn partition_subscriber_set(
    workload: &Workload,
    subscribers: &[SubscriberId],
    shards: usize,
    partitioner: PartitionerKind,
) -> Vec<Vec<SubscriberId>> {
    assert!(shards > 0, "shard count must be at least 1");
    let mut parts: Vec<Vec<SubscriberId>> = vec![Vec::new(); shards];
    if shards == 1 {
        parts[0] = subscribers.to_vec();
        parts[0].sort_unstable();
        return parts;
    }
    match partitioner {
        PartitionerKind::Hash { seed } => {
            for &v in subscribers {
                let h = splitmix64(seed ^ u64::from(v.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                parts[(h % shards as u64) as usize].push(v);
            }
        }
        PartitionerKind::TopicLocality => {
            // Anchor each subscriber to its loudest interest (ties to the
            // lowest topic id) — the head of its rate-ranked row, an O(1)
            // lookup. Anchor groups invert through the shared counting-
            // sort CSR (no hashing, no per-topic Vecs); anchorless
            // subscribers balance in afterwards.
            let mut pairs: Vec<(TopicId, SubscriberId)> = Vec::with_capacity(subscribers.len());
            let mut anchorless: Vec<SubscriberId> = Vec::new();
            for &v in subscribers {
                match workload.ranked_interests(v).first() {
                    Some(&t) => pairs.push((t, v)),
                    None => anchorless.push(v),
                }
            }
            let groups = crate::TopicGroups::from_pairs(&pairs, workload.num_topics());
            // Largest group first onto the least-loaded shard (LPT), ties
            // by topic id then shard index — deterministic.
            let mut ordered: Vec<u32> = (0..groups.len() as u32).collect();
            ordered.sort_unstable_by_key(|&g| {
                (
                    Reverse(groups.subscribers(g as usize).len()),
                    groups.topic(g as usize),
                )
            });
            let mut load = vec![0usize; shards];
            for g in ordered {
                let vs = groups.subscribers(g as usize);
                let target = least_loaded(&load);
                load[target] += vs.len();
                parts[target].extend_from_slice(vs);
            }
            for v in anchorless {
                let target = least_loaded(&load);
                load[target] += 1;
                parts[target].push(v);
            }
        }
    }
    for p in &mut parts {
        p.sort_unstable();
    }
    parts
}

fn least_loaded(load: &[usize]) -> usize {
    let mut best = 0usize;
    for (i, &l) in load.iter().enumerate() {
        if l < load[best] {
            best = i;
        }
    }
    best
}

/// `splitmix64` finalizer — a cheap, well-mixed stateless hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard-parallel two-stage solver.
///
/// ```
/// use cloud_cost::{LinearCostModel, Money};
/// use mcss_core::{McssInstance, ShardedSolver, ShardingConfig, SolverParams};
/// use pubsub_model::{Bandwidth, Rate, Workload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Workload::builder();
/// let t = b.add_topic(Rate::new(10))?;
/// for _ in 0..8 {
///     b.add_subscriber([t])?;
/// }
/// let inst = McssInstance::new(b.build(), Rate::new(10), Bandwidth::new(100))?;
/// let cost = LinearCostModel::new(Money::from_dollars(1), Money::from_micros(1));
///
/// let solver = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(2));
/// let outcome = solver.solve(&inst, &cost)?;
/// outcome.allocation.validate(inst.workload(), inst.tau())?;
/// assert_eq!(outcome.shard_sizes.iter().sum::<usize>(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShardedSolver {
    params: SolverParams,
    sharding: ShardingConfig,
}

/// One shard's solve products, in arrival order.
struct ShardSolve {
    selection: Selection,
    allocation: Allocation,
    stage1: Duration,
    stage2: Duration,
}

impl ShardedSolver {
    /// Creates a sharded solver running `params`' selector and allocator
    /// per shard. Any `sharding` already present in `params` is ignored
    /// in favour of the explicit configuration.
    pub fn new(params: SolverParams, sharding: ShardingConfig) -> Self {
        ShardedSolver { params, sharding }
    }

    /// The sharding configuration.
    pub fn sharding(&self) -> ShardingConfig {
        self.sharding
    }

    /// Partitions, solves every shard on scoped threads, and merges.
    ///
    /// # Errors
    ///
    /// [`McssError::ZeroShards`] for a zero shard count; otherwise the
    /// first per-shard selector/allocator error in shard order.
    pub fn solve(
        &self,
        instance: &McssInstance,
        cost: &dyn CostModel,
    ) -> Result<ShardedOutcome, McssError> {
        if self.sharding.shards == 0 {
            return Err(McssError::ZeroShards);
        }
        let workload = instance.workload();
        let partition =
            partition_subscribers(workload, self.sharding.shards, self.sharding.partitioner);
        let tau = instance.tau();
        let capacity = instance.capacity();
        let params = self.params;

        let shard_solves = run_shards(&partition, self.sharding.workers(), |subs| {
            let view = workload.subset_view(subs);
            let selector = params.selector.build();
            let allocator = params.allocator.build();
            let t0 = Instant::now();
            let selection = selector.select_view(view, tau)?;
            let stage1 = t0.elapsed();
            let t1 = Instant::now();
            let allocation = allocator.allocate_view(view, &selection, capacity, cost)?;
            let stage2 = t1.elapsed();
            Ok(ShardSolve {
                selection,
                allocation,
                stage1,
                stage2,
            })
        })?;

        let stage1_time = shard_solves
            .iter()
            .map(|s| s.stage1)
            .max()
            .unwrap_or_default();
        let shard2_time = shard_solves
            .iter()
            .map(|s| s.stage2)
            .max()
            .unwrap_or_default();

        // Scatter shard-local selection rows back to arena indexing: one
        // pass sizes every arena row, a second copies the rows into a
        // global CSR selection — no per-subscriber allocation.
        let merge_start = Instant::now();
        let n = workload.num_subscribers();
        let mut offsets = vec![0usize; n + 1];
        for (subs, solve) in partition.iter().zip(&shard_solves) {
            for (local, row) in solve.selection.rows().enumerate() {
                offsets[subs[local].index() + 1] = row.len();
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut topics = vec![TopicId::new(0); offsets[n]];
        let mut fleet: Vec<VmGroups> = Vec::new();
        for (subs, solve) in partition.iter().zip(shard_solves) {
            for (local, row) in solve.selection.rows().enumerate() {
                let start = offsets[subs[local].index()];
                topics[start..start + row.len()].copy_from_slice(row);
            }
            fleet.extend(solve.allocation.into_vm_groups());
        }
        let selection = Selection::from_csr(offsets, topics);
        let merge = compact_topic_groups(&mut fleet, workload, capacity);
        let allocation = Allocation::from_groups(fleet, workload, capacity);
        let stage2_time = shard2_time + merge_start.elapsed();

        Ok(ShardedOutcome {
            allocation,
            selection,
            shard_sizes: partition.iter().map(Vec::len).collect(),
            merge,
            stage1_time,
            stage2_time,
        })
    }

    /// Packs an existing whole-workload `selection` shard-by-shard and
    /// merges — the Stage-2-only entry point used by the incremental
    /// re-allocator's full-resolve path (Stage 1 there has already run on
    /// the new workload).
    ///
    /// # Errors
    ///
    /// [`McssError::ZeroShards`] for a zero shard count; otherwise the
    /// first per-shard allocator error in shard order.
    pub fn allocate(
        &self,
        instance: &McssInstance,
        selection: &Selection,
        cost: &dyn CostModel,
    ) -> Result<(Allocation, MergeStats), McssError> {
        if self.sharding.shards == 0 {
            return Err(McssError::ZeroShards);
        }
        let workload = instance.workload();
        let partition =
            partition_subscribers(workload, self.sharding.shards, self.sharding.partitioner);
        let capacity = instance.capacity();
        let params = self.params;

        let allocations = run_shards(&partition, self.sharding.workers(), |subs| {
            let view = workload.subset_view(subs);
            let mut local = crate::SelectionBuilder::with_capacity(subs.len(), 0);
            for &v in subs {
                local.push_row_slice(selection.selected(v));
            }
            params
                .allocator
                .build()
                .allocate_view(view, &local.build(), capacity, cost)
        })?;

        let mut fleet: Vec<VmGroups> = Vec::new();
        for allocation in allocations {
            fleet.extend(allocation.into_vm_groups());
        }
        let merge = compact_topic_groups(&mut fleet, workload, capacity);
        Ok((Allocation::from_groups(fleet, workload, capacity), merge))
    }
}

/// Runs `f` once per shard across `workers` scoped threads, preserving
/// shard order in the result and reporting the first error in shard order.
pub(crate) fn run_shards<T: Send>(
    partition: &[Vec<SubscriberId>],
    workers: usize,
    f: impl Fn(&[SubscriberId]) -> Result<T, McssError> + Sync,
) -> Result<Vec<T>, McssError> {
    let shards = partition.len();
    let mut slots: Vec<Option<Result<T, McssError>>> = Vec::new();
    slots.resize_with(shards, || None);
    if workers <= 1 || shards <= 1 {
        for (s, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(&partition[s]));
        }
    } else {
        let chunk = shards.div_ceil(workers);
        std::thread::scope(|scope| {
            for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                let f = &f;
                scope.spawn(move || {
                    for (off, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(f(&partition[start + off]));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard slot is filled"))
        .collect()
}

/// The cross-shard merge pass, in two phases:
///
/// 1. **Topic-group re-homing** — while a topic is hosted on several VMs
///    and another of its hosts has headroom for a whole group, move the
///    smallest group there. Every move removes one incoming stream
///    (`ev_t`) and never adds a VM.
/// 2. **Under-full VM dissolution** — lightest VM first, try to relocate
///    *every* group of a VM onto the rest of the fleet (co-hosts
///    preferred: those moves also save an incoming stream); commit only
///    when the whole VM empties, then release it.
///
/// Both phases keep bandwidth non-increasing and only ever shrink the
/// fleet, so total cost is non-increasing under any monotone cost model;
/// both visit VMs and topics in sorted order, so the merge is
/// deterministic.
fn compact_topic_groups(
    fleet: &mut Vec<VmGroups>,
    workload: &Workload,
    capacity: Bandwidth,
) -> MergeStats {
    let mut used: Vec<Bandwidth> = fleet.iter().map(|vm| vm_usage(vm, workload)).collect();

    // Topic → hosting VM indices, discovered in VM order; topics visited
    // in ascending id order for determinism. The index is append-only —
    // a VM that later loses the topic is detected by re-probing its rows.
    let mut host_index: HashMap<TopicId, Vec<usize>> = HashMap::new();
    for (i, vm) in fleet.iter().enumerate() {
        for &(t, _) in vm.iter() {
            host_index.entry(t).or_default().push(i);
        }
    }
    let mut split_topics: Vec<TopicId> = host_index
        .iter()
        .filter(|(_, vms)| vms.len() > 1)
        .map(|(&t, _)| t)
        .collect();
    split_topics.sort_unstable();

    let mut stats = MergeStats::default();
    for t in split_topics {
        let rate = workload.rate(t);
        loop {
            // Hosts still holding the topic, smallest group first.
            let mut live: Vec<(usize, usize)> = host_index[&t]
                .iter()
                .filter_map(|&i| group_pos(&fleet[i], t).map(|pos| (i, pos)))
                .collect();
            if live.len() < 2 {
                break;
            }
            live.sort_unstable_by_key(|&(i, pos)| (fleet[i][pos].1.len(), i));
            let (src, src_pos) = live[0];
            let group_out = rate * fleet[src][src_pos].1.len() as u64;
            // Destination: co-host with the most free room (ties to the
            // lowest VM index) that can absorb the whole group.
            let dst = live[1..]
                .iter()
                .copied()
                .filter(|&(i, _)| capacity.saturating_sub(used[i]) >= group_out)
                .max_by_key(|&(i, _)| (capacity.saturating_sub(used[i]), Reverse(i)));
            let Some((dst, dst_pos)) = dst else {
                break; // nothing can take the smallest group whole
            };
            let (_, moved) = fleet[src].remove(src_pos);
            used[src] = used[src].saturating_sub(group_out + rate.volume());
            used[dst] += group_out;
            fleet[dst][dst_pos].1.extend(moved);
            stats.groups_rehomed += 1;
            stats.bandwidth_saved += rate.volume();
        }
    }

    // Phase 2: dissolve under-full VMs wholesale, one lightest-first
    // pass. Plan a new home for each of the source VM's groups (a
    // co-host needs `n·ev_t` and saves an incoming stream; any other VM
    // needs `(n+1)·ev_t` and is bandwidth-neutral); commit only if the
    // whole VM empties. Dissolving only ever raises the rest of the
    // fleet's load, so later candidates never become newly dissolvable —
    // a single pass suffices.
    let mut total_free: u128 = used
        .iter()
        .map(|&u| u128::from(capacity.saturating_sub(u).get()))
        .sum();
    // Only VMs at ≤ 75% utilization are dissolution candidates — heavier
    // ones almost never fit elsewhere once the fleet is packed, and
    // probing one costs a full plan — capped to the 16 lightest so merge
    // time stays bounded at any fleet size. The CBP tails this pass
    // exists for (the last, part-filled VM of each shard fleet) are
    // always among them.
    let mut order: Vec<usize> = (0..fleet.len())
        .filter(|&i| {
            !fleet[i].is_empty() && u128::from(used[i].get()) * 4 <= u128::from(capacity.get()) * 3
        })
        .collect();
    order.sort_unstable_by_key(|&i| (used[i], i));
    order.truncate(16);
    // Lightest-first means feasibility only degrades along the order;
    // after a few consecutive failures the rest of the fleet is packed
    // too tight for anything heavier, so stop probing.
    const MAX_CONSECUTIVE_FAILURES: usize = 4;
    let mut consecutive_failures = 0usize;
    for &src in &order {
        if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
            break;
        }
        // Cheap necessary condition: the rest of the fleet must have at
        // least the source's volume free (re-homing can only need less).
        let src_free = u128::from(capacity.saturating_sub(used[src]).get());
        if u128::from(used[src].get()) > total_free - src_free {
            consecutive_failures += 1;
            continue;
        }
        // Plan with tentative headroom so one destination is not
        // promised to two groups. Rows are sorted by topic, so the plan
        // is deterministic.
        let mut claimed: HashMap<usize, Bandwidth> = HashMap::new();
        let mut plan: Vec<(usize, bool)> = Vec::with_capacity(fleet[src].len());
        let mut feasible = true;
        for &(t, ref subs) in &fleet[src] {
            let rate = workload.rate(t);
            let pairs = subs.len() as u64;
            let free_at = |i: usize, claimed: &HashMap<usize, Bandwidth>| {
                capacity
                    .saturating_sub(used[i])
                    .saturating_sub(claimed.get(&i).copied().unwrap_or(Bandwidth::ZERO))
            };
            let cohost = host_index
                .get(&t)
                .into_iter()
                .flatten()
                .copied()
                // Skip stale index entries (topic lost to a phase-1 move
                // or an earlier dissolution).
                .filter(|&i| i != src && group_pos(&fleet[i], t).is_some())
                .filter(|&i| free_at(i, &claimed) >= rate * pairs)
                .max_by_key(|&i| (free_at(i, &claimed), Reverse(i)));
            let (dst, is_cohost) = match cohost {
                Some(i) => {
                    *claimed.entry(i).or_insert(Bandwidth::ZERO) += rate * pairs;
                    (i, true)
                }
                None => {
                    let other = (0..fleet.len())
                        .filter(|&i| i != src && !fleet[i].is_empty())
                        .filter(|&i| free_at(i, &claimed) >= rate * (pairs + 1))
                        .max_by_key(|&i| (free_at(i, &claimed), Reverse(i)));
                    let Some(i) = other else {
                        feasible = false;
                        break;
                    };
                    *claimed.entry(i).or_insert(Bandwidth::ZERO) += rate * (pairs + 1);
                    (i, false)
                }
            };
            plan.push((dst, is_cohost));
        }
        if !feasible {
            consecutive_failures += 1;
            continue;
        }
        consecutive_failures = 0;
        let rows = std::mem::take(&mut fleet[src]);
        used[src] = Bandwidth::ZERO;
        for ((t, moved), (dst, is_cohost)) in rows.into_iter().zip(plan) {
            let rate = workload.rate(t);
            let pairs = moved.len() as u64;
            total_free += u128::from((rate * (pairs + 1)).get());
            if is_cohost {
                used[dst] += rate * pairs;
                total_free -= u128::from((rate * pairs).get());
                let pos = group_pos(&fleet[dst], t).expect("co-host still hosts the topic");
                fleet[dst][pos].1.extend(moved);
                stats.groups_rehomed += 1;
                stats.bandwidth_saved += rate.volume();
            } else {
                used[dst] += rate * (pairs + 1);
                total_free -= u128::from((rate * (pairs + 1)).get());
                let pos = fleet[dst]
                    .binary_search_by_key(&t, |&(tt, _)| tt)
                    .expect_err("dst does not host the topic");
                fleet[dst].insert(pos, (t, moved));
                host_index.entry(t).or_default().push(dst);
            }
        }
    }

    let before = fleet.len();
    fleet.retain(|vm| !vm.is_empty());
    stats.vms_released = before - fleet.len();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::PairSelector;
    use cloud_cost::{LinearCostModel, Money};
    use pubsub_model::Rate;

    fn cost() -> LinearCostModel {
        LinearCostModel::new(Money::from_dollars(2), Money::from_micros(3))
    }

    /// 12 topics, 60 subscribers with overlapping interests.
    fn workload() -> Workload {
        let mut b = Workload::builder();
        let ts: Vec<TopicId> = (0..12)
            .map(|i| b.add_topic(Rate::new(5 + i * 7)).unwrap())
            .collect();
        for vi in 0..60u32 {
            let tv: Vec<TopicId> = ts
                .iter()
                .copied()
                .filter(|t| (t.raw() * 5 + vi) % 4 != 0)
                .collect();
            b.add_subscriber(tv).unwrap();
        }
        b.build()
    }

    fn instance() -> McssInstance {
        McssInstance::new(workload(), Rate::new(60), Bandwidth::new(700)).unwrap()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let w = workload();
        for partitioner in [
            PartitionerKind::Hash { seed: 9 },
            PartitionerKind::TopicLocality,
        ] {
            let parts = partition_subscribers(&w, 4, partitioner);
            assert_eq!(parts.len(), 4);
            let mut seen = vec![false; w.num_subscribers()];
            for p in &parts {
                assert!(p.windows(2).all(|w| w[0] < w[1]), "unsorted shard");
                for v in p {
                    assert!(!seen[v.index()], "{v} in two shards ({partitioner:?})");
                    seen[v.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "subscriber lost ({partitioner:?})");
        }
    }

    #[test]
    fn hash_partition_is_seed_deterministic_and_roughly_balanced() {
        let w = workload();
        let a = partition_subscribers(&w, 4, PartitionerKind::Hash { seed: 1 });
        let b = partition_subscribers(&w, 4, PartitionerKind::Hash { seed: 1 });
        let c = partition_subscribers(&w, 4, PartitionerKind::Hash { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should shuffle differently");
        for p in &a {
            assert!(p.len() >= 5, "badly skewed shard: {}", p.len());
        }
    }

    #[test]
    fn topic_locality_groups_followers() {
        // Two loud topics, disjoint follower sets bigger than half: the
        // partitioner must not split either follower group.
        let mut b = Workload::builder();
        let loud0 = b.add_topic(Rate::new(1000)).unwrap();
        let loud1 = b.add_topic(Rate::new(900)).unwrap();
        let quiet = b.add_topic(Rate::new(1)).unwrap();
        for i in 0..20u32 {
            if i % 2 == 0 {
                b.add_subscriber([loud0, quiet]).unwrap();
            } else {
                b.add_subscriber([loud1, quiet]).unwrap();
            }
        }
        let w = b.build();
        let parts = partition_subscribers(&w, 2, PartitionerKind::TopicLocality);
        for p in &parts {
            let anchors: std::collections::BTreeSet<TopicId> = p
                .iter()
                .map(|&v| {
                    w.interests(v)
                        .iter()
                        .copied()
                        .max_by_key(|&t| (w.rate(t), Reverse(t)))
                        .unwrap()
                })
                .collect();
            assert_eq!(anchors.len(), 1, "anchor group split across shards");
        }
    }

    #[test]
    fn sharded_solve_is_valid_and_complete() {
        let inst = instance();
        for shards in [1usize, 2, 3, 8, 100] {
            let solver = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(shards));
            let out = solver.solve(&inst, &cost()).unwrap();
            out.allocation
                .validate(inst.workload(), inst.tau())
                .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
            assert_eq!(out.shard_sizes.len(), shards);
            assert_eq!(
                out.shard_sizes.iter().sum::<usize>(),
                inst.workload().num_subscribers()
            );
            assert!(out.selection.satisfies(inst.workload(), inst.tau()));
        }
    }

    #[test]
    fn sharded_selection_matches_monolithic_gsp() {
        // GSP is per-subscriber independent: the union of the shard
        // selections must equal the monolithic selection exactly.
        let inst = instance();
        let mono = crate::stage1::GreedySelectPairs::new()
            .select(&inst)
            .unwrap();
        let sharded = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(4))
            .solve(&inst, &cost())
            .unwrap();
        assert_eq!(mono, sharded.selection);
    }

    #[test]
    fn zero_shards_is_an_error() {
        let inst = instance();
        let solver = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(0));
        assert_eq!(
            solver.solve(&inst, &cost()).unwrap_err(),
            McssError::ZeroShards
        );
        let sel = crate::stage1::GreedySelectPairs::new()
            .select(&inst)
            .unwrap();
        assert_eq!(
            solver.allocate(&inst, &sel, &cost()).unwrap_err(),
            McssError::ZeroShards
        );
    }

    #[test]
    fn sharded_solve_is_deterministic() {
        let inst = instance();
        for partitioner in [
            PartitionerKind::Hash { seed: 5 },
            PartitionerKind::TopicLocality,
        ] {
            let solver = ShardedSolver::new(
                SolverParams::default(),
                ShardingConfig::new(4)
                    .with_threads(3)
                    .with_partitioner(partitioner),
            );
            let a = solver.solve(&inst, &cost()).unwrap();
            let b = solver.solve(&inst, &cost()).unwrap();
            assert_eq!(a.allocation, b.allocation, "{partitioner:?}");
            assert_eq!(a.selection, b.selection);
            assert_eq!(a.merge, b.merge);
        }
    }

    #[test]
    fn compaction_rehomes_duplicated_topic_groups() {
        // Two VMs both hosting topic 0 with room to merge: compaction
        // must fuse them and release a VM.
        let w = {
            let mut b = Workload::builder();
            let t = b.add_topic(Rate::new(10)).unwrap();
            for _ in 0..4 {
                b.add_subscriber([t]).unwrap();
            }
            b.build()
        };
        let v = SubscriberId::new;
        let mut fleet: Vec<VmGroups> = vec![
            vec![(TopicId::new(0), vec![v(0), v(1)])],
            vec![(TopicId::new(0), vec![v(2), v(3)])],
        ];
        let stats = compact_topic_groups(&mut fleet, &w, Bandwidth::new(100));
        assert_eq!(stats.groups_rehomed, 1);
        assert_eq!(stats.bandwidth_saved, Bandwidth::new(10));
        assert_eq!(stats.vms_released, 1);
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet[0][0].1.len(), 4);
    }

    #[test]
    fn compaction_respects_capacity() {
        // Both hosts nearly full: no legal move, nothing happens.
        let w = {
            let mut b = Workload::builder();
            let t = b.add_topic(Rate::new(10)).unwrap();
            for _ in 0..4 {
                b.add_subscriber([t]).unwrap();
            }
            b.build()
        };
        let v = SubscriberId::new;
        let mut fleet: Vec<VmGroups> = vec![
            vec![(TopicId::new(0), vec![v(0), v(1)])],
            vec![(TopicId::new(0), vec![v(2), v(3)])],
        ];
        // Each VM uses 30; moving a 2-pair group needs 20 free but only
        // 9 is available.
        let stats = compact_topic_groups(&mut fleet, &w, Bandwidth::new(39));
        assert_eq!(stats.groups_rehomed, 0);
        assert_eq!(fleet.len(), 2);
    }

    #[test]
    fn sharded_cost_stays_close_to_monolithic() {
        let inst = instance();
        let c = cost();
        let mono = crate::Solver::default().solve(&inst, &c).unwrap();
        let sharded = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(4))
            .solve(&inst, &c)
            .unwrap();
        let mono_cost = mono.allocation.cost(&c).micros() as f64;
        let shard_cost = sharded.allocation.cost(&c).micros() as f64;
        assert!(
            shard_cost <= mono_cost * 1.25,
            "sharded {shard_cost} vs monolithic {mono_cost}"
        );
    }

    #[test]
    fn allocate_entry_point_matches_solve() {
        let inst = instance();
        let c = cost();
        let solver = ShardedSolver::new(SolverParams::default(), ShardingConfig::new(3));
        let solved = solver.solve(&inst, &c).unwrap();
        let (alloc, merge) = solver.allocate(&inst, &solved.selection, &c).unwrap();
        assert_eq!(alloc, solved.allocation);
        assert_eq!(merge, solved.merge);
    }
}
