//! Property tests for the `MCSSTOR1` container and the workload codec:
//! random workloads round-trip bit-identically, sections land
//! page-aligned, and header-level damage fails closed.

use mcss_store::{crc32, section, StoreBuilder, StoreError, StoreReader, WorkloadStoreExt, PAGE};
use proptest::prelude::*;
use pubsub_model::{Rate, TopicId, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcss-store-rt-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random workload: `topics` rates in 1..=max_rate, each subscriber
/// interested in a random subset (possibly with duplicates — the
/// builder normalizes them).
fn arb_workload() -> impl Strategy<Value = Workload> {
    (1usize..12, 0usize..24).prop_flat_map(|(topics, subs)| {
        (
            proptest::collection::vec(1u64..500, topics),
            proptest::collection::vec(proptest::collection::vec(0..topics as u32, 0..8), subs),
        )
            .prop_map(|(rates, interests)| {
                Workload::from_parts(
                    rates.into_iter().map(Rate::new).collect(),
                    interests
                        .into_iter()
                        .map(|row| row.into_iter().map(TopicId::new).collect())
                        .collect(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole contract: `to_store` → `from_store` is the identity
    /// on every arena, primaries and derived tables alike.
    #[test]
    fn workload_roundtrips_bit_identically(workload in arb_workload()) {
        let dir = scratch("wl");
        let path = dir.join("workload.mcss");
        workload.to_store(&path).unwrap();
        let loaded = Workload::from_store(&path).unwrap();
        prop_assert_eq!(&loaded, &workload);
        for v in workload.subscribers() {
            prop_assert_eq!(loaded.interests(v), workload.interests(v));
            prop_assert_eq!(loaded.ranked_interests(v), workload.ranked_interests(v));
        }
        for t in workload.topics() {
            prop_assert_eq!(loaded.subscribers_of(t), workload.subscribers_of(t));
        }
        prop_assert_eq!(loaded.pair_count(), workload.pair_count());
        prop_assert_eq!(loaded.total_rate(), workload.total_rate());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every section payload sits at a page-aligned offset with the
    /// exact length and CRC the table declares.
    #[test]
    fn sections_are_page_aligned_and_checksummed(workload in arb_workload()) {
        let dir = scratch("align");
        let path = dir.join("workload.mcss");
        workload.to_store(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let reader = StoreReader::open(&path).unwrap();
        prop_assert_eq!(reader.file_len(), bytes.len() as u64);
        for info in reader.sections() {
            prop_assert_eq!(info.offset % PAGE as u64, 0);
            prop_assert!(info.offset >= PAGE as u64);
            let payload = &bytes[info.offset as usize..(info.offset + info.len) as usize];
            prop_assert_eq!(crc32(payload), info.crc);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the file anywhere makes open fail closed — either the
    /// header length check or (cut inside the header page) the magic /
    /// checksum checks — never a panic, never silent success.
    #[test]
    fn truncation_fails_closed(workload in arb_workload(), cut_raw in 0usize..1_000_000) {
        let dir = scratch("trunc");
        let path = dir.join("workload.mcss");
        workload.to_store(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut_raw % bytes.len();
        let err = StoreReader::from_bytes(bytes[..cut].to_vec()).unwrap_err();
        prop_assert!(
            matches!(
                err,
                StoreError::BadMagic | StoreError::HeaderCorrupt(_)
            ),
            "unexpected error for cut at {cut}: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn empty_workload_roundtrips() {
    let dir = scratch("empty");
    let path = dir.join("empty.mcss");
    let workload = Workload::from_parts(Vec::new(), Vec::new());
    workload.to_store(&path).unwrap();
    let loaded = Workload::from_store(&path).unwrap();
    assert_eq!(loaded, workload);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_rejected() {
    let err = StoreReader::from_bytes(b"NOTASTOR".repeat(PAGE / 8)).unwrap_err();
    assert!(matches!(err, StoreError::BadMagic), "got: {err}");
}

#[test]
fn future_version_is_rejected_by_number() {
    let dir = scratch("version");
    let path = dir.join("v.mcss");
    Workload::from_parts(vec![Rate::new(5)], vec![vec![TopicId::new(0)]])
        .to_store(&path)
        .unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    // Re-seal the header so the version check, not the checksum, fires.
    bytes[24..28].copy_from_slice(&[0; 4]);
    let reseal = crc32(&bytes[..PAGE]);
    bytes[24..28].copy_from_slice(&reseal.to_le_bytes());
    let err = StoreReader::from_bytes(bytes).unwrap_err();
    assert!(
        matches!(err, StoreError::UnsupportedVersion(99)),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_section_is_named() {
    let store = StoreBuilder::new().to_bytes();
    let reader = StoreReader::from_bytes(store).unwrap();
    let err = reader.bytes(section::RATES).unwrap_err();
    assert!(
        err.to_string().contains("`rates`"),
        "missing-section error must name the section: {err}"
    );
}

#[test]
fn unknown_sections_are_preserved_for_future_writers() {
    let mut b = StoreBuilder::new();
    b.section(0x7F, vec![1, 2, 3]);
    let reader = StoreReader::from_bytes(b.to_bytes()).unwrap();
    assert_eq!(reader.sections().len(), 1);
    assert_eq!(reader.sections()[0].name, "unknown");
    assert_eq!(reader.bytes(0x7F).unwrap(), &[1, 2, 3]);
}
