//! Shared-incoming-aware greedy selection (extension).
//!
//! Alg. 1 prices every pair at `2·ev_t`, charging the incoming stream once
//! per pair. In the real objective the incoming stream of a topic is paid
//! once per VM hosting it, so when some earlier subscriber already pulled
//! topic `t` into `S`, the *marginal* cost of `(t, v)` is only the
//! outgoing `ev_t`. This selector exploits that: the benefit-cost ratio of
//! Alg. 1 becomes `min(1, ev/rem) / ev` for already-selected topics and
//! `min(1, ev/rem) / (2·ev)` for fresh ones.
//!
//! The closed forms of those ratios (`1/rem` for shared non-exceeders,
//! `1/(2·rem)` for fresh non-exceeders, `1/ev` / `1/(2·ev)` for
//! exceeders) yield the same sweep structure as GSP: consume shared
//! non-exceeders first (strictly the best class), then repeatedly compare
//! the best fresh non-exceeder against the cheapest exceeder until
//! satisfied. This is the paper's machinery taken one step further, kept
//! as an explicitly-labelled extension (see DESIGN.md) and measured in the
//! ablation bench.

use super::PairSelector;
use crate::{McssError, Selection, SelectionBuilder};
use pubsub_model::{Rate, SubscriberId, TopicId, WorkloadView};

/// Greedy Stage-1 selector that charges shared incoming streams once.
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedAwareGreedy {}

impl SharedAwareGreedy {
    /// Creates the selector.
    pub fn new() -> Self {
        SharedAwareGreedy {}
    }
}

impl PairSelector for SharedAwareGreedy {
    fn name(&self) -> &'static str {
        "GSP-shared"
    }

    fn select_view(&self, view: WorkloadView<'_>, tau: Rate) -> Result<Selection, McssError> {
        let mut in_solution = vec![false; view.num_topics()];
        let mut builder = SelectionBuilder::with_capacity(view.num_subscribers(), 0);
        for v in view.subscribers() {
            let chosen = select_one(view, v, tau, &in_solution);
            for &t in &chosen {
                in_solution[t.index()] = true;
            }
            builder.push_row(chosen);
        }
        Ok(builder.build())
    }
}

/// Candidate classes for phase 2, in tie-break priority order.
// "Exceeder" is this algorithm's term for a topic whose rate exceeds the
// remaining demand `rem`; the shared postfix is domain vocabulary.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    FreshNonExceeder,
    SharedExceeder,
    FreshExceeder,
}

/// Selection for one subscriber given the set of topics already in `S`.
fn select_one(
    view: WorkloadView<'_>,
    v: SubscriberId,
    tau: Rate,
    in_solution: &[bool],
) -> Vec<TopicId> {
    let interests = view.interests(v);
    if interests.is_empty() {
        return Vec::new();
    }
    let tau_v = view.tau_v(v, tau);
    if view.subscriber_total_rate(v) <= tau_v {
        return interests.to_vec();
    }

    // Split interests into shared (already in S) and fresh. The ranked
    // arena is already in (descending rate, ascending id) order, so the
    // partition preserves it — no sort.
    let ranked = view.ranked_interests(v);
    let shared: Vec<TopicId> = ranked
        .iter()
        .copied()
        .filter(|t| in_solution[t.index()])
        .collect();
    let fresh: Vec<TopicId> = ranked
        .iter()
        .copied()
        .filter(|t| !in_solution[t.index()])
        .collect();

    let mut selected = Vec::new();
    let mut rem = tau_v;

    // Phase 1: shared non-exceeders have ratio 1/rem — strictly the best
    // class. A descending sweep consumes them; every shared topic left
    // unselected afterwards exceeds the final rem.
    let mut shared_taken = vec![false; shared.len()];
    for (i, &t) in shared.iter().enumerate() {
        if rem.is_zero() {
            break;
        }
        let ev = view.rate(t);
        if ev <= rem {
            selected.push(t);
            shared_taken[i] = true;
            rem = rem.saturating_sub(ev);
        }
    }

    // Phase 2: pick the candidate with the smallest cost key each round:
    // fresh non-exceeder key = 2·rem, shared exceeder key = ev, fresh
    // exceeder key = 2·ev (keys are the reciprocals of the benefit-cost
    // ratios). Selecting an exceeder satisfies the subscriber and ends
    // the loop; selecting a non-exceeder shrinks rem and continues.
    let mut fresh_ptr = 0usize;
    let mut fresh_taken: Vec<bool> = vec![false; fresh.len()];
    while !rem.is_zero() {
        // Largest fresh non-exceeder: rem only shrinks, so items skipped
        // for exceeding once exceed forever and the pointer is monotone.
        while fresh_ptr < fresh.len()
            && (fresh_taken[fresh_ptr] || view.rate(fresh[fresh_ptr]) > rem)
        {
            fresh_ptr += 1;
        }
        let fresh_nonexc: Option<TopicId> = fresh.get(fresh_ptr).copied();

        // Smallest shared exceeder: last untaken entry of the shared list.
        let shared_exc: Option<TopicId> = shared
            .iter()
            .zip(&shared_taken)
            .rev()
            .find(|&(_, &taken)| !taken)
            .map(|(&t, _)| t);

        // Smallest fresh exceeder: exceeders form the descending prefix
        // `[0, p)` of the current rem. Items taken in earlier rounds (as
        // non-exceeders of a larger rem) may have drifted into the prefix,
        // so skip taken entries.
        let p = fresh.partition_point(|&t| view.rate(t) > rem);
        let fresh_exc: Option<TopicId> = fresh[..p]
            .iter()
            .zip(&fresh_taken[..p])
            .rev()
            .find(|&(_, &taken)| !taken)
            .map(|(&t, _)| t);

        let mut best: Option<(u128, Class, TopicId)> = None;
        let mut consider = |key: u128, class: Class, t: TopicId| {
            if best.is_none_or(|(bk, bc, _)| (key, class) < (bk, bc)) {
                best = Some((key, class, t));
            }
        };
        if let Some(t) = fresh_nonexc {
            consider(2 * u128::from(rem.get()), Class::FreshNonExceeder, t);
        }
        if let Some(t) = shared_exc {
            consider(u128::from(view.rate(t).get()), Class::SharedExceeder, t);
        }
        if let Some(t) = fresh_exc {
            consider(2 * u128::from(view.rate(t).get()), Class::FreshExceeder, t);
        }

        let (_, class, t) = best.expect("total > tau_v guarantees an unselected candidate exists");
        selected.push(t);
        match class {
            Class::FreshNonExceeder => {
                fresh_taken[fresh_ptr] = true;
                rem = rem.saturating_sub(view.rate(t));
            }
            // Exceeders overshoot the remaining need: done.
            Class::SharedExceeder | Class::FreshExceeder => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::GreedySelectPairs;
    use crate::McssInstance;
    use pubsub_model::{Bandwidth, Workload};

    fn instance(rates: &[u64], interests: &[&[u32]], tau: u64) -> McssInstance {
        let mut b = Workload::builder();
        for &r in rates {
            b.add_topic(Rate::new(r)).unwrap();
        }
        for tv in interests {
            b.add_subscriber(tv.iter().map(|&t| TopicId::new(t)))
                .unwrap();
        }
        McssInstance::new(b.build(), Rate::new(tau), Bandwidth::new(1 << 40)).unwrap()
    }

    /// True marginal bandwidth of a selection: outgoing per pair plus one
    /// incoming stream per distinct selected topic (single-VM view).
    fn true_volume(s: &Selection, w: &Workload) -> u64 {
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0u64;
        for p in s.iter_pairs() {
            total += w.rate(p.topic).get();
            if seen.insert(p.topic) {
                total += w.rate(p.topic).get();
            }
        }
        total
    }

    #[test]
    fn reuses_topics_selected_for_earlier_subscribers() {
        // Both subscribers can be satisfied by t0 (rate 10) or t1 (rate 10).
        // Plain GSP treats them independently; tie-break picks the same
        // topic for both — but make the interesting case explicit: v0 only
        // knows t0; v1 knows both and should reuse t0 (marginal cost 10)
        // rather than open t1 (marginal cost 20).
        let inst = instance(&[10, 12], &[&[0], &[0, 1]], 10);
        let s = SharedAwareGreedy::new().select(&inst).unwrap();
        assert_eq!(s.selected(SubscriberId::new(1)), &[TopicId::new(0)]);
    }

    #[test]
    fn shared_exceeder_can_beat_fresh_nonexceeder() {
        // v0 pulls t0 (rate 12) into S. v1 needs 10 and knows t0 plus
        // fresh t1 (rate 8): shared exceeder key = 12 beats fresh
        // non-exceeder key = 2·10 = 20 — reuse t0 even though it
        // overshoots.
        let inst = instance(&[12, 8], &[&[0], &[0, 1]], 10);
        let s = SharedAwareGreedy::new().select(&inst).unwrap();
        assert_eq!(s.selected(SubscriberId::new(1)), &[TopicId::new(0)]);
    }

    #[test]
    fn fresh_nonexceeder_wins_when_cheaper() {
        // Shared t0 rate 25; fresh t1 rate 9, τ = 10: fresh non-exceeder
        // key 20 < shared exceeder key 25 → take t1 first; then rem = 1,
        // shared exceeder key 25 vs fresh none → t0. Hmm, that makes both.
        // Use τ = 9 so t1 alone satisfies.
        let inst = instance(&[25, 9], &[&[0], &[0, 1]], 9);
        let s = SharedAwareGreedy::new().select(&inst).unwrap();
        assert_eq!(s.selected(SubscriberId::new(1)), &[TopicId::new(1)]);
    }

    #[test]
    fn satisfies_everywhere_and_never_truly_costlier_than_gsp() {
        // On single-VM marginal volume, sharing awareness should not lose
        // to plain GSP on workloads with heavy interest overlap.
        let rates = [40u64, 25, 16, 9, 5, 3, 2];
        let interests: Vec<&[u32]> = vec![
            &[0, 1, 2],
            &[0, 1, 3],
            &[1, 2, 4, 5],
            &[0, 4, 5, 6],
            &[2, 3, 6],
        ];
        for tau in [5u64, 15, 30, 60] {
            let inst = instance(&rates, &interests, tau);
            let shared = SharedAwareGreedy::new().select(&inst).unwrap();
            let plain = GreedySelectPairs::new().select(&inst).unwrap();
            let w = inst.workload();
            assert!(shared.satisfies(w, inst.tau()), "tau {tau}");
            assert!(
                true_volume(&shared, w) <= true_volume(&plain, w) + tau, // allow slack: greedy, not optimal
                "tau {tau}: shared {} plain {}",
                true_volume(&shared, w),
                true_volume(&plain, w)
            );
        }
    }

    #[test]
    fn first_subscriber_matches_plain_gsp() {
        // With an empty shared set the selector degenerates to GSP.
        let inst = instance(&[10, 7, 7, 3], &[&[0, 1, 2, 3]], 9);
        let shared = SharedAwareGreedy::new().select(&inst).unwrap();
        let plain = GreedySelectPairs::new().select(&inst).unwrap();
        let v = SubscriberId::new(0);
        let norm = |s: &Selection| {
            let mut v: Vec<TopicId> = s.selected(v).to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&shared), norm(&plain));
    }

    #[test]
    fn empty_interests_ok() {
        let mut b = Workload::builder();
        b.add_topic(Rate::new(5)).unwrap();
        b.add_subscriber([]).unwrap();
        let inst = McssInstance::new(b.build(), Rate::new(5), Bandwidth::new(100)).unwrap();
        let s = SharedAwareGreedy::new().select(&inst).unwrap();
        assert_eq!(s.pair_count(), 0);
    }
}
